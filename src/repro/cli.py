"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``  write a benchmark database (chemical / synthetic) in gSpan
              text format,
``build``     mine + build a TreePi index over a database file and save it
              (``--workers N`` parallelizes construction; the saved index
              is byte-identical for every N),
``query``     run query graphs (gSpan file) against a saved index through
              a :class:`repro.core.engine.QueryEngine` (``--cache-size``
              memoizes isomorphic queries, ``--workers`` parallelizes
              candidate verification, ``--deadline-ms``/``--verify-budget``
              bound each query and degrade gracefully on expiry,
              ``--shards K`` serves through the scatter-gather tier),
``info``      summarize a saved index,
``bench``     run one of the paper-figure experiments and print its table.

Example session::

    python -m repro generate --kind chemical --count 100 --out db.txt
    python -m repro build --database db.txt --out index.json --eta 5 --workers 4
    python -m repro generate --kind queries --database db.txt \\
        --edges 6 --count 10 --out queries.txt
    python -m repro query --index index.json --queries queries.txt \\
        --stats --cache-size 64 --workers 4
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Union

from repro.core import QueryBudget, QueryEngine, TreePiConfig, TreePiIndex
from repro.datasets import (
    extract_query_workload,
    generate_aids_like,
    synthetic_database,
)
from repro.graphs import GraphDatabase, load_database, save_database
from repro.mining import SupportFunction
from repro.persistence import load_index, save_index
from repro.serving import ShardedEngine


def _add_sigma_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--alpha", type=int, default=2, help="σ(s) unit tier (Eq. 1)")
    parser.add_argument("--beta", type=float, default=2.0, help="σ(s) ramp slope")
    parser.add_argument("--eta", type=int, default=5, help="max feature size")
    parser.add_argument("--gamma", type=float, default=1.1, help="shrinking γ")
    parser.add_argument("--seed", type=int, default=2007, help="partition RNG seed")


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "chemical":
        db = generate_aids_like(args.count, avg_atoms=args.size, seed=args.seed)
    elif args.kind == "synthetic":
        db = synthetic_database(
            args.count,
            avg_graph_edges=args.size,
            num_vertex_labels=args.labels,
            num_seeds=max(10, args.count // 3),
            avg_seed_edges=max(2, args.size // 3),
            seed=args.seed,
        )
    else:  # queries
        if not args.database:
            print("error: --kind queries requires --database", file=sys.stderr)
            return 2
        source = load_database(args.database)
        workload = extract_query_workload(
            source, args.edges, args.count, seed=args.seed
        )
        db = GraphDatabase(q for q in workload)
    save_database(db, args.out)
    print(f"wrote {len(db)} graphs to {args.out}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    database = load_database(args.database)
    config = TreePiConfig(
        support=SupportFunction(args.alpha, args.beta, args.eta),
        gamma=args.gamma,
        seed=args.seed,
        workers=args.workers,
    )
    start = time.perf_counter()
    index = TreePiIndex.build(database, config)
    elapsed = time.perf_counter() - start
    if args.mmap:
        save_index(index, args.out, version=3)
    else:
        save_index(index, args.out)
    print(
        f"built index over {len(database)} graphs in {elapsed:.2f}s: "
        f"{index.feature_count()} features "
        f"(by size {dict(sorted(index.stats.features_by_size.items()))})"
    )
    kind = "segment directory (v3, mmap)" if args.mmap else "index"
    print(f"saved {kind} to {args.out}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    index = load_index(args.index)
    engine: "Union[QueryEngine, ShardedEngine]"
    if args.shards > 1:
        # Re-partition the saved index's database across K shards; each
        # shard rebuilds its slice with the index's own config.
        engine = ShardedEngine(
            index.database,
            index.config,
            args.shards,
            cache_size=args.cache_size,
            verify_workers=args.workers,
        )
    else:
        engine = QueryEngine(
            index, cache_size=args.cache_size, verify_workers=args.workers
        )
    budget = None
    if args.deadline_ms is not None or args.verify_budget is not None:
        budget = QueryBudget(
            deadline_ms=args.deadline_ms, verify_steps=args.verify_budget
        )
    queries = load_database(args.queries)
    total = 0.0
    degraded = 0
    for gid in queries.graph_ids():
        query = queries[gid]
        start = time.perf_counter()
        result = engine.query(query, budget=budget)
        elapsed = (time.perf_counter() - start) * 1000
        total += elapsed
        matches = ",".join(map(str, sorted(result.matches))) or "-"
        line = f"query {gid}: {len(result.matches)} matches [{matches}]"
        if not result.complete:
            degraded += 1
            line += (
                f"  DEGRADED ({result.degraded_reason}: "
                f"{len(result.unresolved)} unresolved)"
            )
        if args.stats:
            line += (
                f"  |TPq|={result.partition_size}"
                f" Pq={result.candidates_after_filter}"
                f" P'q={result.candidates_after_prune}"
                f" {elapsed:.2f}ms"
                f"{' (direct)' if result.direct_hit else ''}"
            )
        print(line)
    print(f"total query time: {total:.2f}ms over {len(queries)} queries")
    if degraded:
        print(
            f"{degraded} degraded result(s): matches are sound but "
            "incomplete; retry with a larger --deadline-ms/--verify-budget"
        )
    if args.stats:
        if isinstance(engine, ShardedEngine):
            tier_view = engine.stats
            stats = tier_view.rollup
            sizes = engine.shard_sizes()
            print(
                f"shards: {len(sizes)} "
                f"(sizes {dict(sorted(sizes.items()))}), "
                f"{tier_view.tier.fanouts} fan-outs, "
                f"{tier_view.tier.shard_timeouts} shard timeouts, "
                f"{tier_view.tier.shard_faults} shard faults"
            )
        else:
            stats = engine.stats
        print(
            f"engine: {stats.cache_hits} cache hits / {stats.queries} queries, "
            f"{stats.candidates_pruned} candidates pruned, "
            f"{stats.verifications_run} verifications"
        )
        if budget is not None:
            print(
                f"budget: {stats.timeouts} timeouts, "
                f"{stats.degraded_results} degraded results, "
                f"{stats.unresolved_candidates} unresolved candidates, "
                f"{stats.prune_exhausted} prune-budget exhaustions"
            )
    return 0


def _cmd_index_segments(args: argparse.Namespace) -> int:
    """Per-segment stats of a v3 directory (no feature decode, no build)."""
    from pathlib import Path

    from repro.storage.segments import SegmentStore

    root = Path(args.index)
    if not root.is_dir():
        print(f"error: {root} is not a v3 segment directory", file=sys.stderr)
        return 2
    store = SegmentStore.open(root)
    try:
        rows = store.describe()
        header = f"{'segment':<18}{'graphs':>8}{'live':>8}{'dead':>8}{'features':>10}{'bytes':>12}"
        print(header)
        print("-" * len(header))
        for row in rows:
            print(
                f"{row['segment']:<18}{row['graphs']:>8}{row['live']:>8}"
                f"{row['tombstoned']:>8}{row['features']:>10}{row['bytes']:>12}"
            )
        manifest = store.manifest
        print(
            f"{len(rows)} segment(s) ({store.delta_count} delta), "
            f"{manifest['graphs']} live graphs, "
            f"{len(store.tombstones)} tombstone(s), "
            f"{store.nbytes()} mapped bytes"
        )
        print(
            f"knobs: memtable_limit={store.memtable_limit} "
            f"compact_threshold={store.compact_threshold}"
        )
        if store.needs_compaction():
            print("compaction recommended: run `repro index compact`")
    finally:
        store.close()
    return 0


def _cmd_index_compact(args: argparse.Namespace) -> int:
    """Fold base + deltas − tombstones into one fresh base segment."""
    from pathlib import Path

    root = Path(args.index)
    if not root.is_dir():
        print(f"error: {root} is not a v3 segment directory", file=sys.stderr)
        return 2
    index = load_index(root)
    store = index.segment_store
    assert store is not None
    before = store.segment_count
    engine = QueryEngine(index, cache_size=0)
    start = time.perf_counter()
    did = engine.compact()
    elapsed = time.perf_counter() - start
    if did:
        print(
            f"compacted {before} segment(s) -> {store.segment_count} "
            f"in {elapsed:.2f}s ({store.nbytes()} mapped bytes)"
        )
    else:
        print(f"nothing to compact ({before} segment(s), no tombstones)")
    store.close()
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.graphs import profile_database

    index = load_index(args.index)
    stats = index.stats
    config = index.config
    print(f"TreePi index over {len(index.database)} graphs")
    for line in profile_database(index.database).describe().splitlines():
        print(f"  {line}")
    print(f"  features: {stats.num_features} "
          f"(by size {dict(sorted(stats.features_by_size.items()))})")
    print(f"  center locations: {stats.total_center_locations}")
    print(f"  shrink removed: {stats.shrink_removed} (gamma={config.gamma})")
    print(f"  sigma: alpha={config.support.alpha} beta={config.support.beta} "
          f"eta={config.support.eta}")
    print(f"  build time: {stats.build_seconds:.2f}s "
          f"(mining {stats.mining.elapsed_seconds:.2f}s)")
    return 0


_FIGURES = {
    "fig09": lambda scale: [__import__("repro.bench", fromlist=["x"]).experiment_index_size(scale)],
    "fig10": lambda scale: list(
        __import__("repro.bench", fromlist=["x"]).experiment_pruning_performance(scale)
    ),
    "fig11a": lambda scale: [
        __import__("repro.bench", fromlist=["x"]).experiment_prune_effectiveness(
            scale, dataset="chemical"
        )
    ],
    "fig11b": lambda scale: [
        __import__("repro.bench", fromlist=["x"]).experiment_prune_effectiveness(
            scale, dataset="synthetic", labels=4
        )
    ],
    "fig12a": lambda scale: [
        __import__("repro.bench", fromlist=["x"]).experiment_index_construction(scale)
    ],
    "fig12b": lambda scale: [
        __import__("repro.bench", fromlist=["x"]).experiment_query_time(scale)
    ],
    "fig13a": lambda scale: [
        __import__("repro.bench", fromlist=["x"]).experiment_index_construction(
            scale, dataset="synthetic"
        )
    ],
    "fig13b": lambda scale: [
        __import__("repro.bench", fromlist=["x"]).experiment_query_time(
            scale, dataset="synthetic"
        )
    ],
}


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import current_scale

    scale = current_scale()
    for table in _FIGURES[args.figure](scale):
        table.show()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.bench import write_report

    path = write_report(args.out, sections=args.sections or None)
    print(f"wrote reproduction report to {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="TreePi graph indexing (ICDE 2007 reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a database or query file")
    gen.add_argument("--kind", choices=["chemical", "synthetic", "queries"],
                     required=True)
    gen.add_argument("--count", type=int, default=100, help="number of graphs")
    gen.add_argument("--size", type=int, default=18,
                     help="avg atoms (chemical) / avg edges (synthetic)")
    gen.add_argument("--labels", type=int, default=5,
                     help="distinct vertex labels (synthetic)")
    gen.add_argument("--edges", type=int, default=6,
                     help="query edge size (--kind queries)")
    gen.add_argument("--database", help="source database (--kind queries)")
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--out", required=True)
    gen.set_defaults(func=_cmd_generate)

    build = sub.add_parser("build", help="build and save a TreePi index")
    build.add_argument("--database", required=True, help="gSpan-format database file")
    build.add_argument("--out", required=True, help="output index JSON")
    _add_sigma_arguments(build)
    build.add_argument(
        "--workers", type=int, default=1,
        help="process-pool width for parallel construction "
             "(the saved index is identical for every value)",
    )
    build.add_argument(
        "--mmap", action="store_true",
        help="save as a memory-mapped segment directory (format v3): "
             "--out becomes a directory, loads are O(manifest) cold and "
             "columns page in on demand; insert/delete append to delta "
             "segments instead of triggering rebuilds",
    )
    build.set_defaults(func=_cmd_build)

    query = sub.add_parser("query", help="run query graphs against a saved index")
    query.add_argument("--index", required=True)
    query.add_argument("--queries", required=True, help="gSpan-format query file")
    query.add_argument("--stats", action="store_true",
                       help="print per-query pipeline statistics")
    query.add_argument(
        "--cache-size", type=int, default=128,
        help="LRU result-cache capacity (0 disables caching)",
    )
    query.add_argument(
        "--workers", type=int, default=1,
        help="thread-pool width for candidate verification",
    )
    query.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-query wall-clock deadline; on expiry the query returns a "
             "degraded-but-sound result (matches verified so far, flagged "
             "DEGRADED) instead of running unboundedly",
    )
    query.add_argument(
        "--verify-budget", type=int, default=None,
        help="cap on verification work units per query (machine-independent "
             "twin of --deadline-ms; same degradation contract)",
    )
    query.add_argument(
        "--shards", type=int, default=1,
        help="serve through a K-shard scatter-gather tier instead of one "
             "engine (answers are identical; --deadline-ms becomes a "
             "per-shard deadline — see docs/SERVING.md)",
    )
    query.set_defaults(func=_cmd_query)

    info = sub.add_parser("info", help="summarize a saved index")
    info.add_argument("--index", required=True)
    info.set_defaults(func=_cmd_info)

    index_cmd = sub.add_parser(
        "index", help="maintain a v3 (mmap) segment directory"
    )
    index_sub = index_cmd.add_subparsers(dest="index_command", required=True)
    segments = index_sub.add_parser(
        "segments", help="print per-segment statistics"
    )
    segments.add_argument("--index", required=True, help="v3 segment directory")
    segments.set_defaults(func=_cmd_index_segments)
    compact = index_sub.add_parser(
        "compact",
        help="fold base + delta segments - tombstones into one base segment",
    )
    compact.add_argument("--index", required=True, help="v3 segment directory")
    compact.set_defaults(func=_cmd_index_compact)

    bench = sub.add_parser("bench", help="run one paper-figure experiment")
    bench.add_argument("--figure", choices=sorted(_FIGURES), required=True)
    bench.set_defaults(func=_cmd_bench)

    report = sub.add_parser(
        "report", help="run the full sweep and write a markdown report"
    )
    report.add_argument("--out", required=True, help="output markdown path")
    report.add_argument(
        "--sections", nargs="*",
        help="restrict to roster headings containing these substrings",
    )
    report.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
