"""Experiment implementations — one function per paper figure (+ ablations).

See DESIGN.md's experiment index.  Functions return :class:`Table` objects
whose rows mirror the series plotted in the paper:

=======  ===========================================  =========================
Figure   Function                                      Paper series
=======  ===========================================  =========================
9        :func:`experiment_index_size`                 #features vs DB size
10(a,b)  :func:`experiment_pruning_performance`        candidates vs query size
11(a,b)  :func:`experiment_prune_effectiveness`        candidates vs |D_q|
12(a)    :func:`experiment_index_construction`         build time vs DB size
12(b)    :func:`experiment_query_time`                 query time vs query size
13(a)    :func:`experiment_index_construction` (synth) build time vs DB size
13(b)    :func:`experiment_query_time` (synth)         query time vs query size
—        :func:`ablation_center_prune` etc.            design-choice ablations
=======  ===========================================  =========================

Databases and indexes are memoized per (dataset, size) so a bench session
never builds the same index twice.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.gindex import GIndexBaseline, GIndexConfig
from repro.baselines.scan import SequentialScan
from repro.bench.harness import Scale, Table
from repro.core.engine import QueryEngine
from repro.core.treepi import TreePiConfig, TreePiIndex
from repro.datasets.chemical import generate_aids_like
from repro.datasets.queries import QueryWorkload, extract_query_workload
from repro.datasets.synthetic import synthetic_database
from repro.graphs.graph import GraphDatabase
from repro.mining.support import SupportFunction
from repro.persistence import index_to_json

_DB_CACHE: Dict[Tuple, GraphDatabase] = {}
_TREEPI_CACHE: Dict[Tuple, TreePiIndex] = {}
_GINDEX_CACHE: Dict[Tuple, GIndexBaseline] = {}

#: Synthetic-generator knobs used by the Fig. 11(b)/13 experiments —
#: the paper's D*I10T20S1kL{4,5} family scaled to Python speeds.
SYNTH_SEED_EDGES = 5
SYNTH_GRAPH_EDGES = 12
SYNTH_NUM_SEEDS = 100


def clear_caches() -> None:
    """Drop memoized databases and indexes (tests use this for isolation)."""
    _DB_CACHE.clear()
    _TREEPI_CACHE.clear()
    _GINDEX_CACHE.clear()


def get_database(dataset: str, size: int, scale: Scale, labels: int = 5) -> GraphDatabase:
    """Build (or fetch) one benchmark database.

    ``dataset`` is ``"chemical"`` (the AIDS-like Γ_N) or ``"synthetic"``
    (the D..I..T..S..L.. family; ``labels`` is the L parameter).
    """
    key = (dataset, size, scale.avg_atoms, labels)
    db = _DB_CACHE.get(key)
    if db is None:
        if dataset == "chemical":
            db = generate_aids_like(size, avg_atoms=scale.avg_atoms, seed=42)
        elif dataset == "synthetic":
            db = synthetic_database(
                size,
                avg_seed_edges=SYNTH_SEED_EDGES,
                avg_graph_edges=SYNTH_GRAPH_EDGES,
                num_seeds=SYNTH_NUM_SEEDS,
                num_vertex_labels=labels,
                seed=42,
            )
        else:
            raise ValueError(f"unknown dataset kind {dataset!r}")
        _DB_CACHE[key] = db
    return db


def treepi_config(scale: Scale, gamma: float = 1.1, delta: Optional[int] = None,
                  enable_center_prune: bool = True,
                  paths_only: bool = False,
                  db_size: Optional[int] = None,
                  **extra) -> TreePiConfig:
    """The paper's TreePi settings (α=5, β=2, η=10, γ=1.5) scaled down.

    Two re-tunings, both structural consequences of the smaller sweeps
    (see EXPERIMENTS.md's calibration section):

    * **β scales with N** (``β ≈ N/40``).  The paper tunes σ per database;
      a threshold that is constant in absolute terms lets the feature
      count grow linearly with N, while gIndex's Θ·N-relative ψ keeps its
      count flat — scaling β restores the paper's flat Figure 9 curves.
    * **γ=1.1** instead of 1.5: support-ratio distributions compress
      toward 1 on small homogeneous samples, so the paper's value removes
      nearly every mid-size tree at N≈100–1000 (ablation A2 shows the
      cliff).
    """
    alpha = max(2, scale.eta // 3)
    n = db_size if db_size is not None else scale.query_db_size
    beta = max(1.0, n / 40)
    return TreePiConfig(
        support=SupportFunction(alpha=alpha, beta=beta, eta=scale.eta),
        gamma=gamma,
        delta=delta,
        enable_center_prune=enable_center_prune,
        paths_only=paths_only,
        seed=2007,
        **extra,
    )


def gindex_config(scale: Scale) -> GIndexConfig:
    """The paper's gIndex settings (maxL=10, γ_min=2.0, Θ=0.1N) scaled down."""
    return GIndexConfig(
        max_size=scale.eta,
        min_discriminative_ratio=2.0,
        max_support_fraction=0.1,
    )


def get_treepi(dataset: str, size: int, scale: Scale, labels: int = 5,
               **config_overrides) -> TreePiIndex:
    """Build (or fetch) the memoized TreePi index for one configuration."""
    key = (dataset, size, scale.name, labels, tuple(sorted(config_overrides.items())))
    index = _TREEPI_CACHE.get(key)
    if index is None:
        db = get_database(dataset, size, scale, labels)
        index = TreePiIndex.build(
            db, treepi_config(scale, db_size=size, **config_overrides)
        )
        _TREEPI_CACHE[key] = index
    return index


def get_gindex(dataset: str, size: int, scale: Scale, labels: int = 5) -> GIndexBaseline:
    """Build (or fetch) the memoized gIndex baseline for one database."""
    key = (dataset, size, scale.name, labels)
    index = _GINDEX_CACHE.get(key)
    if index is None:
        db = get_database(dataset, size, scale, labels)
        index = GIndexBaseline.build(db, gindex_config(scale))
        _GINDEX_CACHE[key] = index
    return index


def _workloads(
    db: GraphDatabase, scale: Scale, query_sizes: Optional[Sequence[int]] = None
) -> List[QueryWorkload]:
    sizes = query_sizes or scale.query_sizes
    return [
        extract_query_workload(db, m, scale.queries_per_size, seed=97 + m)
        for m in sizes
    ]


# ----------------------------------------------------------------------
# Figure 9 — index size
# ----------------------------------------------------------------------
def experiment_index_size(scale: Scale, dataset: str = "chemical") -> Table:
    """#features indexed by TreePi vs gIndex as the database grows."""
    table = Table(
        title=f"Fig 9 — index size ({dataset}, scale={scale.name})",
        columns=["db_size", "treepi_features", "gindex_features"],
        notes=[
            "paper shape: TreePi indexes fewer features than gIndex at every N,",
            "and both curves stay small/stable as N grows",
        ],
    )
    for size in scale.db_sizes:
        tp = get_treepi(dataset, size, scale)
        gi = get_gindex(dataset, size, scale)
        table.add_row(size, tp.feature_count(), gi.feature_count())
    return table


# ----------------------------------------------------------------------
# Figure 10 — pruning performance, low/high support query groups
# ----------------------------------------------------------------------
def experiment_pruning_performance(
    scale: Scale, dataset: str = "chemical"
) -> Tuple[Table, Table]:
    """Average candidate-set size per query edge size, split by support.

    The paper splits at support 50 on a 10,000-graph database; the split
    point scales proportionally here.
    """
    size = scale.query_db_size
    db = get_database(dataset, size, scale)
    tp = get_treepi(dataset, size, scale)
    gi = get_gindex(dataset, size, scale)
    scan = SequentialScan(db)
    threshold = max(2, round(50 * size / 10000))

    low = Table(
        title=f"Fig 10(a) — pruning, low-support queries (<{threshold}) ({dataset})",
        columns=["query_edges", "queries", "avg_Dq", "gindex_Cq", "treepi_Pq_prime"],
        notes=["paper shape: TreePi candidates sit below gIndex at every size"],
    )
    high = Table(
        title=f"Fig 10(b) — pruning, high-support queries (>={threshold}) ({dataset})",
        columns=["query_edges", "queries", "avg_Dq", "gindex_Cq", "treepi_Pq_prime"],
        notes=["paper shape: both close to |Dq|; TreePi <= gIndex"],
    )
    for workload in _workloads(db, scale):
        buckets = {True: [], False: []}  # low? -> (dq, cq, pq')
        for query in workload:
            truth = scan.support_set(query)
            gq = gi.query(query)
            tq = tp.query(query)
            buckets[len(truth) < threshold].append(
                (len(truth), gq.candidates_after_filter, tq.candidates_after_prune)
            )
        for is_low, table in ((True, low), (False, high)):
            rows = buckets[is_low]
            if not rows:
                table.add_row(workload.num_edges, 0, 0.0, 0.0, 0.0)
                continue
            n = len(rows)
            table.add_row(
                workload.num_edges,
                n,
                sum(r[0] for r in rows) / n,
                sum(r[1] for r in rows) / n,
                sum(r[2] for r in rows) / n,
            )
    return low, high


# ----------------------------------------------------------------------
# Figure 11 — prune effectiveness vs |D_q|
# ----------------------------------------------------------------------
def experiment_prune_effectiveness(
    scale: Scale, dataset: str = "chemical", labels: int = 4
) -> Table:
    """Average reduced-database size bucketed by true support size.

    Figure 11(a) uses the real dataset, 11(b) the low-label-diversity
    synthetic one (``labels=4``), where pruning is much harder.
    """
    size = scale.query_db_size
    db = get_database(dataset, size, scale, labels)
    tp = get_treepi(dataset, size, scale, labels)
    gi = get_gindex(dataset, size, scale, labels)
    scan = SequentialScan(db)

    samples: List[Tuple[int, int, int]] = []  # (|Dq|, Cq, P'q)
    for workload in _workloads(db, scale):
        for query in workload:
            truth = scan.support_set(query)
            gq = gi.query(query)
            tq = tp.query(query)
            samples.append(
                (len(truth), gq.candidates_after_filter, tq.candidates_after_prune)
            )

    figure = "11(b)" if dataset == "synthetic" else "11(a)"
    table = Table(
        title=f"Fig {figure} — prune effectiveness ({dataset}, scale={scale.name})",
        columns=["dq_bucket", "queries", "avg_Dq", "gindex_Cq", "treepi_Pq_prime"],
        notes=[
            "paper shape: |Dq| <= P'q <= Cq, with the P'q-vs-Dq gap at least",
            "~50% smaller than the Cq-vs-Dq gap for small |Dq|",
        ],
    )
    samples.sort(key=lambda s: s[0])
    bucket_count = 4
    per_bucket = max(1, len(samples) // bucket_count)
    for b in range(0, len(samples), per_bucket):
        chunk = samples[b : b + per_bucket]
        n = len(chunk)
        table.add_row(
            f"{chunk[0][0]}–{chunk[-1][0]}",
            n,
            sum(c[0] for c in chunk) / n,
            sum(c[1] for c in chunk) / n,
            sum(c[2] for c in chunk) / n,
        )
    return table


# ----------------------------------------------------------------------
# Figures 12(a) / 13(a) — index construction time
# ----------------------------------------------------------------------
def experiment_index_construction(scale: Scale, dataset: str = "chemical") -> Table:
    """Build-time sweep over database sizes for both systems."""
    figure = "13(a)" if dataset == "synthetic" else "12(a)"
    table = Table(
        title=f"Fig {figure} — index construction time ({dataset}, scale={scale.name})",
        columns=["db_size", "treepi_seconds", "gindex_seconds"],
        notes=[
            "paper shape: both roughly linear in N; TreePi faster",
            "(tree mining + polynomial canonical forms)",
        ],
    )
    for size in scale.db_sizes:
        db = get_database(dataset, size, scale)
        t0 = time.perf_counter()
        tp = TreePiIndex.build(db, treepi_config(scale, db_size=size))
        treepi_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        gi = GIndexBaseline.build(db, gindex_config(scale))
        gindex_seconds = time.perf_counter() - t0
        # Stash in the caches so downstream experiments reuse the builds.
        _TREEPI_CACHE.setdefault((dataset, size, scale.name, 5, ()), tp)
        _GINDEX_CACHE.setdefault((dataset, size, scale.name, 5), gi)
        table.add_row(size, treepi_seconds, gindex_seconds)
    return table


# ----------------------------------------------------------------------
# Figures 12(b) / 13(b) — query processing time
# ----------------------------------------------------------------------
def experiment_query_time(
    scale: Scale,
    dataset: str = "chemical",
    labels: int = 5,
    query_sizes: Optional[Sequence[int]] = None,
) -> Table:
    """End-to-end query latency sweep over query edge sizes."""
    figure = "13(b)" if dataset == "synthetic" else "12(b)"
    size = scale.query_db_size
    db = get_database(dataset, size, scale, labels)
    tp = get_treepi(dataset, size, scale, labels)
    gi = get_gindex(dataset, size, scale, labels)
    table = Table(
        title=f"Fig {figure} — query processing time ({dataset}, scale={scale.name})",
        columns=["query_edges", "treepi_ms", "gindex_ms"],
        notes=["paper shape: TreePi at least ~2x faster across sizes"],
    )
    for workload in _workloads(db, scale, query_sizes):
        t0 = time.perf_counter()
        for query in workload:
            tp.query(query)
        treepi_ms = (time.perf_counter() - t0) * 1000 / max(1, len(workload))
        t0 = time.perf_counter()
        for query in workload:
            gi.query(query)
        gindex_ms = (time.perf_counter() - t0) * 1000 / max(1, len(workload))
        table.add_row(workload.num_edges, treepi_ms, gindex_ms)
    return table


# ----------------------------------------------------------------------
# Extensions beyond the paper's figures
# ----------------------------------------------------------------------
def experiment_phase_breakdown(
    scale: Scale, dataset: str = "chemical"
) -> Table:
    """E+: where TreePi query time goes, per pipeline phase and query size.

    Not a paper figure — the paper reports end-to-end times only — but the
    breakdown explains the crossovers in Figures 12(b)/13(b): partition
    cost is flat, verification grows with candidate counts.
    """
    from repro.bench.collector import QueryStatsCollector

    size = scale.query_db_size
    db = get_database(dataset, size, scale)
    index = get_treepi(dataset, size, scale)
    phases = ["partition", "filter", "center_prune", "verification"]
    table = Table(
        title=f"E+ — query phase breakdown, ms/query ({dataset}, scale={scale.name})",
        columns=["query_edges", *phases, "direct_hit_rate"],
        notes=["phases missing from direct-hit queries contribute zero"],
    )
    for workload in _workloads(db, scale):
        collector = QueryStatsCollector(workload.name)
        for query in workload:
            collector.record(index.query(query))
        breakdown = collector.phase_breakdown_ms()
        table.add_row(
            workload.num_edges,
            *(breakdown.get(phase, 0.0) for phase in phases),
            collector.direct_hit_rate(),
        )
    return table


def experiment_query_scalability(
    scale: Scale, dataset: str = "chemical", query_edges: Optional[int] = None
) -> Table:
    """E+: query latency vs database size at a fixed query size.

    The paper sweeps query size at fixed N; this sweeps N at fixed query
    size, showing how the candidate funnel keeps verification sublinear
    in the database while sequential scan grows linearly.
    """
    from repro.baselines import SequentialScan

    m = query_edges or scale.query_sizes[len(scale.query_sizes) // 2]
    table = Table(
        title=f"E+ — query scalability at m={m} ({dataset}, scale={scale.name})",
        columns=["db_size", "treepi_ms", "scan_ms", "avg_Pq_prime", "avg_Dq"],
        notes=["expectation: scan grows ~linearly in N; TreePi much slower growth"],
    )
    for size in scale.db_sizes:
        db = get_database(dataset, size, scale)
        index = get_treepi(dataset, size, scale)
        scan = SequentialScan(db)
        workload = extract_query_workload(
            db, m, scale.queries_per_size, seed=55 + size
        )
        pq = dq = 0.0
        t0 = time.perf_counter()
        for query in workload:
            result = index.query(query)
            pq += result.candidates_after_prune
            dq += len(result.matches)
        treepi_ms = (time.perf_counter() - t0) * 1000 / max(1, len(workload))
        t0 = time.perf_counter()
        for query in workload:
            scan.query(query)
        scan_ms = (time.perf_counter() - t0) * 1000 / max(1, len(workload))
        n = max(1, len(workload))
        table.add_row(size, treepi_ms, scan_ms, pq / n, dq / n)
    return table


# ----------------------------------------------------------------------
# Ablations (design choices called out in DESIGN.md)
# ----------------------------------------------------------------------
def ablation_center_prune(scale: Scale, dataset: str = "chemical") -> Table:
    """A1: filter-only vs filter+center-prune candidate sets and latency."""
    size = scale.query_db_size
    db = get_database(dataset, size, scale)
    with_prune = get_treepi(dataset, size, scale)
    without_prune = get_treepi(dataset, size, scale, enable_center_prune=False)
    table = Table(
        title=f"Ablation A1 — Center Distance Constraint pruning ({dataset})",
        columns=[
            "query_edges", "Pq_filter_only", "Pq_prime_with_prune",
            "ms_without", "ms_with",
        ],
        notes=["expectation: P'q <= Pq, and pruning pays off on larger queries"],
    )
    for workload in _workloads(db, scale):
        pq = pqp = 0.0
        t0 = time.perf_counter()
        for query in workload:
            pq += without_prune.query(query).candidates_after_prune
        ms_without = (time.perf_counter() - t0) * 1000 / max(1, len(workload))
        t0 = time.perf_counter()
        for query in workload:
            pqp += with_prune.query(query).candidates_after_prune
        ms_with = (time.perf_counter() - t0) * 1000 / max(1, len(workload))
        n = max(1, len(workload))
        table.add_row(workload.num_edges, pq / n, pqp / n, ms_without, ms_with)
    return table


def ablation_shrinking(scale: Scale, dataset: str = "chemical") -> Table:
    """A2: γ sweep — index size vs candidate quality."""
    size = scale.query_db_size
    db = get_database(dataset, size, scale)
    scan = SequentialScan(db)
    workload = _workloads(db, scale)[len(scale.query_sizes) // 2]
    table = Table(
        title=f"Ablation A2 — shrinking parameter γ ({dataset})",
        columns=["gamma", "features", "avg_Pq_prime", "avg_Dq"],
        notes=["expectation: larger γ → fewer features, (weakly) larger P'q"],
    )
    avg_dq = sum(len(scan.support_set(q)) for q in workload) / max(1, len(workload))
    for gamma in (1.0, 1.5, 2.0, 3.0):
        index = get_treepi(dataset, size, scale, gamma=gamma)
        total = sum(
            index.query(q).candidates_after_prune for q in workload
        )
        table.add_row(
            gamma, index.feature_count(), total / max(1, len(workload)), avg_dq
        )
    return table


def ablation_tree_vs_path_features(scale: Scale, dataset: str = "chemical") -> Table:
    """A4: what branching tree features buy over path-only features.

    The paper's Section 1 claim — trees preserve almost the structural
    power of general subgraphs while paths lose a lot — measured inside
    one framework: the same TreePi pipeline with features restricted to
    paths (GraphGrep-flavored) vs full trees.
    """
    size = scale.query_db_size
    db = get_database(dataset, size, scale)
    trees = get_treepi(dataset, size, scale)
    paths = get_treepi(dataset, size, scale, paths_only=True)
    table = Table(
        title=f"Ablation A4 — tree features vs path-only features ({dataset})",
        columns=[
            "query_edges", "tree_features", "path_features",
            "tree_Pq_prime", "path_Pq_prime",
        ],
        notes=["expectation: tree features filter at least as tightly as paths"],
    )
    for workload in _workloads(db, scale):
        tp = pp = 0.0
        for query in workload:
            tp += trees.query(query).candidates_after_prune
            pp += paths.query(query).candidates_after_prune
        n = max(1, len(workload))
        table.add_row(
            workload.num_edges,
            trees.feature_count(),
            paths.feature_count(),
            tp / n,
            pp / n,
        )
    return table


def ablation_maintenance(scale: Scale, dataset: str = "chemical") -> Table:
    """A5: insert/delete maintenance (Section 7.1) vs full rebuild.

    Measures per-operation maintenance cost against amortized rebuild
    cost, and confirms query answers stay exact throughout the churn.
    """
    from repro.baselines import SequentialScan

    size = max(40, scale.query_db_size // 3)
    db = get_database(dataset, size, scale)
    index = TreePiIndex.build(db, treepi_config(scale))
    donors = get_database(dataset, size + 20, scale)
    incoming = [donors[g].copy() for g in donors.graph_ids()[size:]]

    table = Table(
        title=f"Ablation A5 — maintenance vs rebuild ({dataset}, N={size})",
        columns=["operation", "count", "total_seconds", "per_op_ms"],
        notes=["expectation: per-op maintenance ≪ rebuild; answers stay exact"],
    )

    t0 = time.perf_counter()
    inserted = []
    for graph in incoming:
        inserted.append(index.insert(graph))
    insert_seconds = time.perf_counter() - t0
    table.add_row("insert", len(incoming), insert_seconds,
                  insert_seconds * 1000 / max(1, len(incoming)))

    t0 = time.perf_counter()
    for gid in inserted[: len(inserted) // 2]:
        index.delete(gid)
    delete_count = len(inserted) // 2
    delete_seconds = time.perf_counter() - t0
    table.add_row("delete", delete_count, delete_seconds,
                  delete_seconds * 1000 / max(1, delete_count))

    t0 = time.perf_counter()
    rebuilt = index.rebuild()
    rebuild_seconds = time.perf_counter() - t0
    table.add_row("rebuild", 1, rebuild_seconds, rebuild_seconds * 1000)

    # Exactness audit after churn, against brute force.
    scan = SequentialScan(index.database)
    workload = extract_query_workload(
        index.database, scale.query_sizes[0], min(6, scale.queries_per_size), seed=71
    )
    mismatches = sum(
        1
        for q in workload
        if index.query(q).matches != scan.support_set(q)
        or rebuilt.query(q).matches != scan.support_set(q)
    )
    table.add_row("audit_mismatches", len(workload), float(mismatches), 0.0)
    return table


def experiment_label_diversity(scale: Scale) -> Table:
    """Section 6.2's observation: fewer distinct labels make indexing harder.

    Sweeps the synthetic generator's L parameter and reports feature
    counts, candidate quality, and query latency at fixed N.
    """
    size = scale.query_db_size
    table = Table(
        title=f"Label diversity sweep (synthetic, N={size}, scale={scale.name})",
        columns=["labels", "features", "avg_Dq", "avg_Pq_prime", "slack", "avg_ms"],
        notes=[
            "slack = avg false positives surviving pruning;",
            "expectation: fewer labels → more slack and slower queries",
        ],
    )
    for labels in (3, 5, 10, 20):
        db = get_database("synthetic", size, scale, labels)
        index = get_treepi("synthetic", size, scale, labels)
        workload = extract_query_workload(
            db, scale.query_sizes[0], scale.queries_per_size, seed=81
        )
        dq = pq = 0.0
        t0 = time.perf_counter()
        for query in workload:
            result = index.query(query)
            pq += result.candidates_after_prune
            dq += len(result.matches)
        ms = (time.perf_counter() - t0) * 1000 / max(1, len(workload))
        n = max(1, len(workload))
        table.add_row(
            labels, index.feature_count(), dq / n, pq / n, (pq - dq) / n, ms
        )
    return table


def ablation_verification_strategy(
    scale: Scale, dataset: str = "chemical"
) -> Table:
    """A7: anchored reconstruction vs direct matching, per query size.

    Quantifies the ``direct_verification_max_edges`` deviation: at which
    query size does the paper's reconstruction verifier overtake a plain
    monomorphism search?  Both produce identical answers; only wall time
    differs.
    """
    size = scale.query_db_size
    db = get_database(dataset, size, scale)
    reconstruct = get_treepi(dataset, size, scale,
                             direct_verification_max_edges=0)
    direct = get_treepi(dataset, size, scale,
                        direct_verification_max_edges=10_000)
    table = Table(
        title=f"Ablation A7 — verification strategy ({dataset}, scale={scale.name})",
        columns=["query_edges", "reconstruct_ms", "direct_ms"],
        notes=[
            "expectation: direct wins on tiny queries (setup can't amortize),",
            "reconstruction wins as queries and candidate graphs grow",
        ],
    )
    for workload in _workloads(db, scale):
        t0 = time.perf_counter()
        for query in workload:
            reconstruct.query(query)
        reconstruct_ms = (time.perf_counter() - t0) * 1000 / max(1, len(workload))
        t0 = time.perf_counter()
        for query in workload:
            direct.query(query)
        direct_ms = (time.perf_counter() - t0) * 1000 / max(1, len(workload))
        table.add_row(workload.num_edges, reconstruct_ms, direct_ms)
    return table


def ablation_partition_restarts(scale: Scale, dataset: str = "chemical") -> Table:
    """A3: δ sweep — partition size and query latency vs restart count."""
    size = scale.query_db_size
    db = get_database(dataset, size, scale)
    workload = _workloads(db, scale)[-1]  # largest queries benefit most
    table = Table(
        title=f"Ablation A3 — partition restarts δ ({dataset})",
        columns=["delta", "avg_TPq_size", "avg_SFq_size", "avg_ms"],
        notes=["expectation: more restarts → smaller TPq / richer SFq,"
               " at partition-time cost"],
    )
    for delta in (1, 2, 4, 8, 16):
        index = get_treepi(dataset, size, scale, delta=delta)
        tpq = sfq = 0.0
        t0 = time.perf_counter()
        for query in workload:
            result = index.query(query)
            tpq += result.partition_size
            sfq += result.sfq_size
        ms = (time.perf_counter() - t0) * 1000 / max(1, len(workload))
        n = max(1, len(workload))
        table.add_row(delta, tpq / n, sfq / n, ms)
    return table


def experiment_parallel_scaling(
    scale: Scale,
    workers: Sequence[int] = (1, 2, 4),
    dataset: str = "chemical",
) -> Table:
    """Parallel index construction: build time and output identity vs workers.

    Builds the same database once per worker count (no memoization — each
    row is a fresh, timed build) and certifies that every build serializes
    to byte-identical JSON once the two wall-clock timing fields are
    normalized out.  ``engine_cached_ms`` rides along as the serving-side
    counterpart: mean latency of replaying the standard workload against a
    :class:`~repro.core.engine.QueryEngine` whose cache is already warm.
    """
    size = scale.query_db_size
    db = get_database(dataset, size, scale)
    workload = _workloads(db, scale)[-1]
    table = Table(
        title=f"Extension — parallel build scaling ({dataset}, scale={scale.name})",
        columns=[
            "workers",
            "build_seconds",
            "speedup_vs_1",
            "byte_identical",
            "engine_cold_ms",
            "engine_cached_ms",
        ],
        notes=[
            "byte_identical: serialized index JSON equals the workers=1",
            "build after normalizing the two timing fields",
            "(process pools only pay off with >1 physical core)",
        ],
    )

    def fingerprint(index: TreePiIndex) -> str:
        doc = index_to_json(index)
        doc["stats"]["build_seconds"] = 0.0
        doc["stats"]["mining"]["elapsed_seconds"] = 0.0
        return json.dumps(doc, sort_keys=True)

    baseline_seconds: Optional[float] = None
    baseline_doc: Optional[str] = None
    for count in workers:
        config = treepi_config(scale, db_size=size, workers=count)
        t0 = time.perf_counter()
        index = TreePiIndex.build(db, config)
        build_seconds = time.perf_counter() - t0
        doc = fingerprint(index)
        if baseline_seconds is None:
            baseline_seconds = build_seconds
            baseline_doc = doc
        engine = QueryEngine(index, cache_size=4 * max(1, len(workload)))
        t0 = time.perf_counter()
        for query in workload:
            engine.query(query)
        cold_ms = (time.perf_counter() - t0) * 1000 / max(1, len(workload))
        t0 = time.perf_counter()
        for query in workload:
            engine.query(query)
        cached_ms = (time.perf_counter() - t0) * 1000 / max(1, len(workload))
        table.add_row(
            count,
            build_seconds,
            baseline_seconds / max(build_seconds, 1e-9),
            int(doc == baseline_doc),
            cold_ms,
            cached_ms,
        )
    return table
