"""Workload statistics collection: aggregate QueryResults into tables.

Benchmarks and examples repeatedly compute means over workloads by hand;
:class:`QueryStatsCollector` centralizes that — record every
:class:`~repro.core.statistics.QueryResult`, then read off means,
percentiles, phase breakdowns, and a rendered table.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bench.harness import Table
from repro.core.statistics import QueryResult


def percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile (``fraction`` in [0, 1]) of ``values``."""
    if not values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class QueryStatsCollector:
    """Accumulates per-query metrics for one workload."""

    def __init__(self, name: str = "workload") -> None:
        self.name = name
        self._results: List[QueryResult] = []
        self._latencies: List[float] = []

    def record(self, result: QueryResult, seconds: Optional[float] = None) -> None:
        """Record one query; ``seconds`` overrides the result's own timing."""
        self._results.append(result)
        self._latencies.append(
            result.total_seconds if seconds is None else seconds
        )

    def __len__(self) -> int:
        return len(self._results)

    # ------------------------------------------------------------------
    def mean(self, attribute: str) -> float:
        if not self._results:
            return 0.0
        return sum(getattr(r, attribute) for r in self._results) / len(self._results)

    def mean_latency_ms(self) -> float:
        if not self._latencies:
            return 0.0
        return sum(self._latencies) * 1000 / len(self._latencies)

    def latency_percentile_ms(self, fraction: float) -> float:
        return percentile(self._latencies, fraction) * 1000

    def direct_hit_rate(self) -> float:
        if not self._results:
            return 0.0
        return sum(r.direct_hit for r in self._results) / len(self._results)

    def phase_breakdown_ms(self) -> Dict[str, float]:
        """Mean milliseconds per pipeline phase across the workload."""
        totals: Dict[str, float] = {}
        for result in self._results:
            for phase, seconds in result.phase_seconds.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        n = max(1, len(self._results))
        return {phase: s * 1000 / n for phase, s in totals.items()}

    def false_positive_rate(self) -> float:
        """Fraction of post-prune candidates the verifier rejected."""
        candidates = sum(r.candidates_after_prune for r in self._results)
        matches = sum(len(r.matches) for r in self._results)
        if candidates == 0:
            return 0.0
        return (candidates - matches) / candidates

    # ------------------------------------------------------------------
    def summary_table(self) -> Table:
        table = Table(
            title=f"Query workload summary — {self.name}",
            columns=["metric", "value"],
        )
        table.add_row("queries", len(self._results))
        table.add_row("mean |Dq|", self.mean("support"))
        table.add_row("mean |Pq|", self.mean("candidates_after_filter"))
        table.add_row("mean |P'q|", self.mean("candidates_after_prune"))
        table.add_row("direct-hit rate", self.direct_hit_rate())
        table.add_row("false-positive rate", self.false_positive_rate())
        table.add_row("mean latency (ms)", self.mean_latency_ms())
        table.add_row("p50 latency (ms)", self.latency_percentile_ms(0.50))
        table.add_row("p95 latency (ms)", self.latency_percentile_ms(0.95))
        for phase, ms in sorted(self.phase_breakdown_ms().items()):
            table.add_row(f"phase {phase} (ms)", ms)
        return table
