"""Scatter-gather query serving over K disjoint shards.

:class:`ShardedEngine` is the tier that turns one
:class:`~repro.core.engine.QueryEngine` into a horizontally scalable
system.  The database is partitioned by a
:class:`~repro.serving.router.ShardRouter`; each non-empty shard gets
its own engine (built with the ordinary ``workers=N`` process-pool
machinery); a query fans out to every shard on a thread pool and the
per-shard :class:`~repro.core.statistics.QueryResult`\\ s merge by
union.  Because the shards are disjoint, the union of per-shard
answers *is* the exact answer — the merge layer introduces no
approximation, which is what the K-sweep differential suite pins down.

Degradation contract (the serving tier's core promise):

* A :class:`~repro.core.budget.QueryBudget` is started independently
  per shard, so ``deadline_ms`` bounds each shard's pipeline.  The
  gather waits at most deadline + grace for each shard.
* A shard that degrades contributes its own unresolved bracket; a
  shard that times out at the gather or raises contributes its *full
  shard universe* as unresolved.  Either way the merged result
  satisfies ``matches ⊆ exact ⊆ matches ∪ unresolved`` and
  ``degraded_reason`` names every shard that missed.
* Admission control runs before any dispatch: past the in-flight cap
  the call is either refused (:class:`~repro.exceptions.
  AdmissionError`, ``admission="reject"``) or answered immediately
  with a fully-unresolved degraded result (``admission="degrade"``).

Lock discipline (REPRO_CONTRACTS-tracked, same shape as the single
engine): the tier's writer-preferring ``_rw`` is held for *read*
during scatter **and** during ``insert``/``delete`` — per-shard
engines serialize their own mutations — and for *write* only during
rebalance, which must move graphs across shards atomically with
respect to queries.  ``_mutex`` guards the routing table, counters and
admission state; no blocking shard work ever runs under it.  Order:
``_rw -> _mutex``, tier locks strictly before any shard engine's.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import replace
from typing import (
    Dict,
    FrozenSet,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.contracts import ContractViolation
from repro.analysis.guards import TrackedLock, guarded_by
from repro.core.budget import QueryBudget
from repro.core.engine import QueryEngine, ReadWriteLock
from repro.core.statistics import EngineStats, QueryResult
from repro.core.treepi import TreePiConfig, TreePiIndex
from repro.core.verification import VerificationStats
from repro.exceptions import AdmissionError, ConfigError, IndexError_, ReproError
from repro.graphs.graph import GraphDatabase, LabeledGraph
from repro.serving.faults import FaultPolicy
from repro.serving.router import ShardMove, ShardRouter
from repro.serving.stats import ShardedStats, TierCounters

#: Last-resort join bound for deadline-free queries.  A shard thread
#: wedged by a lock bug or a runaway backend surfaces as a shard
#: timeout (full-universe unresolved bracket) instead of hanging the
#: serving thread indefinitely.
_UNBOUNDED_GATHER_CAP_S = 300.0


class _ShardOutcome(NamedTuple):
    """What the gather observed for one shard's dispatch."""

    shard_id: int
    status: str  # "ok" | "timeout" | "fault"
    results: Optional[List[QueryResult]]
    error: Optional[BaseException]


class ShardedEngine:
    """Scatter-gather serving over per-shard :class:`QueryEngine`\\ s.

    Parameters
    ----------
    database:
        Corpus to partition.  The graphs are shared (not copied) into
        per-shard databases under their existing global ids; the input
        container itself is left untouched.
    config:
        Build/query knobs for every shard index (``config.workers``
        parallelizes each shard's build, exactly as a single build).
    num_shards:
        K ≥ 1.  ``K=1`` is a working degenerate case the differential
        suite uses to pin the tier to the single engine.
    cache_size / verify_workers:
        Forwarded to every per-shard engine.
    max_in_flight:
        Admission cap on concurrently executing ``query``/
        ``query_batch`` calls; ``None`` admits everything.
    admission:
        ``"degrade"`` answers an over-cap call immediately with a sound
        fully-unresolved result; ``"reject"`` raises
        :class:`~repro.exceptions.AdmissionError` instead.
    rebalance_ratio:
        Insert-skew trigger: after an insert, if ``max/min`` shard size
        reaches this ratio a rebalance runs (``None`` disables).
    rebalance_mode:
        ``"inline"`` rebalances on the inserting caller's thread;
        ``"background"`` hands the round to a daemon thread (at most
        one pending at a time).
    router_seed:
        Placement-hash seed (defaults to ``config.seed``).
    fault_policy:
        Dispatch-time hook for fault injection; production default is
        the no-op :class:`~repro.serving.faults.FaultPolicy`.
    gather_grace_ms:
        Extra wall-clock the gather grants each shard beyond the
        budget's deadline before declaring a shard timeout.
    """

    def __init__(
        self,
        database: GraphDatabase,
        config: TreePiConfig,
        num_shards: int,
        *,
        cache_size: int = 128,
        verify_workers: int = 1,
        max_in_flight: Optional[int] = None,
        admission: str = "degrade",
        rebalance_ratio: Optional[float] = None,
        rebalance_mode: str = "inline",
        router_seed: Optional[int] = None,
        fault_policy: Optional[FaultPolicy] = None,
        gather_grace_ms: float = 250.0,
    ) -> None:
        self._init_tier(
            config,
            num_shards,
            cache_size=cache_size,
            verify_workers=verify_workers,
            max_in_flight=max_in_flight,
            admission=admission,
            rebalance_ratio=rebalance_ratio,
            rebalance_mode=rebalance_mode,
            router_seed=router_seed,
            fault_policy=fault_policy,
            gather_grace_ms=gather_grace_ms,
        )
        ids = database.graph_ids()
        self._next_id = (max(ids) + 1) if ids else 0
        shard_dbs: Dict[int, GraphDatabase] = {
            sid: GraphDatabase() for sid in range(num_shards)
        }
        for gid in ids:
            sid = self._router.assign(gid)
            shard_dbs[sid].add(database[gid], graph_id=gid)
        # Pre-build balance: hash placement can leave a small corpus
        # skewed or a shard empty; rebalancing the routing table before
        # any index exists moves bookkeeping, not built features.
        plan = self._router.rebalance_plan()
        for move in plan:
            graph = shard_dbs[move.src].remove(move.graph_id)
            shard_dbs[move.dst].add(graph, graph_id=move.graph_id)
        self._router.apply(plan)
        for sid in range(num_shards):
            if len(shard_dbs[sid]) == 0:
                self._engines[sid] = None
            else:
                self._engines[sid] = QueryEngine(
                    TreePiIndex.build(shard_dbs[sid], config),
                    cache_size=cache_size,
                    verify_workers=verify_workers,
                )

    def _init_tier(
        self,
        config: TreePiConfig,
        num_shards: int,
        *,
        cache_size: int = 128,
        verify_workers: int = 1,
        max_in_flight: Optional[int] = None,
        admission: str = "degrade",
        rebalance_ratio: Optional[float] = None,
        rebalance_mode: str = "inline",
        router_seed: Optional[int] = None,
        fault_policy: Optional[FaultPolicy] = None,
        gather_grace_ms: float = 250.0,
    ) -> None:
        """Validate knobs and set up all tier state except shard engines.

        Shared by the building constructor and :meth:`open_segments`
        (which attaches engines loaded from v3 segment directories
        instead of building them); the routing table starts empty either
        way and is populated by the caller.
        """
        if admission not in ("reject", "degrade"):
            raise ConfigError(
                f'admission must be "reject" or "degrade", got {admission!r}'
            )
        if rebalance_mode not in ("inline", "background"):
            raise ConfigError(
                'rebalance_mode must be "inline" or "background", '
                f"got {rebalance_mode!r}"
            )
        if max_in_flight is not None and max_in_flight < 1:
            raise ConfigError(
                f"max_in_flight must be >= 1 or None, got {max_in_flight}"
            )
        if rebalance_ratio is not None and rebalance_ratio < 1.0:
            raise ConfigError(
                f"rebalance_ratio must be >= 1.0 or None, got {rebalance_ratio}"
            )
        if gather_grace_ms < 0:
            raise ConfigError(
                f"gather_grace_ms must be >= 0, got {gather_grace_ms}"
            )
        self._num_shards = num_shards
        self._config = config
        self._cache_size = cache_size
        self._verify_workers = verify_workers
        self._max_in_flight = max_in_flight
        self._admission = admission
        self._rebalance_ratio = rebalance_ratio
        self._rebalance_mode = rebalance_mode
        self._fault_policy = (
            fault_policy if fault_policy is not None else FaultPolicy()
        )
        self._grace = gather_grace_ms / 1000.0
        # Lock order: _rw -> _mutex, and tier locks strictly before any
        # shard engine's (the guards tracker checks this under
        # REPRO_CONTRACTS=1; shard engines never call back into the tier).
        self._rw = ReadWriteLock("ShardedEngine._rw")
        self._mutex = TrackedLock("ShardedEngine._mutex")
        seed = router_seed if router_seed is not None else config.seed
        # The object is not published yet, but this helper also runs
        # from ``open_segments`` (not ``__init__``), so the guarded
        # fields are initialized under their declared mutex.
        with self._mutex:
            self._router = ShardRouter(num_shards, seed=seed)
            self._counters = TierCounters()
            self._in_flight = 0
            self._rebalance_pending = False
            self._rebalance_thread: Optional[threading.Thread] = None
            self._next_id = 0
            self._engines: Dict[int, Optional[QueryEngine]] = {}

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self._num_shards

    def __len__(self) -> int:
        with self._mutex:
            return len(self._router)

    def graph_ids(self) -> List[int]:
        """Every served graph id, sorted (a routing-table snapshot)."""
        with self._mutex:
            ids = self._router.all_ids()
        return ids

    def shard_sizes(self) -> Dict[int, int]:
        """``shard id -> graph count`` for every shard."""
        with self._mutex:
            sizes = self._router.sizes()
        return sizes

    def shard_of(self, graph_id: int) -> int:
        """The shard currently serving ``graph_id``."""
        with self._mutex:
            return self._router.locate(graph_id)

    def skew(self) -> float:
        """Current ``max/min`` shard-size ratio (the rebalance metric)."""
        with self._mutex:
            value = self._router.skew()
        return value

    @property
    def in_flight(self) -> int:
        """Queries currently admitted and not yet finished."""
        with self._mutex:
            return self._in_flight

    @property
    def stats(self) -> ShardedStats:
        """Consistent tier + per-shard counter snapshots."""
        with self._mutex:
            tier = self._counters.snapshot()
            engines = sorted(self._engines.items())
        shards: Dict[int, EngineStats] = {}
        for sid, engine in engines:
            shards[sid] = engine.stats if engine is not None else EngineStats()
        return ShardedStats(tier=tier, shards=shards)

    # ------------------------------------------------------------------
    # querying (scatter-gather)
    # ------------------------------------------------------------------
    def query(
        self, query: LabeledGraph, budget: Optional[QueryBudget] = None
    ) -> QueryResult:
        """Answer one query across every shard.

        ``budget`` applies *per shard* (each shard starts its own
        deadline clock); the merged result degrades per the module
        contract instead of ever blocking unboundedly.
        """
        if not self._admit():
            return self._admission_degraded()
        try:
            with self._rw.read_locked():
                results = self._scatter([query], budget, batched=False)
        finally:
            self._release()
        return results[0]

    def query_batch(
        self,
        queries: Sequence[LabeledGraph],
        budget: Optional[QueryBudget] = None,
    ) -> List[QueryResult]:
        """Answer many queries at once (one fan-out, per-shard batching).

        Each shard runs the whole batch through its engine's
        ``query_batch`` — isomorphic-duplicate dedup happens inside
        every shard — and the tier merges position-wise.
        """
        query_list = list(queries)
        if not query_list:
            return []
        if not self._admit():
            return [self._admission_degraded() for _ in query_list]
        try:
            with self._rw.read_locked():
                results = self._scatter(query_list, budget, batched=True)
        finally:
            self._release()
        return results

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def insert(self, graph: LabeledGraph) -> int:
        """Add ``graph`` under a freshly allocated global id.

        Runs under the tier *read* lock — per-shard engines serialize
        their own mutations, so inserts to different shards proceed
        concurrently with each other and with queries.  May trigger a
        rebalance afterwards (see ``rebalance_ratio``).
        """
        with self._rw.read_locked():
            with self._mutex:
                gid = self._next_id
                self._next_id += 1
                sid = self._router.assign(gid)
                engine = self._engines.get(sid)
                self._counters.inserts += 1
            try:
                if engine is None:
                    self._ensure_engine(sid, graph, gid)
                else:
                    engine.insert(graph, graph_id=gid)
            except ReproError:
                with self._mutex:
                    self._router.remove(gid)
                raise
        self._maybe_rebalance()
        return gid

    def delete(self, graph_id: int) -> None:
        """Remove ``graph_id`` from its shard and the routing table."""
        with self._rw.read_locked():
            with self._mutex:
                sid = self._router.locate(graph_id)
                engine = self._engines.get(sid)
            if engine is None:
                raise IndexError_(
                    f"graph {graph_id} routed to shard {sid}, "
                    "which has no engine"
                )
            engine.delete(graph_id)
            with self._mutex:
                self._router.remove(graph_id)
                self._counters.deletes += 1

    def rebalance(self) -> int:
        """Run one rebalance round now; returns graphs moved.

        Takes the tier write lock: queries and other maintenance wait
        while graphs change shards, so no scatter can observe a graph
        on two shards (or neither).
        """
        with self._rw.write_locked():
            moved = self._rebalance_locked()
        return moved

    def wait_for_rebalance(self, timeout: Optional[float] = None) -> None:
        """Block until any background rebalance round finishes."""
        with self._mutex:
            thread = self._rebalance_thread
        if thread is not None:
            thread.join(timeout)

    # ------------------------------------------------------------------
    # segment persistence (format v3)
    # ------------------------------------------------------------------
    def save_segments(self, root: "Path | str") -> None:
        """Persist the whole tier as per-shard v3 segment directories.

        Writes ``shard-NNN/`` (one segment directory per built shard)
        plus a ``shards.json`` tier manifest recording the shard count,
        router seed, id allocator and config.  Runs under the tier
        *write* lock so no insert/delete/rebalance can interleave with
        the per-shard snapshots — the saved shards are one consistent
        cut of the tier.
        """
        import json
        from pathlib import Path

        from repro.persistence import config_to_json, save_index

        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        with self._rw.write_locked():
            with self._mutex:
                engines = dict(self._engines)
                router_seed = self._router.seed
                next_id = self._next_id
            shards: Dict[str, Optional[str]] = {}
            for sid in range(self._num_shards):
                engine = engines.get(sid)
                if engine is None:
                    shards[str(sid)] = None
                    continue
                name = f"shard-{sid:03d}"
                save_index(engine.index, root / name, version=3)
                shards[str(sid)] = name
            doc = {
                "format": "treepi-shards",
                "version": 1,
                "num_shards": self._num_shards,
                "router_seed": router_seed,
                "next_id": next_id,
                "config": config_to_json(self._config),
                "shards": shards,
            }
        tmp = root / "shards.json.tmp"
        tmp.write_text(json.dumps(doc, indent=1, sort_keys=True))
        import os

        os.replace(tmp, root / "shards.json")

    @classmethod
    def open_segments(
        cls,
        root: "Path | str",
        *,
        cache_size: int = 128,
        verify_workers: int = 1,
        max_in_flight: Optional[int] = None,
        admission: str = "degrade",
        rebalance_ratio: Optional[float] = None,
        rebalance_mode: str = "inline",
        fault_policy: Optional[FaultPolicy] = None,
        gather_grace_ms: float = 250.0,
    ) -> "ShardedEngine":
        """Reopen a tier saved by :meth:`save_segments` without rebuilding.

        Each shard's index memory-maps its segment directory (cold open
        is O(manifest) per shard); the routing table is reconstructed by
        replaying every shard's graph ids as *pinned* assignments, so
        post-rebalance placements survive the round trip exactly.
        """
        import json
        from pathlib import Path

        from repro.exceptions import SerializationError
        from repro.persistence import config_from_json, load_index

        root = Path(root)
        manifest = root / "shards.json"
        try:
            doc = json.loads(manifest.read_text())
        except FileNotFoundError:
            raise SerializationError(f"no tier manifest at {manifest}")
        except json.JSONDecodeError as exc:
            raise SerializationError(f"corrupt tier manifest {manifest}: {exc}")
        if doc.get("format") != "treepi-shards" or doc.get("version") != 1:
            raise SerializationError(
                f"{manifest} is not a v1 treepi-shards manifest "
                f"(format={doc.get('format')!r}, version={doc.get('version')!r})"
            )
        self = cls.__new__(cls)
        self._init_tier(
            config_from_json(doc["config"]),
            int(doc["num_shards"]),
            cache_size=cache_size,
            verify_workers=verify_workers,
            max_in_flight=max_in_flight,
            admission=admission,
            rebalance_ratio=rebalance_ratio,
            rebalance_mode=rebalance_mode,
            router_seed=int(doc["router_seed"]),
            fault_policy=fault_policy,
            gather_grace_ms=gather_grace_ms,
        )
        engines: Dict[int, Optional[QueryEngine]] = {}
        placements: List[Tuple[int, List[int]]] = []
        for sid in range(int(doc["num_shards"])):
            name = doc["shards"].get(str(sid))
            if name is None:
                engines[sid] = None
                continue
            index = load_index(root / name)
            engines[sid] = QueryEngine(
                index,
                cache_size=cache_size,
                verify_workers=verify_workers,
            )
            placements.append((sid, index.database.graph_ids()))
        with self._mutex:
            self._next_id = int(doc["next_id"])
            self._engines.update(engines)
            for sid, gids in placements:
                for gid in gids:
                    self._router.assign(gid, shard=sid)
        return self

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    def _admit(self) -> bool:
        """Take an in-flight slot; ``False`` means degrade at the door."""
        cap = self._max_in_flight
        rejected = False
        admitted = True
        with self._mutex:
            if cap is not None and self._in_flight >= cap:
                admitted = False
                if self._admission == "reject":
                    self._counters.admission_rejected += 1
                    rejected = True
                else:
                    self._counters.admission_degraded += 1
            else:
                self._in_flight += 1
        if rejected:
            raise AdmissionError(
                f"in-flight cap {cap} reached; retry when load drops"
            )
        return admitted

    def _release(self) -> None:
        with self._mutex:
            self._in_flight -= 1

    def _admission_degraded(self) -> QueryResult:
        """A sound never-dispatched answer: everything unresolved."""
        with self._mutex:
            universe = self._router.all_ids()
        return QueryResult(
            matches=frozenset(),
            complete=False,
            unresolved=frozenset(universe),
            degraded_reason=(
                f"admission: in-flight cap {self._max_in_flight} reached"
            ),
        )

    # ------------------------------------------------------------------
    # scatter / gather / merge
    # ------------------------------------------------------------------
    @guarded_by("_rw", mode="read")
    def _scatter(
        self,
        queries: List[LabeledGraph],
        budget: Optional[QueryBudget],
        batched: bool,
    ) -> List[QueryResult]:
        """Fan ``queries`` to every built shard and merge the answers."""
        with self._mutex:
            engines = [
                (sid, engine)
                for sid, engine in sorted(self._engines.items())
                if engine is not None
            ]
            self._counters.queries += len(queries)
            if batched:
                self._counters.batches += 1
            self._counters.fanouts += len(engines)
        if not engines:
            return [QueryResult(matches=frozenset()) for _ in queries]
        outcomes = self._dispatch_all(engines, queries, budget, batched)
        return self._merge(queries, outcomes)

    def _dispatch_all(
        self,
        engines: List[Tuple[int, QueryEngine]],
        queries: List[LabeledGraph],
        budget: Optional[QueryBudget],
        batched: bool,
    ) -> List[_ShardOutcome]:
        """Run every shard on its own thread and gather with a deadline."""
        deadline_s: Optional[float] = None
        if budget is not None and budget.deadline_ms is not None:
            deadline_s = budget.deadline_ms / 1000.0
        pool = ThreadPoolExecutor(
            max_workers=len(engines), thread_name_prefix="repro-shard"
        )
        try:
            futures = [
                (
                    sid,
                    pool.submit(
                        self._dispatch_one, sid, engine, queries, budget, batched
                    ),
                )
                for sid, engine in engines
            ]
            outcomes = self._gather(futures, deadline_s)
        finally:
            # Never join hung workers: a shard stalled past its deadline
            # must not stall the merge.  The abandoned thread finishes
            # (or sleeps) on its own; its result is simply unused.
            # Queued-but-unstarted shards are cancelled outright so the
            # abandoned pool cannot start new work after the gather.
            pool.shutdown(wait=False, cancel_futures=True)
        faults = sum(1 for o in outcomes if o.status == "fault")
        timeouts = sum(1 for o in outcomes if o.status == "timeout")
        if faults or timeouts:
            with self._mutex:
                self._counters.shard_faults += faults
                self._counters.shard_timeouts += timeouts
        return outcomes

    def _dispatch_one(
        self,
        sid: int,
        engine: QueryEngine,
        queries: List[LabeledGraph],
        budget: Optional[QueryBudget],
        batched: bool,
    ) -> List[QueryResult]:
        """One shard's work, on a pool thread (its budget clock starts
        inside the engine call, so deadlines are truly per-shard)."""
        self._fault_policy.before_query(sid)
        if batched:
            return engine.query_batch(queries, budget=budget)
        return [engine.query(queries[0], budget=budget)]

    def _gather(
        self,
        futures: List[Tuple[int, "Future[List[QueryResult]]"]],
        deadline_s: Optional[float],
    ) -> List[_ShardOutcome]:
        """Collect every shard, never waiting past deadline + grace.

        Even without a client deadline the join is bounded: a wedged
        shard thread (lock bug, runaway backend) must surface as a
        shard timeout, not hang the serving thread forever.
        """
        limit: Optional[float] = None
        if deadline_s is not None:
            limit = time.monotonic() + deadline_s + self._grace
        outcomes: List[_ShardOutcome] = []
        for sid, future in futures:
            if limit is None:
                wait_s = _UNBOUNDED_GATHER_CAP_S
            else:
                wait_s = max(0.0, limit - time.monotonic())
            try:
                payload = future.result(timeout=wait_s)
            except FuturesTimeout:
                future.cancel()
                outcomes.append(_ShardOutcome(sid, "timeout", None, None))
            except Exception as exc:
                if isinstance(exc, ContractViolation):
                    raise  # locking bugs must surface, never degrade away
                outcomes.append(_ShardOutcome(sid, "fault", None, exc))
            else:
                outcomes.append(_ShardOutcome(sid, "ok", payload, None))
        return outcomes

    def _merge(
        self, queries: List[LabeledGraph], outcomes: List[_ShardOutcome]
    ) -> List[QueryResult]:
        """Union per-shard results position-wise; bracket missing shards."""
        ok: List[Tuple[int, List[QueryResult]]] = [
            (o.shard_id, o.results)
            for o in outcomes
            if o.status == "ok" and o.results is not None
        ]
        failed_universe: List[int] = []
        failure_reasons: List[str] = []
        for o in outcomes:
            if o.status == "ok":
                continue
            failed_universe.extend(self._shard_universe(o.shard_id))
            if o.status == "timeout":
                failure_reasons.append(f"shard {o.shard_id}: timeout")
            else:
                failure_reasons.append(
                    f"shard {o.shard_id}: fault({type(o.error).__name__})"
                )
        merged = [
            self._merge_one(
                [(sid, results[i]) for sid, results in ok],
                frozenset(failed_universe),
                failure_reasons,
            )
            for i in range(len(queries))
        ]
        degraded = sum(1 for r in merged if not r.complete)
        if degraded:
            with self._mutex:
                self._counters.degraded_results += degraded
        return merged

    def _merge_one(
        self,
        per_shard: List[Tuple[int, QueryResult]],
        failed_universe: FrozenSet[int],
        failure_reasons: List[str],
    ) -> QueryResult:
        """Merge one query's shard results into one sound answer.

        Shards hold disjoint graph-id sets, so unions never collide;
        ``unresolved`` still subtracts ``matches`` defensively so the
        bracket invariant holds by construction.  Phase timings sum
        (total shard work, not wall-clock); ``partition_size`` /
        ``sfq_size`` take the max since every shard partitions the same
        query; verification counters merge into a fresh record so
        shard-owned (possibly cached) results are never mutated.
        """
        matched: Set[int] = set()
        unresolved: Set[int] = set(failed_universe)
        reasons = list(failure_reasons)
        complete = not failure_reasons
        verification = VerificationStats()
        phase: Dict[str, float] = {}
        filtered = pruned = exhausted = 0
        partition = sfq = 0
        direct = bool(per_shard) and not failure_reasons
        for sid, result in per_shard:
            matched.update(result.matches)
            unresolved.update(result.unresolved)
            if not result.complete:
                complete = False
                reasons.append(
                    f"shard {sid}: {result.degraded_reason or 'degraded'}"
                )
            verification.merge(result.verification)
            for key, seconds in result.phase_seconds.items():
                phase[key] = phase.get(key, 0.0) + seconds
            filtered += result.candidates_after_filter
            pruned += result.candidates_after_prune
            exhausted += result.prune_exhausted
            partition = max(partition, result.partition_size)
            sfq = max(sfq, result.sfq_size)
            direct = direct and result.direct_hit
        unresolved.difference_update(matched)
        return QueryResult(
            matches=frozenset(matched),
            direct_hit=direct,
            partition_size=partition,
            sfq_size=sfq,
            candidates_after_filter=filtered,
            candidates_after_prune=pruned,
            phase_seconds=phase,
            verification=verification,
            complete=complete,
            unresolved=frozenset(unresolved),
            degraded_reason="; ".join(reasons) if reasons else None,
            prune_exhausted=exhausted,
        )

    def _shard_universe(self, sid: int) -> List[int]:
        """The graph ids a missing shard must leave unresolved."""
        with self._mutex:
            ids = self._router.ids_on(sid)
        return ids

    # ------------------------------------------------------------------
    # shard lifecycle / rebalancing internals
    # ------------------------------------------------------------------
    def _ensure_engine(
        self, sid: int, graph: LabeledGraph, gid: int
    ) -> None:
        """Build shard ``sid``'s engine around its first graph.

        The (cheap, single-graph) build runs outside the tier mutex and
        installs with a check-and-set; a racing builder routes its
        graph through the winner instead.
        """
        db = GraphDatabase()
        db.add(graph, graph_id=gid)
        built = QueryEngine(
            TreePiIndex.build(db, self._single_graph_config()),
            cache_size=self._cache_size,
            verify_workers=self._verify_workers,
        )
        with self._mutex:
            existing = self._engines.get(sid)
            if existing is None:
                self._engines[sid] = built
        if existing is not None:
            existing.insert(graph, graph_id=gid)

    def _single_graph_config(self) -> TreePiConfig:
        """Build knobs for a one-graph lazy build (no process pool)."""
        if self._config.workers != 1:
            return replace(self._config, workers=1)
        return self._config

    def _maybe_rebalance(self) -> None:
        """Post-insert skew check; runs or schedules a rebalance round."""
        ratio = self._rebalance_ratio
        if ratio is None:
            return
        with self._mutex:
            current = self._router.skew()
            already = self._rebalance_pending
        if current < ratio:
            return
        if self._rebalance_mode == "inline":
            self.rebalance()
            return
        if already:
            return
        with self._mutex:
            if self._rebalance_pending:
                return
            self._rebalance_pending = True
        thread = threading.Thread(
            target=self._background_rebalance,
            name="repro-reshard",
            daemon=True,
        )
        with self._mutex:
            self._rebalance_thread = thread
        thread.start()

    def _background_rebalance(self) -> None:
        try:
            self.rebalance()
        finally:
            with self._mutex:
                self._rebalance_pending = False

    @guarded_by("_rw", mode="write")
    def _rebalance_locked(self) -> int:
        """Move graphs per the router's plan (caller holds the write lock)."""
        with self._mutex:
            plan = self._router.rebalance_plan()
        if not plan:
            return 0
        for move in plan:
            self._move_graph(move)
        with self._mutex:
            self._router.apply(plan)
            self._counters.rebalances += 1
            self._counters.graphs_moved += len(plan)
        return len(plan)

    def _move_graph(self, move: ShardMove) -> None:
        """Relocate one graph between shard engines (write lock held)."""
        with self._mutex:
            src_engine = self._engines.get(move.src)
            dst_engine = self._engines.get(move.dst)
        if src_engine is None:
            raise IndexError_(
                f"rebalance source shard {move.src} has no engine"
            )
        graph = src_engine.index.database[move.graph_id]
        src_engine.delete(move.graph_id)
        if dst_engine is None:
            self._ensure_engine(move.dst, graph, move.graph_id)
        else:
            dst_engine.insert(graph, graph_id=move.graph_id)
