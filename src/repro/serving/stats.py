"""Serving-tier statistics: per-shard engine counters plus a rollup.

Two layers of observability, deliberately kept separate:

* each shard's :class:`~repro.core.statistics.EngineStats` describes
  work that shard's engine actually did (its own locks guard it);
* :class:`TierCounters` describes what the *tier* did — fan-outs,
  admission decisions, shard faults, rebalances — events no single
  shard can see.

:class:`ShardedStats` packages consistent snapshots of both.  Its
:attr:`~ShardedStats.rollup` is the field-wise sum of the per-shard
snapshots and nothing else — the differential suite's anti-inflation
gate holds the tier to exactly that identity, so tier bookkeeping can
never double-count shard work.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict

from repro.core.statistics import EngineStats


@dataclass
class TierCounters:
    """Scatter-gather events counted at the tier, not inside any shard.

    Mutable shared state owned by :class:`repro.serving.ShardedEngine`
    and guarded by its ``_mutex`` (REPRO201 discipline, same as
    :class:`~repro.core.statistics.EngineStats` under the single
    engine); read consistent copies via :meth:`snapshot`.
    """

    queries: int = 0             # query() calls + query_batch() members
    batches: int = 0             # query_batch() calls
    fanouts: int = 0             # shard dispatches issued
    admission_rejected: int = 0  # calls refused with AdmissionError
    admission_degraded: int = 0  # calls degraded at the door (never dispatched)
    shard_faults: int = 0        # dispatches that raised
    shard_timeouts: int = 0      # dispatches abandoned past deadline + grace
    degraded_results: int = 0    # merged results returned complete=False
    inserts: int = 0
    deletes: int = 0
    rebalances: int = 0          # rebalance rounds that moved anything
    graphs_moved: int = 0        # graphs relocated across all rounds

    def snapshot(self) -> "TierCounters":
        """An independent copy (safe to keep across further traffic)."""
        return replace(self)


@dataclass
class ShardedStats:
    """One consistent observation of a :class:`ShardedEngine`.

    ``shards`` maps shard id to that engine's counter snapshot (shards
    with no engine built yet report all-zero stats).  Both layers are
    snapshots taken by ``ShardedEngine.stats`` — mutating them affects
    nothing live.
    """

    tier: TierCounters = field(default_factory=TierCounters)
    shards: Dict[int, EngineStats] = field(default_factory=dict)

    @property
    def rollup(self) -> EngineStats:
        """Field-wise sum of the per-shard stats — no tier additions.

        The anti-inflation invariant: every rollup field equals the sum
        of that field over ``shards``, always.  Tier-level events live
        in :attr:`tier` and never leak in here.
        """
        totals = {
            f.name: sum(getattr(s, f.name) for s in self.shards.values())
            for f in fields(EngineStats)
        }
        return EngineStats(**totals)
