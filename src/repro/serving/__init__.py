"""Sharded scatter-gather serving tier.

The single :class:`repro.core.engine.QueryEngine` serves one index on
one machine-sized corpus.  This package is the horizontal step the
roadmap's north star calls for: :class:`ShardedEngine` partitions a
:class:`repro.graphs.graph.GraphDatabase` into K disjoint shards
(:class:`ShardRouter`), builds one engine per shard, and serves the
same ``query`` / ``query_batch`` / ``insert`` / ``delete`` surface by
scatter-gather.

TreePi's filter-then-verify answer sets compose trivially across
disjoint partitions — the union of per-shard answers *is* the exact
answer — so the merge layer adds no approximation.  What it does add
is a serving contract (see ``docs/SERVING.md``):

* per-shard deadlines via :class:`repro.core.budget.QueryBudget`, with
  shard-level degradation — a late or failed shard contributes its
  unresolved bracket (or its full shard universe) so the merged result
  always satisfies ``matches ⊆ exact ⊆ matches ∪ unresolved``;
* admission control — an in-flight cap that rejects
  (:class:`repro.exceptions.AdmissionError`) or degrades *before*
  dispatch;
* rebalancing on insert skew behind the tier's writer-preferring lock.
"""

from repro.serving.faults import FaultPolicy, ScriptedFaults
from repro.serving.router import ShardMove, ShardRouter
from repro.serving.sharded import ShardedEngine
from repro.serving.stats import ShardedStats, TierCounters

__all__ = [
    "FaultPolicy",
    "ScriptedFaults",
    "ShardMove",
    "ShardRouter",
    "ShardedEngine",
    "ShardedStats",
    "TierCounters",
]
