"""Fault-injection hooks for the sharded serving tier.

The degradation contract (``docs/SERVING.md``) promises that a shard
which raises, times out, or hangs contributes a sound unresolved
bracket instead of corrupting the merged answer.  That promise is only
testable if faults can be *provoked on demand*: a
:class:`FaultPolicy` is consulted on the dispatch thread immediately
before a shard's engine runs, so a scripted policy can make exactly
one shard raise or stall while the rest of the scatter proceeds
normally.

The default policy does nothing and costs one virtual call per
dispatch.  :class:`ScriptedFaults` is the test harness's workhorse:
thread-safe, deterministic, and self-draining (each scripted fault
fires a fixed number of times, then the shard recovers).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple


class FaultPolicy:
    """Dispatch-time hook; the no-op base is the production default."""

    def before_query(self, shard_id: int) -> None:
        """Called on the dispatch worker just before ``shard_id`` runs.

        Implementations may raise (the tier records a shard fault and
        degrades soundly) or sleep past the gather deadline (recorded
        as a shard timeout).  Returning normally lets the shard serve.
        """
        return None


#: ``(kind, payload, exc_factory)`` — kind is "raise" or "hang".
_Fault = Tuple[str, float, Optional[Callable[[], BaseException]]]


class ScriptedFaults(FaultPolicy):
    """Deterministic per-shard fault scripts for tests and chaos drills.

    Faults queue FIFO per shard and each entry fires once; an exhausted
    script leaves the shard healthy, which is what the recovery tests
    lean on.  Safe to share across dispatch threads.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._scripts: Dict[int, List[_Fault]] = {}
        self._fired = 0

    def fail(
        self,
        shard_id: int,
        exc_factory: Optional[Callable[[], BaseException]] = None,
        times: int = 1,
    ) -> None:
        """Script ``times`` dispatch failures on ``shard_id``.

        ``exc_factory`` builds the exception per firing (default: a
        plain ``RuntimeError`` — deliberately *not* a ``ReproError``,
        so the tier's handling of foreign exceptions is what gets
        exercised).
        """
        with self._lock:
            queue = self._scripts.setdefault(shard_id, [])
            queue.extend(("raise", 0.0, exc_factory) for _ in range(times))

    def hang(self, shard_id: int, seconds: float, times: int = 1) -> None:
        """Script ``times`` stalls of ``seconds`` on ``shard_id``.

        A stall longer than the gather's deadline + grace is observed
        as a shard timeout; a short one just adds latency.
        """
        with self._lock:
            queue = self._scripts.setdefault(shard_id, [])
            queue.extend(("hang", seconds, None) for _ in range(times))

    @property
    def fired(self) -> int:
        """How many scripted faults have fired so far."""
        with self._lock:
            return self._fired

    def pending(self, shard_id: int) -> int:
        """How many scripted faults remain queued for ``shard_id``."""
        with self._lock:
            return len(self._scripts.get(shard_id, ()))

    def before_query(self, shard_id: int) -> None:
        fault: Optional[_Fault] = None
        with self._lock:
            queue = self._scripts.get(shard_id)
            if queue:
                fault = queue.pop(0)
                self._fired += 1
        if fault is None:
            return
        kind, seconds, exc_factory = fault
        if kind == "hang":
            time.sleep(seconds)
            return
        exc = exc_factory() if exc_factory is not None else RuntimeError(
            f"injected fault on shard {shard_id}"
        )
        raise exc
