"""Stable hash-with-rebalance shard routing.

The router owns the global ``graph id -> shard`` map of a
:class:`repro.serving.ShardedEngine`.  Placement is a pure function of
``(graph_id, seed, num_shards)`` — a multiplicative (Fibonacci) hash —
so a fixed seed routes identically across runs, processes and replayed
corpora.  Hashing alone can leave tiny or adversarial corpora skewed,
so the router also plans *rebalances*: deterministic move lists that
bring every shard's size into the tight ``[floor(n/K), ceil(n/K)]``
band while moving as few graphs as possible.  A graph moved off its
hash-home keeps its explicit assignment until a later plan moves it
again ("stable hash *with* rebalance", not consistent hashing).

The class is deliberately lock-free: it is plain bookkeeping, and the
owning engine serializes every call under its own mutex.  All outputs
(id lists, sizes, plans) are freshly built and sorted, never views of
internal state.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Set

from repro.exceptions import ConfigError, IndexError_

#: Knuth's multiplicative hashing constant (2**32 / phi, odd).
_GOLDEN = 0x9E3779B1
_MASK32 = 0xFFFFFFFF


class ShardMove(NamedTuple):
    """One planned relocation: ``graph_id`` leaves ``src`` for ``dst``."""

    graph_id: int
    src: int
    dst: int


class ShardRouter:
    """Deterministic graph-id placement across ``num_shards`` shards.

    Parameters
    ----------
    num_shards:
        Number of shards, ``>= 1``.  Fixed for the router's lifetime.
    seed:
        Mixed into the placement hash so distinct deployments (or test
        corpora) can de-correlate their shard layouts while each stays
        fully reproducible.
    """

    def __init__(self, num_shards: int, seed: int = 0) -> None:
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        self._num_shards = num_shards
        self._seed = seed
        self._assignment: Dict[int, int] = {}
        self._members: Dict[int, Set[int]] = {
            sid: set() for sid in range(num_shards)
        }

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self._num_shards

    @property
    def seed(self) -> int:
        return self._seed

    def __len__(self) -> int:
        return len(self._assignment)

    def home_shard(self, graph_id: int) -> int:
        """The pure-hash placement of ``graph_id`` (ignores rebalances)."""
        mixed = ((graph_id + self._seed + 1) * _GOLDEN) & _MASK32
        mixed ^= mixed >> 16
        return mixed % self._num_shards

    def assign(self, graph_id: int, shard: int | None = None) -> int:
        """Place ``graph_id`` (on its hash home unless ``shard`` pins one).

        Returns the shard chosen.  Assigning an id twice is a caller
        bug, not a routing outcome, and raises.
        """
        if graph_id in self._assignment:
            raise IndexError_(
                f"graph {graph_id} is already routed to shard "
                f"{self._assignment[graph_id]}"
            )
        sid = self.home_shard(graph_id) if shard is None else shard
        self._check_shard(sid)
        self._assignment[graph_id] = sid
        self._members[sid].add(graph_id)
        return sid

    def locate(self, graph_id: int) -> int:
        """The shard currently holding ``graph_id``."""
        try:
            return self._assignment[graph_id]
        except KeyError:
            raise IndexError_(f"graph {graph_id} is not routed") from None

    def remove(self, graph_id: int) -> int:
        """Forget ``graph_id``; returns the shard it lived on."""
        sid = self.locate(graph_id)
        del self._assignment[graph_id]
        self._members[sid].discard(graph_id)
        return sid

    def _check_shard(self, sid: int) -> None:
        if not 0 <= sid < self._num_shards:
            raise ConfigError(
                f"shard {sid} out of range (router has {self._num_shards})"
            )

    # ------------------------------------------------------------------
    # inspection (all outputs freshly built — never internal views)
    # ------------------------------------------------------------------
    def all_ids(self) -> List[int]:
        """Every routed graph id, sorted."""
        return sorted(self._assignment)

    def ids_on(self, sid: int) -> List[int]:
        """Sorted graph ids currently routed to shard ``sid``."""
        self._check_shard(sid)
        return sorted(self._members[sid])

    def sizes(self) -> Dict[int, int]:
        """``shard id -> member count`` for every shard (empty included)."""
        return {sid: len(self._members[sid]) for sid in range(self._num_shards)}

    def skew(self) -> float:
        """``max/min`` shard-size ratio — the rebalance trigger metric.

        ``1.0`` for a perfectly even (or empty) layout; ``inf`` when any
        shard is empty while another is not.
        """
        counts = [len(self._members[sid]) for sid in range(self._num_shards)]
        largest = max(counts)
        smallest = min(counts)
        if smallest == 0:
            return 1.0 if largest == 0 else float("inf")
        return largest / smallest

    # ------------------------------------------------------------------
    # rebalancing
    # ------------------------------------------------------------------
    def rebalance_plan(self) -> List[ShardMove]:
        """A deterministic move list restoring the tight balance band.

        Every shard ends within ``[floor(n/K), ceil(n/K)]`` members.
        The plan is minimal in moved-graph count: targets keep each
        shard as close to its current size as the band allows, so only
        genuine excess travels.  Donors shed their *highest* ids first
        (the most recently inserted — old placements stay sticky), and
        receivers fill in ascending shard order.  The plan only
        describes moves; call :meth:`apply` after the data actually
        moved.
        """
        total = len(self._assignment)
        base, extra = divmod(total, self._num_shards)
        sizes = {sid: len(self._members[sid]) for sid in range(self._num_shards)}
        # Hand the ceil slots to the currently-largest shards (ties by
        # shard id) so the plan never moves more than the imbalance.
        by_fullness = sorted(sizes, key=lambda sid: (-sizes[sid], sid))
        targets = {
            sid: base + (1 if rank < extra else 0)
            for rank, sid in enumerate(by_fullness)
        }
        surplus: List[ShardMove] = []
        for sid in range(self._num_shards):
            excess = sizes[sid] - targets[sid]
            if excess > 0:
                for gid in sorted(self._members[sid], reverse=True)[:excess]:
                    surplus.append(ShardMove(gid, sid, -1))
        surplus.sort()
        deficits = [
            sid
            for sid in range(self._num_shards)
            for _ in range(max(0, targets[sid] - sizes[sid]))
        ]
        return [
            ShardMove(move.graph_id, move.src, dst)
            for move, dst in zip(surplus, deficits)
        ]

    def apply(self, moves: List[ShardMove]) -> None:
        """Commit ``moves`` to the routing table (data already moved)."""
        for gid, src, dst in moves:
            if self._assignment.get(gid) != src:
                raise IndexError_(
                    f"stale rebalance plan: graph {gid} is not on shard {src}"
                )
            self._check_shard(dst)
            self._members[src].discard(gid)
            self._members[dst].add(gid)
            self._assignment[gid] = dst
