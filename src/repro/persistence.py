"""Index persistence: save/load a built TreePi index without re-mining.

The on-disk format is a single JSON document embedding the database, the
configuration, and every feature with its center locations and support
sets — everything :class:`repro.core.TreePiIndex` holds.  Loading
reconstructs an index that answers queries identically to the original
(tested byte-for-byte on query results).

Three format versions are understood:

* **v1** (legacy) tags every label occurrence with its type and spells
  each center location as a nested list — verbose but self-describing.
* **v2** (default, :data:`FORMAT_VERSION`) stores one
  :class:`~repro.storage.LabelInterner` table per document and
  references labels by dense id everywhere; feature occurrences are the
  raw :class:`~repro.storage.OccurrenceStore` columns (sorted graph-id
  column, offset column, delta-encoded flattened center column).
* **v3** is not a JSON document at all: ``save_index(index, path,
  version=3)`` writes a *segment directory* (binary column files plus a
  small manifest — see :mod:`repro.storage.segments`), and
  ``load_index`` of a directory opens it lazily, memory-mapping the
  columns instead of deserializing them.

``save_index`` writes v2 by default; ``load_index`` accepts all three,
and an unknown or future version raises
:class:`~repro.exceptions.SerializationError` with an actionable message
instead of mis-decoding.

Labels are stored with explicit type tags so integers, strings, and the
tuple labels produced by the directed subdivision encoding all round-trip
losslessly (plain JSON would silently turn tuples into lists and integer
keys into strings).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.feature import FeatureTree
from repro.core.statistics import IndexStats
from repro.core.treepi import TreePiConfig, TreePiIndex
from repro.exceptions import SerializationError
from repro.graphs.graph import GraphDatabase, LabeledGraph
from repro.mining.subtree_miner import MiningStats
from repro.mining.support import SupportFunction
from repro.storage import LabelInterner, OccurrenceStore

# The typed-label and interned-graph codecs are shared with the v3
# segment writer and live below both layers; re-exported here because
# this module is their historical home.
from repro.storage.codec import (
    decode_label,
    encode_label,
    graph_from_columns as _graph_from_columns,
    graph_to_columns as _graph_to_columns,
)
from repro.storage.segments import (
    DEFAULT_COMPACT_THRESHOLD,
    DEFAULT_MEMTABLE_LIMIT,
    LsmStore,
    SegmentGraphDatabase,
    SegmentStore,
    initialize_directory,
)

FORMAT_NAME = "treepi-index"
FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2, 3)


# ----------------------------------------------------------------------
# graphs
# ----------------------------------------------------------------------
def graph_to_json(graph: LabeledGraph) -> Dict[str, Any]:
    return {
        "vertices": [encode_label(l) for l in graph.vertex_labels()],
        "edges": [
            [u, v, encode_label(label)] for u, v, label in graph.edges()
        ],
    }


def graph_from_json(data: Dict[str, Any], graph_id: Optional[int] = None) -> LabeledGraph:
    try:
        graph = LabeledGraph(
            [decode_label(l) for l in data["vertices"]], graph_id=graph_id
        )
        for u, v, label in data["edges"]:
            graph.add_edge(u, v, decode_label(label))
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed graph record: {exc}") from exc
    return graph


# ----------------------------------------------------------------------
# config / stats
# ----------------------------------------------------------------------
def config_to_json(config: TreePiConfig) -> Dict[str, Any]:
    # ``workers`` is deliberately absent: it is a runtime knob that cannot
    # change what gets built (the parallel build merges in canonical-key
    # order), and serializing it would break the guarantee that indexes
    # built with any worker count are byte-identical on disk.
    return {
        "alpha": config.support.alpha,
        "beta": config.support.beta,
        "eta": config.support.eta,
        "gamma": config.gamma,
        "delta": config.delta,
        "enable_center_prune": config.enable_center_prune,
        "augment_small_subtrees": config.augment_small_subtrees,
        "paths_only": config.paths_only,
        "feature_index": config.feature_index,
        "direct_verification_max_edges": config.direct_verification_max_edges,
        "center_prune_budget": config.center_prune_budget,
        "max_embeddings_per_graph": config.max_embeddings_per_graph,
        "seed": config.seed,
    }


#: Backwards-compatible private aliases (the public names are what the
#: sharded serving tier persists in its ``shards.json``).
_config_to_json = config_to_json


def config_from_json(data: Dict[str, Any]) -> TreePiConfig:
    return TreePiConfig(
        support=SupportFunction(data["alpha"], data["beta"], data["eta"]),
        gamma=data["gamma"],
        delta=data["delta"],
        enable_center_prune=data["enable_center_prune"],
        augment_small_subtrees=data["augment_small_subtrees"],
        paths_only=data.get("paths_only", False),
        feature_index=data.get("feature_index", "trie"),
        direct_verification_max_edges=data.get("direct_verification_max_edges", 5),
        center_prune_budget=data.get("center_prune_budget", 2000),
        max_embeddings_per_graph=data["max_embeddings_per_graph"],
        seed=data["seed"],
    )


_config_from_json = config_from_json


def _stats_to_json(stats: IndexStats) -> Dict[str, Any]:
    return {
        "num_features": stats.num_features,
        "features_by_size": {str(k): v for k, v in stats.features_by_size.items()},
        "total_center_locations": stats.total_center_locations,
        "build_seconds": stats.build_seconds,
        "shrink_removed": stats.shrink_removed,
        "mining": {
            "patterns_per_level": {
                str(k): v for k, v in stats.mining.patterns_per_level.items()
            },
            "candidates_per_level": {
                str(k): v for k, v in stats.mining.candidates_per_level.items()
            },
            "elapsed_seconds": stats.mining.elapsed_seconds,
        },
    }


def _stats_from_json(data: Dict[str, Any]) -> IndexStats:
    mining = MiningStats(
        patterns_per_level={
            int(k): v for k, v in data["mining"]["patterns_per_level"].items()
        },
        candidates_per_level={
            int(k): v for k, v in data["mining"]["candidates_per_level"].items()
        },
        elapsed_seconds=data["mining"]["elapsed_seconds"],
    )
    return IndexStats(
        num_features=data["num_features"],
        features_by_size={int(k): v for k, v in data["features_by_size"].items()},
        total_center_locations=data["total_center_locations"],
        build_seconds=data["build_seconds"],
        mining=mining,
        shrink_removed=data["shrink_removed"],
    )


# ----------------------------------------------------------------------
# features (v1: type-tagged labels, nested center lists)
# ----------------------------------------------------------------------
def _feature_to_json_v1(feature: FeatureTree) -> Dict[str, Any]:
    return {
        "id": feature.feature_id,
        "tree": graph_to_json(feature.tree),
        "key": feature.key,
        "center": list(feature.center),
        "locations": {
            str(gid): sorted(list(c) for c in centers)
            for gid, centers in sorted(feature.locations.items())
        },
    }


def _feature_from_json_v1(data: Dict[str, Any]) -> FeatureTree:
    return FeatureTree(
        feature_id=data["id"],
        tree=graph_from_json(data["tree"]),
        key=data["key"],
        center=tuple(data["center"]),
        locations={
            int(gid): frozenset(tuple(c) for c in centers)
            for gid, centers in data["locations"].items()
        },
    )


# ----------------------------------------------------------------------
# v2: interned label columns + occurrence-store columns
# ----------------------------------------------------------------------
def _feature_to_json_v2(
    feature: FeatureTree, interner: LabelInterner
) -> Dict[str, Any]:
    gids, offsets, centers = feature.store.columns()
    return {
        "id": feature.feature_id,
        "tree": _graph_to_columns(feature.tree, interner),
        "key": feature.key,
        "center": list(feature.center),
        "occ": {"gids": gids, "offsets": offsets, "centers": centers},
    }


def _feature_from_json_v2(data: Dict[str, Any], labels: List[Any]) -> FeatureTree:
    center = tuple(data["center"])
    occ = data["occ"]
    try:
        store = OccurrenceStore.from_columns(
            len(center), occ["gids"], occ["offsets"], occ["centers"]
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(
            f"malformed occurrence columns for feature {data.get('id')!r}: {exc}"
        ) from exc
    return FeatureTree(
        feature_id=data["id"],
        tree=_graph_from_columns(data["tree"], labels),
        key=data["key"],
        center=center,
        store=store,
    )


# ----------------------------------------------------------------------
# top level
# ----------------------------------------------------------------------
def index_to_json(
    index: TreePiIndex, version: int = FORMAT_VERSION
) -> Dict[str, Any]:
    """Serialize an index; ``version`` selects the on-disk dialect."""
    if version not in SUPPORTED_VERSIONS:
        raise SerializationError(
            f"cannot write index format version {version!r}; "
            f"this build supports {SUPPORTED_VERSIONS}"
        )
    if version == 3:
        raise SerializationError(
            "index format v3 is a binary segment directory and has no "
            "JSON document form; use save_index(index, path, version=3)"
        )
    db = index.database
    if version == 1:
        return {
            "format": FORMAT_NAME,
            "version": 1,
            "config": _config_to_json(index.config),
            "stats": _stats_to_json(index.stats),
            "database": {
                str(gid): graph_to_json(db[gid]) for gid in db.graph_ids()
            },
            "features": [_feature_to_json_v1(f) for f in index.features],
        }
    # The interner is filled in canonical order (ascending graph id,
    # vertex order, edge order, then features in id order), so the same
    # index serializes to byte-identical JSON on every run.
    interner = LabelInterner()
    database = {
        str(gid): _graph_to_columns(db[gid], interner)
        for gid in sorted(db.graph_ids())
    }
    features = [_feature_to_json_v2(f, interner) for f in index.features]
    return {
        "format": FORMAT_NAME,
        "version": 2,
        "config": _config_to_json(index.config),
        "stats": _stats_to_json(index.stats),
        "labels": [encode_label(label) for label in interner.labels()],
        "database": database,
        "features": features,
    }


def index_from_json(
    data: Dict[str, Any], source: Optional[Union[str, Path]] = None
) -> TreePiIndex:
    """Reconstruct an index from any supported JSON format version.

    Version negotiation is explicit: documents declaring a version this
    build does not know (e.g. one written by a newer release) are
    rejected with a :class:`SerializationError` naming ``source`` (the
    file the document came from, when known) and the full
    :data:`SUPPORTED_VERSIONS` tuple, rather than being half-decoded
    into a wrong index.
    """
    if data.get("format") != FORMAT_NAME:
        raise SerializationError(f"not a {FORMAT_NAME} document")
    version = data.get("version")
    if version not in SUPPORTED_VERSIONS:
        where = f" in {source}" if source is not None else ""
        raise SerializationError(
            f"index format version {version!r}{where} is not supported by "
            f"this build (supported versions: {SUPPORTED_VERSIONS}). "
            "The document was probably written by a newer release — "
            "upgrade this installation, or re-save the index with "
            f"index_to_json(index, version={FORMAT_VERSION}) from the "
            "release that produced it."
        )
    if version == 3:
        where = f" ({source})" if source is not None else ""
        raise SerializationError(
            "index format version 3 is a segment directory, not a JSON "
            f"document{where}; pass the directory path to load_index()"
        )
    config = _config_from_json(data["config"])
    stats = _stats_from_json(data["stats"])
    db = GraphDatabase()
    if version == 1:
        for gid_str, record in sorted(
            data["database"].items(), key=lambda kv: int(kv[0])
        ):
            db.add(graph_from_json(record), graph_id=int(gid_str))
        features = [_feature_from_json_v1(f) for f in data["features"]]
        return TreePiIndex(db, config, features, stats)
    labels = [decode_label(record) for record in data["labels"]]
    for gid_str, record in sorted(
        data["database"].items(), key=lambda kv: int(kv[0])
    ):
        db.add(_graph_from_columns(record, labels), graph_id=int(gid_str))
    features = [_feature_from_json_v2(f, labels) for f in data["features"]]
    return TreePiIndex(db, config, features, stats)


def save_index(
    index: TreePiIndex, path: Union[str, Path], version: int = FORMAT_VERSION
) -> None:
    """Write the index (database included) to ``path``.

    Versions 1 and 2 write a single JSON document; version 3 writes a
    *segment directory* (see :func:`save_segment_index`).
    """
    if version == 3:
        save_segment_index(index, path)
        return
    with open(path, "w") as f:
        json.dump(index_to_json(index, version=version), f)


def load_index(path: Union[str, Path]) -> TreePiIndex:
    """Reload an index saved by :func:`save_index`; no re-mining happens.

    A directory is opened as a v3 segment directory (lazily — columns
    stay memory-mapped and unread until queries touch them); a file is
    parsed as a v1/v2 JSON document.
    """
    path = Path(path)
    if path.is_dir():
        return load_segment_index(path)
    with open(path) as f:
        try:
            data = json.load(f)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
    return index_from_json(data, source=path)


# ----------------------------------------------------------------------
# v3: memory-mapped segment directories
# ----------------------------------------------------------------------
def save_segment_index(index: TreePiIndex, root: Union[str, Path]) -> None:
    """Write ``index`` as a fresh v3 directory with one base segment.

    The base segment holds every live graph and the fully merged
    occurrence columns of every feature, so saving an LSM-maintained
    index is also an offline compaction.
    """
    db = index.database
    ids = db.graph_ids()
    graphs = [db[gid] for gid in ids]
    payloads = [
        (
            feature.feature_id,
            feature.key,
            tuple(feature.center),
            feature.tree,
            feature.store.columns(),
        )
        for feature in index.features
    ]
    next_graph_id = (max(ids) + 1) if ids else 0
    initialize_directory(
        Path(root),
        graphs,
        payloads,
        next_graph_id,
        extra={
            "config": config_to_json(index.config),
            "stats": _stats_to_json(index.stats),
        },
    )


def load_segment_index(
    root: Union[str, Path],
    memtable_limit: int = DEFAULT_MEMTABLE_LIMIT,
    compact_threshold: int = DEFAULT_COMPACT_THRESHOLD,
) -> TreePiIndex:
    """Open a v3 segment directory lazily.

    O(manifest + segment headers): graphs decode on demand and the
    posting/center columns stay unmapped-in until a query touches them
    (``SegmentStore.columns_touched()`` stays 0 across this call — the
    cold-open benchmark gate pins that).  The returned index is fully
    maintainable: ``insert``/``delete`` buffer into memtables, flush to
    delta segments, and compact — never a full rebuild.
    """
    store = SegmentStore.open(
        root,
        memtable_limit=memtable_limit,
        compact_threshold=compact_threshold,
    )
    ok = False
    try:
        manifest = store.manifest
        config = config_from_json(manifest["config"])
        stats = _stats_from_json(manifest["stats"])
        db = SegmentGraphDatabase(
            store.segments,
            store.tombstones,
            manifest.get("next_graph_id", 0),
            manifest["graphs"],
        )
        features: List[FeatureTree] = []
        by_key: Dict[str, FeatureTree] = {}
        for layer, segment in enumerate(store.segments):
            labels = segment.labels()
            for entry in segment.feature_entries():
                feature = by_key.get(entry.key)
                if feature is None:
                    feature = FeatureTree(
                        feature_id=entry.feature_id,
                        tree=entry.decode_tree(labels),
                        key=entry.key,
                        center=entry.center,
                        store=LsmStore(entry.arity, store.tombstones),
                    )
                    by_key[entry.key] = feature
                    features.append(feature)
                if entry.graph_count:
                    feature.store.flush_to_layer(layer, entry.open_store())
        features.sort(key=lambda f: f.feature_id)
        index = TreePiIndex(db, config, features, stats)
        index.attach_segment_store(store)
        ok = True
        return index
    finally:
        # Ownership transfers to the returned index; on any earlier
        # failure the maps must not leak with the exception.
        if not ok:
            store.close()
