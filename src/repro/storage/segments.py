"""Memory-mapped segment storage — on-disk format v3 (LSM maintenance).

A v3 index is a *directory*: one small JSON manifest plus one or more
immutable binary **segment files**.  Each segment holds an interned
label table, the graph records, and every feature's ``gids`` /
``offsets`` / ``centers`` columns at 8-byte-aligned payload offsets, so
a reader can map the file once and hand out zero-copy
:class:`MmapColumn` views in place of heap ``array`` columns
(:class:`~repro.storage.posting.PostingList` and
:class:`~repro.storage.occurrences.OccurrenceStore` adopt them through
their ``from_buffer`` constructors).  Opening is O(metadata): the
header is parsed eagerly, column pages fault in only when a read
touches them (``Segment.columns_touched`` counts first touches, which
is what the cold-open benchmark gate asserts on).

Maintenance is LSM-style.  ``insert`` buffers new graphs in the
database overlay and new occurrences in per-feature memtables;
``delete`` records a **tombstone epoch** (the segment count at delete
time — data in earlier segments is dead, data flushed later is live,
so delete-then-reinsert of the same id just works).  A flush writes
one immutable *delta segment* and swaps the memtables for mapped
layers; readers always see ``base ∪ deltas − tombstones ∪ memtable``
through :class:`LsmStore`.  Compaction folds everything back into a
single base segment: the merge is prepared into a temp file outside
the writer lock (the engine reuses its generation-checked optimistic
pattern) and committed with an ``os.replace`` plus column swap.

File layout::

    magic  "TPISEG3\\n"                      8 bytes
    u64    header length (little-endian)     8 bytes
    bytes  header JSON (space-padded so the payload starts 8-aligned)
    bytes  payload: columns + graph blob, each 8-byte aligned

Header column descriptors are ``{"o": payload-relative byte offset,
"n": element count, "t": array typecode}``; graphs are stored as a
sorted gid column, a ``'Q'`` byte-offset column, and a concatenated
blob of interned JSON records decoded one graph at a time.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import sys
from array import array
from bisect import bisect_left
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.exceptions import GraphError, SerializationError
from repro.graphs.graph import GraphDatabase, LabeledGraph
from repro.storage.codec import decode_label, encode_label, graph_from_columns, graph_to_columns
from repro.storage.interner import LabelInterner
from repro.storage.occurrences import Center, OccurrenceStore
from repro.storage.posting import IdColumn, PostingList, id_array

if TYPE_CHECKING:
    from repro.core.feature import FeatureTree

MAGIC = b"TPISEG3\n"
MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "treepi-index"
MANIFEST_VERSION = 3

#: Buffered inserts+deletes that trigger a memtable flush to a delta segment.
DEFAULT_MEMTABLE_LIMIT = 64
#: Delta-segment count that makes ``needs_compaction()`` trip.
DEFAULT_COMPACT_THRESHOLD = 4

_ALIGN = 8
_GRAPH_CACHE_LIMIT = 256
_CENTER_CACHE_LIMIT = 64

#: One feature's flush/compaction payload:
#: ``(feature_id, key, center, tree, (gids, offsets, centers))``.
FeaturePayload = Tuple[
    int, str, Tuple[int, ...], LabeledGraph,
    Tuple[Sequence[int], Sequence[int], Sequence[int]],
]


class MmapColumn:
    """A read-only unsigned-int column viewing one mapped segment region.

    Drop-in for the heap ``array('I'/'Q')`` columns inside
    :class:`~repro.storage.posting.PostingList` and
    :class:`~repro.storage.occurrences.OccurrenceStore`: integer
    indexing, ``len``, iteration, ``itemsize``/``typecode``, and slicing
    (slices copy into a real ``array`` so splice/concat paths behave
    identically).  The ``memoryview.cast`` over the mapped region is
    deferred to the first element access — constructing columns at
    segment-open time therefore touches no pages, which keeps cold
    opens O(metadata).
    """

    __slots__ = ("_segment", "_offset", "_count", "typecode", "itemsize", "_view")

    def __init__(
        self, segment: "Segment", offset: int, count: int, typecode: str
    ) -> None:
        self._segment = segment
        self._offset = offset
        self._count = count
        self.typecode = typecode
        self.itemsize = array(typecode).itemsize
        self._view: Optional[memoryview] = None

    def _cast(self) -> memoryview:
        view = self._view
        if view is None:
            view = self._segment._column_view(
                self._offset, self._count * self.itemsize, self.typecode
            )
            self._view = view
        return view

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index: Union[int, slice]) -> Any:
        if isinstance(index, slice):
            return array(self.typecode, self._cast()[index])
        return self._cast()[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self._cast())

    def __repr__(self) -> str:
        return (
            f"MmapColumn({self._segment.path.name}, t={self.typecode!r}, "
            f"n={self._count})"
        )

    def release(self) -> None:
        """Drop the buffer export so the owning mmap can close."""
        view = self._view
        if view is not None:
            view.release()
            self._view = None


@dataclass
class SegmentFeature:
    """One feature's on-segment metadata plus its (lazy) columns."""

    feature_id: int
    key: str
    center: Tuple[int, ...]
    tree_record: Dict[str, Any]
    gids: MmapColumn
    offsets: MmapColumn
    centers: MmapColumn

    @property
    def arity(self) -> int:
        return len(self.center)

    @property
    def graph_count(self) -> int:
        """Support size, straight from header metadata (no page faults)."""
        return len(self.gids)

    def decode_tree(self, labels: Sequence[Any]) -> LabeledGraph:
        return graph_from_columns(self.tree_record, labels)

    def open_store(self) -> OccurrenceStore:
        """The columns as a zero-copy, lazily faulting occurrence store."""
        return OccurrenceStore.from_buffer(
            self.arity, self.gids, self.offsets, self.centers
        )


class Segment:
    """One immutable, memory-mapped v3 segment file.

    The header (labels, graph/feature descriptors, tree records) is
    parsed eagerly; columns and graph records are decoded on demand.
    The file descriptor is closed immediately after mapping — POSIX
    keeps the mapping alive — so an open segment pins one mmap, not one
    fd.  ``columns_touched`` counts columns whose pages were actually
    cast (first element access), the observable the cold-open gate
    asserts to be zero right after :func:`repro.persistence.load_index`.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.columns_touched = 0
        self._closed = False
        self._columns: List[MmapColumn] = []
        self._labels: Optional[List[Any]] = None
        with open(self.path, "rb") as handle:
            try:
                mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            except ValueError as exc:
                raise SerializationError(
                    f"cannot map segment file {self.path}: {exc}"
                ) from exc
        # The map must not leak if header validation throws: release it
        # on every non-success path, lexically in the finally.
        ok = False
        try:
            header = self._parse_header(mapped)
            ok = True
        finally:
            if not ok:
                mapped.close()
        self._mm = mapped
        self._header = header
        self._payload_start = len(MAGIC) + 8 + header["_header_len"]
        gdesc = header["graphs"]
        self._graph_gids = self._column(gdesc["gids"])
        self._graph_blob_index = self._column(gdesc["blob_index"])
        self._blob_offset = self._payload_start + gdesc["blob"]["o"]
        self._features = [
            SegmentFeature(
                feature_id=entry["id"],
                key=entry["key"],
                center=tuple(entry["center"]),
                tree_record=entry["tree"],
                gids=self._column(entry["gids"]),
                offsets=self._column(entry["offsets"]),
                centers=self._column(entry["centers"]),
            )
            for entry in header["features"]
        ]

    def _parse_header(self, mapped: mmap.mmap) -> Dict[str, Any]:
        if len(mapped) < len(MAGIC) + 8 or mapped[: len(MAGIC)] != MAGIC:
            raise SerializationError(f"{self.path} is not a v3 segment file")
        (header_len,) = struct.unpack_from("<Q", mapped, len(MAGIC))
        start = len(MAGIC) + 8
        if start + header_len > len(mapped):
            raise SerializationError(
                f"truncated segment header in {self.path}"
            )
        try:
            header = json.loads(mapped[start : start + header_len].decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise SerializationError(
                f"corrupt segment header in {self.path}: {exc}"
            ) from exc
        if header.get("byteorder") != sys.byteorder:
            raise SerializationError(
                f"segment {self.path} was written on a "
                f"{header.get('byteorder')!r}-endian machine; this host is "
                f"{sys.byteorder!r}-endian"
            )
        header["_header_len"] = header_len
        return header

    def _column(self, desc: Dict[str, Any]) -> MmapColumn:
        column = MmapColumn(self, desc["o"], desc["n"], desc["t"])
        self._columns.append(column)
        return column

    def _column_view(self, offset: int, nbytes: int, typecode: str) -> memoryview:
        if self._closed:
            raise SerializationError(
                f"segment {self.path} is closed (stale reader view)"
            )
        start = self._payload_start + offset
        self.columns_touched += 1
        return memoryview(self._mm)[start : start + nbytes].cast(typecode)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    @property
    def graph_count(self) -> int:
        """Graph records in this segment (header metadata, no faults)."""
        return len(self._graph_gids)

    def graph_gids(self) -> MmapColumn:
        """The sorted gid column (iterating it faults its pages)."""
        return self._graph_gids

    def labels(self) -> List[Any]:
        """The segment's interned label table, decoded once (header-only)."""
        labels = self._labels
        if labels is None:
            labels = [decode_label(record) for record in self._header["labels"]]
            self._labels = labels
        return labels

    def find_graph(self, gid: int) -> int:
        """Position of ``gid`` in the gid column, or ``-1``."""
        gids = self._graph_gids
        i = bisect_left(gids, gid)
        if i < len(gids) and gids[i] == gid:
            return i
        return -1

    def decode_graph(self, gid: int) -> Optional[LabeledGraph]:
        """Decode one graph record, or ``None`` when absent."""
        i = self.find_graph(gid)
        if i < 0:
            return None
        index = self._graph_blob_index
        start = self._blob_offset + index[i]
        end = self._blob_offset + index[i + 1]
        try:
            record = json.loads(self._mm[start:end].decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise SerializationError(
                f"corrupt graph record {gid} in {self.path}: {exc}"
            ) from exc
        return graph_from_columns(record, self.labels(), graph_id=gid)

    def feature_entries(self) -> List[SegmentFeature]:
        return list(self._features)

    def nbytes(self) -> int:
        return len(self._mm)

    def close(self) -> None:
        """Release every column view and unmap the file (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for column in self._columns:
            column.release()
        self._mm.close()

    def __repr__(self) -> str:
        return (
            f"<Segment {self.path.name} graphs={self.graph_count} "
            f"features={len(self._features)} bytes={len(self._mm)}>"
        )


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
def write_segment(
    path: Union[str, Path],
    graphs: Sequence[LabeledGraph],
    features: Sequence[FeaturePayload],
) -> None:
    """Write one immutable segment file.

    ``graphs`` must be sorted by ``graph_id``; feature columns are the
    raw ``OccurrenceStore.columns()`` triples (delta-encoded centers
    included).  The label interner is filled in canonical order (graphs
    first, then feature trees in the given order), so identical inputs
    produce byte-identical files.
    """
    interner = LabelInterner()
    gid_list: List[int] = []
    records: List[bytes] = []
    for graph in graphs:
        if graph.graph_id is None:
            raise SerializationError("segment graphs must carry a graph_id")
        gid_list.append(graph.graph_id)
        records.append(
            json.dumps(
                graph_to_columns(graph, interner), separators=(",", ":")
            ).encode("utf-8")
        )
    tree_records = [
        graph_to_columns(tree, interner) for _, _, _, tree, _ in features
    ]

    payload = bytearray()

    def put_column(values: Union[Sequence[int], array]) -> Dict[str, Any]:
        column = values if isinstance(values, array) else id_array(values)
        while len(payload) % _ALIGN:
            payload.append(0)
        desc = {"o": len(payload), "n": len(column), "t": column.typecode}
        payload.extend(column.tobytes())
        return desc

    blob_index = array("Q", [0])
    for record in records:
        blob_index.append(blob_index[-1] + len(record))
    gdesc: Dict[str, Any] = {
        "gids": put_column(gid_list),
        "blob_index": put_column(blob_index),
    }
    while len(payload) % _ALIGN:
        payload.append(0)
    gdesc["blob"] = {"o": len(payload), "len": int(blob_index[-1])}
    for record in records:
        payload.extend(record)

    fdescs: List[Dict[str, Any]] = []
    for (fid, key, center, _tree, columns), tree_record in zip(
        features, tree_records
    ):
        gids, offsets, centers = columns
        fdescs.append(
            {
                "id": fid,
                "key": key,
                "center": list(center),
                "tree": tree_record,
                "gids": put_column(gids),
                "offsets": put_column(offsets),
                "centers": put_column(centers),
            }
        )

    header = {
        "byteorder": sys.byteorder,
        "labels": [encode_label(label) for label in interner.labels()],
        "graphs": gdesc,
        "features": fdescs,
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    # Pad the header with spaces (JSON-transparent) so the payload
    # starts 8-byte aligned — every column offset is payload-relative
    # and itself aligned, so mapped casts never straddle element
    # boundaries.
    pad = (-(len(MAGIC) + 8 + len(header_bytes))) % _ALIGN
    with open(path, "wb") as handle:
        handle.write(MAGIC)
        handle.write(struct.pack("<Q", len(header_bytes) + pad))
        handle.write(header_bytes)
        handle.write(b" " * pad)
        handle.write(bytes(payload))


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------
def read_manifest(root: Union[str, Path]) -> Dict[str, Any]:
    root = Path(root)
    path = root / MANIFEST_NAME
    try:
        with open(path) as handle:
            manifest = json.load(handle)
    except FileNotFoundError as exc:
        raise SerializationError(
            f"{root} is not a v3 segment directory (missing {MANIFEST_NAME})"
        ) from exc
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
    if manifest.get("format") != MANIFEST_FORMAT:
        raise SerializationError(f"{path} is not a {MANIFEST_FORMAT} manifest")
    if manifest.get("version") != MANIFEST_VERSION:
        raise SerializationError(
            f"segment directory {root} declares version "
            f"{manifest.get('version')!r}; this build reads "
            f"v{MANIFEST_VERSION} segment directories"
        )
    if manifest.get("byteorder", sys.byteorder) != sys.byteorder:
        raise SerializationError(
            f"segment directory {root} was written on a "
            f"{manifest.get('byteorder')!r}-endian machine; this host is "
            f"{sys.byteorder!r}-endian"
        )
    return manifest


def write_manifest(root: Union[str, Path], manifest: Dict[str, Any]) -> None:
    """Atomically (temp + rename) rewrite the manifest."""
    path = Path(root) / MANIFEST_NAME
    tmp = path.with_name(MANIFEST_NAME + ".tmp")
    with open(tmp, "w") as handle:
        json.dump(manifest, handle, sort_keys=True)
    os.replace(tmp, path)


def initialize_directory(
    root: Union[str, Path],
    graphs: Sequence[LabeledGraph],
    features: Sequence[FeaturePayload],
    next_graph_id: int,
    extra: Optional[Dict[str, Any]] = None,
) -> None:
    """Create (or overwrite) a v3 directory with one base segment.

    Stale segment files from a previous save are removed first; the
    manifest is written last, atomically, so a crash mid-save never
    yields a directory whose manifest references missing data.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    for stale in sorted(root.glob("*.seg")) + sorted(root.glob("*.tmp")):
        stale.unlink()
    name = "seg-000000.seg"
    write_segment(root / name, graphs, features)
    manifest: Dict[str, Any] = {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "byteorder": sys.byteorder,
        "segments": [name],
        "next_segment": 1,
        "graphs": len(graphs),
        "next_graph_id": next_graph_id,
        "tombstones": {},
    }
    if extra:
        manifest.update(extra)
    write_manifest(root, manifest)


# ----------------------------------------------------------------------
# merged read views
# ----------------------------------------------------------------------
class LsmStore:
    """One feature's merged occurrence view: layers − tombstones ∪ memtable.

    Layers are immutable :class:`OccurrenceStore` snapshots (usually
    mmap-backed) tagged with the **epoch** — the global segment index
    they were flushed at.  A graph id's data in layer ``j`` is live iff
    ``j >= tombstones.get(gid, 0)``: deleting records the then-current
    segment count as the gid's epoch, killing everything older while
    leaving later re-inserts visible.  The memtable holds unflushed
    occurrences and is always live (deletes pop it immediately).

    Duck-types the :class:`OccurrenceStore` read/maintenance surface
    that :class:`~repro.core.feature.FeatureTree` uses, so the rest of
    the pipeline cannot tell the backings apart.
    """

    __slots__ = ("_arity", "_tomb", "_layers", "_mem", "_gids", "_decoded")

    def __init__(
        self,
        arity: int,
        tombstones: Dict[int, int],
        layers: Iterable[Tuple[int, OccurrenceStore]] = (),
    ) -> None:
        if arity < 1:
            raise ValueError(f"center arity must be >= 1, got {arity}")
        self._arity = arity
        self._tomb = tombstones
        self._layers: List[Tuple[int, OccurrenceStore]] = list(layers)
        self._mem: Dict[int, FrozenSet[Center]] = {}
        self._gids: Optional[PostingList] = None
        self._decoded: Dict[int, FrozenSet[Center]] = {}

    # -- maintenance-side plumbing (called by SegmentStore) ------------
    @property
    def pending(self) -> Mapping[int, FrozenSet[Center]]:
        """The unflushed memtable (gid → centers)."""
        return self._mem

    @property
    def has_layers(self) -> bool:
        return bool(self._layers)

    def invalidate(self) -> None:
        self._gids = None
        self._decoded = {}

    def flush_to_layer(self, epoch: int, store: OccurrenceStore) -> None:
        """Swap the memtable for its freshly written immutable layer."""
        self._layers.append((epoch, store))
        self._mem = {}
        self.invalidate()

    def reset_layers(
        self, layers: Iterable[Tuple[int, OccurrenceStore]]
    ) -> None:
        """Replace every layer *and* the memtable (compaction commit)."""
        self._layers = list(layers)
        self._mem = {}
        self.invalidate()

    # -- OccurrenceStore read surface ----------------------------------
    @property
    def arity(self) -> int:
        return self._arity

    def __len__(self) -> int:
        return len(self.graph_ids())

    def __contains__(self, gid: object) -> bool:
        if not isinstance(gid, int) or gid < 0:
            return False
        return gid in self.graph_ids()

    def graph_ids(self) -> PostingList:
        """The merged live support set (cached until invalidated)."""
        cached = self._gids
        if cached is not None:
            return cached
        if not self._layers and not self._mem:
            result = PostingList()
        elif len(self._layers) == 1 and not self._mem and not self._tomb:
            # Single layer, nothing buffered, nothing deleted anywhere:
            # hand out the layer's own (possibly mmap-backed) column.
            result = self._layers[0][1].graph_ids()
        else:
            live = set(self._mem)
            for epoch, store in self._layers:
                for gid in store.graph_ids():
                    if epoch >= self._tomb.get(gid, 0):
                        live.add(gid)
            result = PostingList._wrap(id_array(sorted(live)))
        self._gids = result
        return result

    def centers_in(self, gid: int) -> FrozenSet[Center]:
        cached = self._decoded.get(gid)
        if cached is not None:
            return cached
        merged = set(self._mem.get(gid, ()))
        epoch = self._tomb.get(gid, 0)
        for layer, store in self._layers:
            if layer >= epoch:
                merged |= store.centers_in(gid)
        result = frozenset(merged)
        if result:
            if len(self._decoded) >= _CENTER_CACHE_LIMIT:
                self._decoded = {}
            self._decoded[gid] = result
        return result

    def items(self) -> Iterator[Tuple[int, FrozenSet[Center]]]:
        for gid in self.graph_ids():
            yield gid, self.centers_in(gid)

    def to_mapping(self) -> Dict[int, FrozenSet[Center]]:
        return dict(self.items())

    def total_centers(self) -> int:
        return sum(len(centers) for _, centers in self.items())

    def columns(self) -> Tuple[List[int], List[int], List[int]]:
        """Fully merged raw columns (serialization / compaction input)."""
        return OccurrenceStore.from_mapping(
            self._arity, self.to_mapping()
        ).columns()

    def nbytes(self) -> int:
        """Mapped layer bytes plus a coarse memtable estimate."""
        total = sum(store.nbytes() for _, store in self._layers)
        total += sum(
            (1 + len(centers) * self._arity) * 8
            for centers in self._mem.values()
        )
        return total

    # -- maintenance hooks (Section 7.1) -------------------------------
    def add_graph(self, gid: int, centers: Iterable[Center]) -> None:
        """Buffer occurrences in the memtable (union semantics, like
        :meth:`OccurrenceStore.add_graph`)."""
        if gid < 0:
            raise ValueError(f"graph ids are non-negative, got {gid}")
        fresh = set(centers)
        if not fresh:
            return
        for center in fresh:
            if len(center) != self._arity:
                raise ValueError(
                    f"center {center!r} has arity {len(center)}, "
                    f"store expects {self._arity}"
                )
        existing = self._mem.get(gid)
        if existing:
            fresh |= existing
        self._mem[gid] = frozenset(fresh)
        self.invalidate()

    def remove_graph(self, gid: int) -> bool:
        """Drop ``gid``'s buffered occurrences.

        Layer data is killed by the database-level tombstone (already
        recorded by the time :meth:`repro.core.treepi.TreePiIndex.delete`
        fans out to features), so the return value reflects whether any
        data remained live *before this call's memtable pop*.
        """
        present = self._mem.pop(gid, None) is not None
        if not present:
            epoch = self._tomb.get(gid, 0)
            present = any(
                layer >= epoch and gid in store
                for layer, store in self._layers
            )
        self.invalidate()
        return present

    def __repr__(self) -> str:
        return (
            f"LsmStore(arity={self._arity}, layers={len(self._layers)}, "
            f"memtable={len(self._mem)})"
        )


class SegmentGraphDatabase(GraphDatabase):
    """A :class:`GraphDatabase` resolving graphs lazily from segments.

    Unflushed inserts live in ``_overlay``; decoded graphs are memoized
    (cleared wholesale at a cap, the same race-free discipline the
    occurrence decode cache uses); ``remove`` of a segment-resident
    graph records the tombstone epoch — the single place deletions are
    written.  ``__len__`` is O(1) off the manifest-carried live count,
    so index construction over a cold directory faults no pages.
    """

    def __init__(
        self,
        segments: List[Segment],
        tombstones: Dict[int, int],
        next_id: int,
        live_count: int,
    ) -> None:
        super().__init__()
        self._segments = segments
        self._tomb = tombstones
        self._overlay: Dict[int, LabeledGraph] = {}
        self._decoded: Dict[int, LabeledGraph] = {}
        self._live: Optional[List[int]] = None
        self._live_count = live_count
        self._next_id = next_id

    # -- plumbing shared with SegmentStore -----------------------------
    @property
    def next_id(self) -> int:
        return self._next_id

    def overlay_graphs(self) -> List[LabeledGraph]:
        """Unflushed inserts, sorted by graph id (the flush payload)."""
        return [self._overlay[gid] for gid in sorted(self._overlay)]

    def overlay_count(self) -> int:
        return len(self._overlay)

    def note_flushed(self) -> None:
        """Overlay graphs are now segment-resident; keep them decoded."""
        if len(self._decoded) + len(self._overlay) > _GRAPH_CACHE_LIMIT:
            self._decoded = {}
        self._decoded.update(self._overlay)
        self._overlay = {}

    def note_compacted(self) -> None:
        """Segments were folded; cached decodes stay valid, views don't."""
        self.note_flushed()
        self._live = None
        self._universe = None

    # -- GraphDatabase surface -----------------------------------------
    def add(self, graph: LabeledGraph, graph_id: Optional[int] = None) -> int:
        if graph_id is None:
            gid = self._next_id
        else:
            if graph_id in self:
                raise GraphError(f"graph id {graph_id} already in use")
            gid = graph_id
        self._next_id = max(self._next_id, gid + 1)
        graph.graph_id = gid
        self._overlay[gid] = graph
        self._live_count += 1
        self._live = None
        self._universe = None
        return gid

    def remove(self, graph_id: int) -> LabeledGraph:
        removed = self._overlay.pop(graph_id, None)
        if removed is None:
            removed = self._resolve(graph_id)
            if removed is None:
                raise GraphError(f"no graph with id {graph_id}")
            self._tomb[graph_id] = len(self._segments)
            self._decoded.pop(graph_id, None)
        self._live_count -= 1
        self._live = None
        self._universe = None
        return removed

    def _resolve(self, gid: int) -> Optional[LabeledGraph]:
        graph = self._overlay.get(gid)
        if graph is not None:
            return graph
        graph = self._decoded.get(gid)
        if graph is not None:
            return graph
        epoch = self._tomb.get(gid, 0)
        for layer in range(len(self._segments) - 1, epoch - 1, -1):
            graph = self._segments[layer].decode_graph(gid)
            if graph is not None:
                if len(self._decoded) >= _GRAPH_CACHE_LIMIT:
                    self._decoded = {}
                self._decoded[gid] = graph
                return graph
        return None

    def __len__(self) -> int:
        return self._live_count

    def __contains__(self, graph_id: int) -> bool:
        return self._resolve(graph_id) is not None

    def __getitem__(self, graph_id: int) -> LabeledGraph:
        graph = self._resolve(graph_id)
        if graph is None:
            raise GraphError(f"no graph with id {graph_id}")
        return graph

    def __iter__(self) -> Iterator[LabeledGraph]:
        for gid in self._live_ids():
            yield self[gid]

    def _live_ids(self) -> List[int]:
        live_list = self._live
        if live_list is None:
            live = set(self._overlay)
            for layer, segment in enumerate(self._segments):
                for gid in segment.graph_gids():
                    if layer >= self._tomb.get(gid, 0):
                        live.add(gid)
            live_list = sorted(live)
            self._live = live_list
        return live_list

    def graph_ids(self) -> List[int]:
        return list(self._live_ids())

    def universe_posting(self) -> PostingList:
        if self._universe is None:
            self._universe = PostingList._wrap(id_array(self._live_ids()))
        return self._universe

    def average_edge_count(self) -> float:
        ids = self._live_ids()
        if not ids:
            return 0.0
        return sum(self[gid].num_edges for gid in ids) / len(ids)


# ----------------------------------------------------------------------
# LSM orchestration
# ----------------------------------------------------------------------
@dataclass
class CompactionPlan:
    """A fully merged segment staged in a temp file, awaiting commit.

    Side-effect free for readers: the temp file is invisible to the
    manifest.  :meth:`discard` is the race path — the engine drops the
    plan when its generation check shows maintenance interleaved with
    the merge.
    """

    tmp_path: Path
    live_graphs: int

    def discard(self) -> None:
        try:
            self.tmp_path.unlink()
        except OSError:
            pass


class SegmentStore:
    """The on-disk side of one mmap-backed index.

    Owns the segment directory: the open :class:`Segment` list (shared,
    in the same order, with the :class:`SegmentGraphDatabase` and every
    :class:`LsmStore` layer epoch), the manifest, the tombstone map, and
    the flush/compaction state machine.  All mutating entry points are
    called with the serving engine's write lock held (the index methods
    delegating here carry ``@guarded_by`` contracts); the exception is
    :meth:`prepare_compaction`, which is read-only by design so the
    expensive merge can run under the read lock.
    """

    def __init__(
        self,
        root: Union[str, Path],
        manifest: Dict[str, Any],
        segments: List[Segment],
        memtable_limit: int = DEFAULT_MEMTABLE_LIMIT,
        compact_threshold: int = DEFAULT_COMPACT_THRESHOLD,
    ) -> None:
        if memtable_limit < 1:
            raise ValueError(
                f"memtable_limit must be >= 1, got {memtable_limit}"
            )
        if compact_threshold < 1:
            raise ValueError(
                f"compact_threshold must be >= 1, got {compact_threshold}"
            )
        self.root = Path(root)
        self._manifest = manifest
        self._segments = segments
        self.tombstones: Dict[int, int] = {
            int(gid): epoch
            for gid, epoch in manifest.get("tombstones", {}).items()
        }
        self._memtable_limit = memtable_limit
        self._compact_threshold = compact_threshold
        self._dirty_ops = 0
        self._db: Optional[SegmentGraphDatabase] = None
        self._features: List["FeatureTree"] = []

    @classmethod
    def open(
        cls,
        root: Union[str, Path],
        memtable_limit: int = DEFAULT_MEMTABLE_LIMIT,
        compact_threshold: int = DEFAULT_COMPACT_THRESHOLD,
    ) -> "SegmentStore":
        """Open a v3 directory: parse the manifest, map every segment.

        O(manifest + headers): no posting/center column is read.
        """
        root = Path(root)
        manifest = read_manifest(root)
        segments: List[Segment] = []
        ok = False
        try:
            for name in manifest["segments"]:
                segments.append(Segment(root / name))
            ok = True
        finally:
            if not ok:
                for segment in segments:
                    segment.close()
        return cls(
            root,
            manifest,
            segments,
            memtable_limit=memtable_limit,
            compact_threshold=compact_threshold,
        )

    def attach(
        self, db: SegmentGraphDatabase, features: List["FeatureTree"]
    ) -> None:
        """Bind the live database/feature objects this store maintains.

        ``features`` must be the index's *own* list (not a copy) so
        features materialized by later inserts are flushed too.
        """
        self._db = db
        self._features = features

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def manifest(self) -> Dict[str, Any]:
        return self._manifest

    @property
    def segments(self) -> List[Segment]:
        return self._segments

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def delta_count(self) -> int:
        return max(0, len(self._segments) - 1)

    @property
    def memtable_limit(self) -> int:
        return self._memtable_limit

    @property
    def compact_threshold(self) -> int:
        return self._compact_threshold

    def columns_touched(self) -> int:
        """Total columns faulted across segments (cold-open observable)."""
        return sum(segment.columns_touched for segment in self._segments)

    def nbytes(self) -> int:
        return sum(segment.nbytes() for segment in self._segments)

    def describe(self) -> List[Dict[str, Any]]:
        """Per-segment stats for ``repro index segments`` (faults gid
        columns — a diagnostics call, not a serving path)."""
        rows: List[Dict[str, Any]] = []
        for layer, segment in enumerate(self._segments):
            total = segment.graph_count
            live = sum(
                1
                for gid in segment.graph_gids()
                if layer >= self.tombstones.get(gid, 0)
            )
            rows.append(
                {
                    "segment": segment.path.name,
                    "graphs": total,
                    "live": live,
                    "tombstoned": total - live,
                    "features": len(segment.feature_entries()),
                    "bytes": segment.nbytes(),
                }
            )
        return rows

    # ------------------------------------------------------------------
    # write-path hooks (index calls these; engine holds the write lock)
    # ------------------------------------------------------------------
    def adopt_feature(self, feature: "FeatureTree") -> None:
        """Back a freshly materialized feature with an (empty) LSM store."""
        feature.store = LsmStore(len(feature.center), self.tombstones)

    def note_insert(self) -> None:
        self._dirty_ops += 1

    def note_delete(self, graph_id: int) -> None:
        self._dirty_ops += 1

    def should_flush(self) -> bool:
        return self._dirty_ops >= self._memtable_limit

    def needs_compaction(self) -> bool:
        return self.delta_count >= self._compact_threshold

    def flush(self) -> bool:
        """Persist buffered state: write a delta segment, sync the manifest.

        The delta carries the overlay graphs plus every feature with a
        non-empty memtable — and every feature with *no* layer yet, even
        if its memtable is empty, so a feature materialized by an insert
        whose graph was deleted before the flush still survives reopen
        (the σ(1)=1 completeness floor must not silently lose keys).
        Pure-tombstone churn needs no new segment; the manifest rewrite
        alone persists it.  Returns True when a segment was written.
        """
        db = self._db
        if db is None:
            raise SerializationError("segment store is not attached yet")
        overlay = db.overlay_graphs()
        include = [
            feature
            for feature in self._features
            if isinstance(feature.store, LsmStore)
            and (feature.store.pending or not feature.store.has_layers)
        ]
        wrote = False
        if overlay or include:
            epoch = len(self._segments)
            name = f"seg-{self._manifest['next_segment']:06d}.seg"
            self._manifest["next_segment"] += 1
            payloads: List[FeaturePayload] = []
            for feature in include:
                mem = OccurrenceStore.from_mapping(
                    feature.store.arity, dict(feature.store.pending)
                )
                payloads.append(
                    (
                        feature.feature_id,
                        feature.key,
                        tuple(feature.center),
                        feature.tree,
                        mem.columns(),
                    )
                )
            write_segment(self.root / name, overlay, payloads)
            segment = Segment(self.root / name)
            self._segments.append(segment)
            self._manifest["segments"].append(name)
            by_key = {entry.key: entry for entry in segment.feature_entries()}
            for feature in include:
                feature.store.flush_to_layer(
                    epoch, by_key[feature.key].open_store()
                )
            db.note_flushed()
            wrote = True
        self._sync_manifest()
        self._dirty_ops = 0
        return wrote

    def prepare_compaction(self) -> Optional[CompactionPlan]:
        """Merge everything into a temp segment file (read-lock safe).

        A full checkpoint: live graphs (overlay included) and the fully
        merged occurrence columns of every feature (memtables included,
        tombstones folded out).  Touches no visible state — the caller
        commits under the write lock after its generation check, or
        discards the plan.  Returns None when there is nothing to fold.
        """
        db = self._db
        if db is None:
            raise SerializationError("segment store is not attached yet")
        if len(self._segments) <= 1 and not self.tombstones:
            return None
        live = db.graph_ids()
        graphs = [db[gid] for gid in live]
        payloads: List[FeaturePayload] = [
            (
                feature.feature_id,
                feature.key,
                tuple(feature.center),
                feature.tree,
                feature.store.columns(),
            )
            for feature in self._features
        ]
        tmp = self.root / "compact-pending.tmp"
        write_segment(tmp, graphs, payloads)
        return CompactionPlan(tmp_path=tmp, live_graphs=len(live))

    def commit_compaction(self, plan: CompactionPlan) -> None:
        """Swap the merged segment in (write lock held, no readers).

        ``os.replace`` publishes the file, the column swap republishes
        the stores, tombstones reset (their dead data is physically
        gone), and only then are the superseded segments closed and
        unlinked — no in-flight view can reference them because the
        engine cleared its plan/result caches before releasing the lock.
        """
        db = self._db
        if db is None:
            raise SerializationError("segment store is not attached yet")
        name = f"seg-{self._manifest['next_segment']:06d}.seg"
        self._manifest["next_segment"] += 1
        final = self.root / name
        os.replace(plan.tmp_path, final)
        segment = Segment(final)
        old_segments = list(self._segments)
        old_names = list(self._manifest["segments"])
        self._segments[:] = [segment]
        self._manifest["segments"] = [name]
        self.tombstones.clear()
        by_key = {entry.key: entry for entry in segment.feature_entries()}
        for feature in self._features:
            entry = by_key[feature.key]
            feature.store.reset_layers([(0, entry.open_store())])
        db.note_compacted()
        for old in old_segments:
            old.close()
        for old_name in old_names:
            try:
                (self.root / old_name).unlink()
            except OSError:
                pass
        self._sync_manifest()
        self._dirty_ops = 0

    def close(self) -> None:
        """Unmap every segment (the directory stays reopenable)."""
        for segment in self._segments:
            segment.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _sync_manifest(self) -> None:
        db = self._db
        assert db is not None
        self._manifest["graphs"] = len(db)
        self._manifest["next_graph_id"] = db.next_id
        self._manifest["tombstones"] = {
            str(gid): epoch for gid, epoch in sorted(self.tombstones.items())
        }
        write_manifest(self.root, self._manifest)
