"""Shared posting-list storage layer (see ``docs/STORAGE.md``).

One columnar substrate under the three index implementations:

* :class:`LabelInterner` — bidirectional label ↔ small-int dictionary,
  shared per database (persistence format v2, GraphGrep path keys),
* :class:`PostingList` — immutable sorted id column with adaptive
  gallop/hash two-way intersection and a smallest-first k-way
  :meth:`~PostingList.intersect_many`, the substrate of every
  support-set filter stage (TreePi Algorithm 1, gIndex, GraphGrep),
* :class:`OccurrenceStore` — columnar per-feature center-location table
  (Section 4.2.1's per-graph location information) with incremental
  ``add_graph``/``remove_graph`` for Section 7.1 maintenance.

The design follows the succinct-representation line of MSQ-Index
(arXiv:1612.09155) and CNI (arXiv:1703.05547): sorted integer columns
instead of hash sets, delta-encoded occurrence coordinates instead of
per-graph tuples-in-frozensets.
"""

from repro.storage.interner import LabelInterner
from repro.storage.occurrences import OccurrenceStore
from repro.storage.posting import PostingList

__all__ = ["LabelInterner", "OccurrenceStore", "PostingList"]
