"""Columnar per-feature center-location tables (Section 4.2.1).

An :class:`OccurrenceStore` replaces the dict-of-frozensets
``FeatureTree.locations`` with three parallel columns:

* ``gids``    — sorted graph ids (the support set; shared zero-copy with
  :class:`~repro.storage.posting.PostingList` snapshots),
* ``offsets`` — ``len(gids) + 1`` prefix offsets into the center column,
* ``centers`` — every center location flattened, per graph in sorted
  order, with the leading coordinate **delta-encoded** against the
  previous center of the same graph (sorted tuples make the deltas
  non-negative, so they pack into the same unsigned array).

``add_graph``/``remove_graph`` splice fresh columns rather than mutating
in place; any :meth:`graph_ids` posting list or decoded center set
handed out earlier therefore remains a consistent snapshot, which is
what lets :class:`~repro.core.engine.QueryEngine` maintenance run under
a writer lock while read-side plans keep using the views they already
hold.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.storage.posting import IdColumn, PostingList, id_array

Center = Tuple[int, ...]


def _concat(parts: Sequence[IdColumn]) -> array:
    """Concatenate id columns into one array, widening if any part needs it.

    ``array + array`` requires matching typecodes; a store whose flat
    column widened to ``'Q'`` (graph ids past 2^32) must keep splicing
    against fresh ``'I'`` blocks, so concatenation goes through
    ``extend`` at the widest itemsize among the parts.
    """
    widest = max(parts, key=lambda p: p.itemsize)
    out = array(widest.typecode)
    for part in parts:
        if isinstance(part, array) and part.typecode == out.typecode:
            out.extend(part)
        else:
            # array.extend refuses a mismatched-typecode array; feeding
            # it element-wise takes the generic path and re-widens.
            out.extend(iter(part))
    return out

#: Decoded-center memo size; cleared (not evicted piecewise) when full so
#: concurrent read-side lookups never race an eviction structure.
_DECODE_CACHE_LIMIT = 64


class OccurrenceStore:
    """Columnar map ``graph id -> sorted center locations`` of one feature."""

    __slots__ = ("_arity", "_gids", "_offsets", "_flat", "_decoded")

    _gids: IdColumn
    _offsets: IdColumn
    _flat: IdColumn

    def __init__(self, arity: int) -> None:
        if arity < 1:
            raise ValueError(f"center arity must be >= 1, got {arity}")
        self._arity = arity
        self._gids = id_array()
        self._offsets = id_array([0])
        self._flat = id_array()
        self._decoded: Dict[int, FrozenSet[Center]] = {}

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(
        cls, arity: int, locations: Mapping[int, Iterable[Center]]
    ) -> "OccurrenceStore":
        store = cls(arity)
        gids: List[int] = []
        offsets: List[int] = [0]
        flat: List[int] = []
        for gid in sorted(locations):
            centers = sorted(set(locations[gid]))
            if not centers:
                continue
            gids.append(gid)
            cls._encode_block(arity, centers, flat)
            offsets.append(len(flat))
        # id_array picks 'I' or 'Q' from the max value, so gids past
        # 2^32 widen the column instead of overflowing an append.
        store._gids = id_array(gids)
        store._offsets = id_array(offsets)
        store._flat = id_array(flat)
        return store

    @classmethod
    def from_columns(
        cls,
        arity: int,
        gids: Iterable[int],
        offsets: Iterable[int],
        centers: Iterable[int],
    ) -> "OccurrenceStore":
        """Adopt raw columns (the persistence v2 record), validated."""
        store = cls(arity)
        store._gids = id_array(gids)
        store._offsets = id_array(offsets)
        store._flat = id_array(centers)
        if len(store._offsets) != len(store._gids) + 1:
            raise ValueError(
                f"offset column length {len(store._offsets)} does not match "
                f"{len(store._gids)} graphs"
            )
        if len(store._offsets) and store._offsets[-1] != len(store._flat):
            raise ValueError("final offset does not cover the center column")
        for i in range(1, len(store._gids)):
            if store._gids[i - 1] >= store._gids[i]:
                raise ValueError("graph-id column must be strictly increasing")
        for i in range(1, len(store._offsets)):
            width = store._offsets[i] - store._offsets[i - 1]
            if width <= 0 or width % arity:
                raise ValueError(
                    f"center block {i - 1} has width {width}, "
                    f"not a positive multiple of arity {arity}"
                )
        return store

    @classmethod
    def from_buffer(
        cls,
        arity: int,
        gids: IdColumn,
        offsets: IdColumn,
        centers: IdColumn,
    ) -> "OccurrenceStore":
        """Adopt buffer-backed columns zero-copy (trusted segment data).

        Unlike :meth:`from_columns` this performs no validation: the
        columns come from a segment file this library wrote, and
        checking them would fault in every page of a lazily mapped
        file — the v3 cold-open contract is O(metadata), with pages
        touched only as reads demand them.  All read paths work
        identically over either backing; a mutation
        (:meth:`add_graph`/:meth:`remove_graph`) splices the touched
        region back into heap arrays.
        """
        store = cls(arity)
        store._gids = gids
        store._offsets = offsets
        store._flat = centers
        return store

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    @staticmethod
    def _encode_block(
        arity: int, centers: List[Center], out: List[int]
    ) -> None:
        prev = 0
        for center in centers:
            if len(center) != arity:
                raise ValueError(
                    f"center {center!r} has arity {len(center)}, "
                    f"store expects {arity}"
                )
            out.append(center[0] - prev)
            prev = center[0]
            out.extend(center[1:])

    def _decode_block(self, start: int, end: int) -> FrozenSet[Center]:
        arity, flat = self._arity, self._flat
        prev = 0
        centers: List[Center] = []
        j = start
        while j < end:
            first = prev + flat[j]
            prev = first
            centers.append((first,) + tuple(flat[j + 1 : j + arity]))
            j += arity
        return frozenset(centers)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        return self._arity

    def __len__(self) -> int:
        """Number of graphs with at least one occurrence (``|D_t|``)."""
        return len(self._gids)

    def __contains__(self, gid: object) -> bool:
        if not isinstance(gid, int) or gid < 0:
            return False
        i = bisect_left(self._gids, gid)
        return i < len(self._gids) and self._gids[i] == gid

    def graph_ids(self) -> PostingList:
        """The support set as a zero-copy posting-list snapshot."""
        return PostingList._wrap(self._gids)

    def centers_in(self, gid: int) -> FrozenSet[Center]:
        """Decoded center locations in one graph (empty if absent)."""
        cached = self._decoded.get(gid)
        if cached is not None:
            return cached
        i = bisect_left(self._gids, gid)
        if i == len(self._gids) or self._gids[i] != gid:
            return frozenset()
        centers = self._decode_block(self._offsets[i], self._offsets[i + 1])
        if len(self._decoded) >= _DECODE_CACHE_LIMIT:
            self._decoded = {}
        self._decoded[gid] = centers
        return centers

    def items(self) -> Iterator[Tuple[int, FrozenSet[Center]]]:
        """All ``(graph id, centers)`` pairs in ascending graph-id order."""
        for i, gid in enumerate(self._gids):
            yield gid, self._decode_block(self._offsets[i], self._offsets[i + 1])

    def to_mapping(self) -> Dict[int, FrozenSet[Center]]:
        """Materialize the classic dict-of-frozensets view (debug/compat)."""
        return dict(self.items())

    def total_centers(self) -> int:
        """Occurrence count across all graphs."""
        return len(self._flat) // self._arity

    def columns(self) -> Tuple[List[int], List[int], List[int]]:
        """Raw ``(gids, offsets, centers)`` columns for serialization."""
        return list(self._gids), list(self._offsets), list(self._flat)

    def nbytes(self) -> int:
        """Resident bytes of the three columns."""
        return sum(
            col.itemsize * len(col)
            for col in (self._gids, self._offsets, self._flat)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OccurrenceStore):
            return NotImplemented
        return (
            self._arity == other._arity
            and list(self._gids) == list(other._gids)
            and list(self._offsets) == list(other._offsets)
            and list(self._flat) == list(other._flat)
        )

    def __repr__(self) -> str:
        return (
            f"OccurrenceStore(arity={self._arity}, graphs={len(self._gids)}, "
            f"centers={self.total_centers()})"
        )

    # ------------------------------------------------------------------
    # incremental maintenance (Section 7.1 hooks)
    # ------------------------------------------------------------------
    def add_graph(self, gid: int, centers: Iterable[Center]) -> None:
        """Merge ``centers`` into ``gid``'s block (no-op when empty).

        Insert maintenance may rediscover occurrences already recorded;
        the new block is the union of old and new, so the call is
        idempotent like the frozenset-union it replaces.
        """
        if gid < 0:
            raise ValueError(f"graph ids are non-negative, got {gid}")
        fresh = set(centers)
        if not fresh:
            return
        i = bisect_left(self._gids, gid)
        existed = i < len(self._gids) and self._gids[i] == gid
        if existed:
            fresh |= self._decode_block(self._offsets[i], self._offsets[i + 1])
        block: List[int] = []
        self._encode_block(self._arity, sorted(fresh), block)
        self._splice(i, existed, gid, block)

    def remove_graph(self, gid: int) -> bool:
        """Drop ``gid``'s block entirely; ``True`` if it was present."""
        i = bisect_left(self._gids, gid)
        if i == len(self._gids) or self._gids[i] != gid:
            return False
        self._splice(i, True, gid, [])
        return True

    def _splice(
        self, i: int, existed: bool, gid: int, block: List[int]
    ) -> None:
        """Replace (or insert/delete) the block at position ``i``.

        Fresh column objects are assigned in one step each, preserving
        the snapshot property of previously handed-out views.
        """
        start = self._offsets[i]
        end = self._offsets[i + 1] if existed else start
        delta = len(block) - (end - start)
        new_flat = _concat([self._flat[:start], id_array(block), self._flat[end:]])
        offsets = list(self._offsets)
        new_gids: IdColumn
        if existed and block:          # replace block i in place
            new_gids = self._gids
            new_offsets = offsets[: i + 1] + [o + delta for o in offsets[i + 1 :]]
        elif existed:                  # drop graph i entirely
            new_gids = _concat([self._gids[:i], self._gids[i + 1 :]])
            new_offsets = offsets[: i + 1] + [o + delta for o in offsets[i + 2 :]]
        else:                          # insert a new graph at position i
            new_gids = _concat([self._gids[:i], id_array([gid]), self._gids[i:]])
            new_offsets = (
                offsets[: i + 1]
                + [start + len(block)]
                + [o + delta for o in offsets[i + 1 :]]
            )
        self._gids = new_gids
        self._offsets = id_array(new_offsets)
        self._flat = new_flat
        self._decoded = {}
