"""Immutable sorted-id posting lists with adaptive intersection.

A :class:`PostingList` is a support set ``D_t`` stored as a sorted
``array`` of unsigned graph ids — 4 bytes per id instead of a hash-set
entry and cache-friendly iteration.  Two-way intersection is *adaptive*:
a heavily skewed pair gallops — binary-searching each id of the short
list in the long one with an advancing lower bound (O(m log n), the
classic small-vs-large win) — while comparable-length inputs hash the
smaller side and re-sort the (small) result; measured on this
interpreter, that beats a pure-Python linear merge at every size (the
merge loop survives in :meth:`union`/:meth:`difference`, which must
stream every element anyway).

Instances are immutable snapshots: every operation returns a new list
and :class:`~repro.storage.occurrences.OccurrenceStore` mutations swap
whole columns, so a posting list handed to a reader stays internally
consistent even while maintenance rewrites the store it came from.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence, Set, Union

from repro.analysis.flow import hot_path

if TYPE_CHECKING:
    from repro.storage.segments import MmapColumn

#: The id-column backing: a heap ``array`` or a zero-copy mmap view.
#: Both expose ``itemsize``/``typecode``, integer and slice indexing
#: (slices yield real ``array`` objects), iteration and ``len``.
IdColumn = Union[array, "MmapColumn"]

#: Length ratio beyond which two-way intersection gallops instead of
#: hash-intersecting (measured crossover on CPython: gallop wins past
#: roughly 16:1 skew, hashing the smaller side wins below it).
GALLOP_RATIO = 16

_ID_TYPECODE = "I" if array("I").itemsize >= 4 else "L"
_WIDE_TYPECODE = "Q"
_ID_MAX = (1 << (array(_ID_TYPECODE).itemsize * 8)) - 1


def id_array(values: Iterable[int] = ()) -> array:
    """A compact unsigned array for ids, widening only when values demand it."""
    values = list(values)
    if values and (max(values) > _ID_MAX):
        return array(_WIDE_TYPECODE, values)
    return array(_ID_TYPECODE, values)


class PostingList:
    """An immutable, strictly increasing column of non-negative ids."""

    __slots__ = ("_ids",)

    _ids: IdColumn

    def __init__(self, ids: Iterable[int] = ()) -> None:
        unique = sorted(set(ids))
        if unique and unique[0] < 0:
            raise ValueError("posting lists hold non-negative ids only")
        self._ids = id_array(unique)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def _wrap(cls, ids: IdColumn) -> "PostingList":
        """Adopt an already sorted+deduplicated array without copying."""
        out = cls.__new__(cls)
        out._ids = ids
        return out

    @classmethod
    def from_buffer(cls, ids: IdColumn) -> "PostingList":
        """Adopt a buffer-backed id column zero-copy.

        The column (typically a :class:`~repro.storage.segments.
        MmapColumn` over a mapped segment file) is trusted to be sorted
        strictly increasing — segment writers only ever emit columns in
        that form, and validating here would fault in every page of a
        lazily mapped file, defeating the O(metadata) cold open.  All
        read paths (``intersect``/``intersect_many``, iteration, binary
        search) behave identically over either backing.
        """
        out = cls.__new__(cls)
        out._ids = ids
        return out

    @classmethod
    def from_sorted(cls, ids: Sequence[int]) -> "PostingList":
        """Build from a strictly increasing sequence (validated)."""
        for i in range(1, len(ids)):
            if ids[i - 1] >= ids[i]:
                raise ValueError(
                    f"ids must be strictly increasing, got "
                    f"{ids[i - 1]} before {ids[i]} at position {i}"
                )
        if len(ids) and ids[0] < 0:
            raise ValueError("posting lists hold non-negative ids only")
        return cls._wrap(id_array(ids))

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ids)

    def __bool__(self) -> bool:
        return len(self._ids) > 0

    def __iter__(self) -> Iterator[int]:
        return iter(self._ids)

    def __getitem__(self, index: int) -> int:
        return self._ids[index]

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, int) or value < 0:
            return False
        ids = self._ids
        i = bisect_left(ids, value)
        return i < len(ids) and ids[i] == value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PostingList):
            return len(self._ids) == len(other._ids) and all(
                a == b for a, b in zip(self._ids, other._ids)
            )
        if isinstance(other, (set, frozenset)):
            return len(self._ids) == len(other) and all(
                gid in other for gid in self._ids
            )
        return NotImplemented

    def __repr__(self) -> str:
        preview = ", ".join(map(str, self._ids[:8]))
        suffix = ", ..." if len(self._ids) > 8 else ""
        return f"PostingList([{preview}{suffix}] n={len(self._ids)})"

    def to_frozenset(self) -> frozenset:
        return frozenset(self._ids)

    def nbytes(self) -> int:
        """Resident bytes of the id column."""
        return self._ids.itemsize * len(self._ids)

    # ------------------------------------------------------------------
    # set algebra
    # ------------------------------------------------------------------
    @hot_path
    def intersect(self, other: "PostingList") -> "PostingList":
        """Two-way intersection, galloping when lengths are skewed."""
        small, large = (
            (self, other) if len(self) <= len(other) else (other, self)
        )
        if not small:
            return PostingList._wrap(id_array())
        if len(large) >= GALLOP_RATIO * len(small):
            return small._gallop_into(large)
        # Comparable lengths: hash the smaller column, intersect at C
        # speed, and re-sort the (at most |small|-sized) result.
        common = frozenset(small._ids).intersection(large._ids)
        return PostingList._wrap(id_array(sorted(common)))

    def _gallop_into(self, large: "PostingList") -> "PostingList":
        ids = large._ids
        out = id_array()
        lo, hi = 0, len(ids)
        for x in self._ids:
            lo = bisect_left(ids, x, lo, hi)
            if lo == hi:
                break
            if ids[lo] == x:
                out.append(x)
                lo += 1
        return PostingList._wrap(out)

    def union(self, other: "PostingList") -> "PostingList":
        a, b = self._ids, other._ids
        out = id_array()
        i = j = 0
        la, lb = len(a), len(b)
        while i < la and j < lb:
            x, y = a[i], b[j]
            if x == y:
                out.append(x)
                i += 1
                j += 1
            elif x < y:
                out.append(x)
                i += 1
            else:
                out.append(y)
                j += 1
        out.extend(a[i:])
        out.extend(b[j:])
        return PostingList._wrap(out)

    def difference(self, other: "PostingList") -> "PostingList":
        out = id_array()
        for x in self._ids:
            if x not in other:
                out.append(x)
        return PostingList._wrap(out)

    @staticmethod
    @hot_path
    def intersect_many(
        lists: Sequence["PostingList"], early_exit: bool = True
    ) -> "PostingList":
        """k-way intersection, smallest first.

        The inputs are ordered by ascending length so the running result
        can only shrink from the tightest starting point; each step then
        re-decides hash vs gallop from the *current* lengths (the
        adaptive part — as the intersection collapses, later steps
        degrade into cheap galloping probes).  Consecutive hash steps
        share one running ``set`` and the result is sorted back into a
        column only once at the end, so a k-way chain over
        comparable-length supports costs one sort, not k.  ``early_exit``
        stops at the first empty intermediate, the Algorithm 1
        short-circuit.
        """
        if not lists:
            raise ValueError("intersect_many needs at least one posting list")
        ordered = sorted(lists, key=len)
        column = ordered[0]
        running: Optional[Set[int]] = None
        for nxt in ordered[1:]:
            size = len(column) if running is None else len(running)
            if early_exit and size == 0:
                break
            if len(nxt) >= GALLOP_RATIO * size:
                if running is not None:
                    column = PostingList._wrap(id_array(sorted(running)))
                    running = None
                column = column._gallop_into(nxt)
            else:
                if running is None:
                    running = set(column._ids)
                running.intersection_update(nxt._ids)
        if running is not None:
            return PostingList._wrap(id_array(sorted(running)))
        return column


def union_many(lists: Sequence[PostingList]) -> PostingList:
    """k-way union (used by tests and ad-hoc maintenance tooling)."""
    result = PostingList()
    for nxt in lists:
        result = result.union(nxt)
    return result
