"""Bidirectional label ↔ small-int interning, shared per database.

Vertex labels, edge labels, and GraphGrep path keys repeat across every
graph of a database; interning them once turns each repeated occurrence
into a 4-byte column entry and gives the on-disk v2 format a single
label table instead of per-site type-tagged records.

Ids are assigned in first-``intern`` order, so an interner filled by
iterating a database in canonical order (sorted graph ids, vertex order,
edge order) is deterministic — the persistence layer relies on that for
byte-identical saves.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional


class LabelInterner:
    """A bidirectional dictionary between hashable labels and dense ids."""

    __slots__ = ("_to_id", "_labels")

    def __init__(self, labels: Iterable[Hashable] = ()) -> None:
        self._to_id: Dict[Any, int] = {}
        self._labels: List[Any] = []
        for label in labels:
            self.intern(label)

    def intern(self, label: Hashable) -> int:
        """Return the id of ``label``, assigning the next dense id if new."""
        existing = self._to_id.get(label)
        if existing is not None:
            return existing
        new_id = len(self._labels)
        self._to_id[label] = new_id
        self._labels.append(label)
        return new_id

    def get(self, label: Hashable) -> Optional[int]:
        """The id of ``label`` if already interned, else ``None``."""
        return self._to_id.get(label)

    def label_of(self, label_id: int) -> Any:
        """The label behind ``label_id`` (raises ``IndexError`` if unknown)."""
        if label_id < 0:
            raise IndexError(f"label ids are non-negative, got {label_id}")
        return self._labels[label_id]

    def labels(self) -> List[Any]:
        """All labels in id order (a copy; index == id)."""
        return list(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: object) -> bool:
        return label in self._to_id

    def __iter__(self) -> Iterator[Any]:
        return iter(self._labels)

    def __repr__(self) -> str:
        return f"LabelInterner(n={len(self._labels)})"
