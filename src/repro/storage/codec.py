"""Typed-label and interned-graph record codecs shared by v2 and v3.

The persistence layer (``repro.persistence``) and the segment storage
layer (``repro.storage.segments``) both serialize the same two record
shapes:

* **typed labels** — ``{"i":..}`` / ``{"f":..}`` / ``{"s":..}`` /
  ``{"t":[..]}`` / ``{"n":true}`` wrappers that round-trip integers,
  floats, strings, tuples and ``None`` losslessly (plain JSON would
  silently turn tuples into lists),
* **interned graph records** — ``{"v": [label_id..],
  "e": [[u, v, label_id]..]}`` columns referencing one shared
  :class:`~repro.storage.interner.LabelInterner` table.

They live here, below both layers, so the segment writer can encode
flush/compaction payloads without importing ``repro.persistence``
(which sits above ``repro.core`` and would form a cycle).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.exceptions import SerializationError
from repro.graphs.graph import LabeledGraph
from repro.storage.interner import LabelInterner


def encode_label(label: Any) -> Any:
    if isinstance(label, bool):
        raise SerializationError("boolean labels are not supported")
    if isinstance(label, int):
        return {"i": label}
    if isinstance(label, float):
        return {"f": label}
    if isinstance(label, str):
        return {"s": label}
    if isinstance(label, (tuple, list)):
        return {"t": [encode_label(item) for item in label]}
    if label is None:
        return {"n": True}
    raise SerializationError(f"unsupported label type {type(label).__name__}")


def decode_label(data: Any) -> Any:
    if not isinstance(data, dict) or len(data) != 1:
        raise SerializationError(f"malformed label record {data!r}")
    ((kind, value),) = data.items()
    if kind == "i":
        return int(value)
    if kind == "f":
        return float(value)
    if kind == "s":
        return str(value)
    if kind == "t":
        return tuple(decode_label(item) for item in value)
    if kind == "n":
        return None
    raise SerializationError(f"unknown label kind {kind!r}")


def graph_to_columns(graph: LabeledGraph, interner: LabelInterner) -> Dict[str, Any]:
    return {
        "v": [interner.intern(label) for label in graph.vertex_labels()],
        "e": [
            [u, v, interner.intern(label)] for u, v, label in graph.edges()
        ],
    }


def graph_from_columns(
    data: Dict[str, Any], labels: Sequence[Any], graph_id: Optional[int] = None
) -> LabeledGraph:
    try:
        graph = LabeledGraph(
            [labels[lid] for lid in data["v"]], graph_id=graph_id
        )
        for u, v, lid in data["e"]:
            graph.add_edge(u, v, labels[lid])
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise SerializationError(f"malformed v2 graph record: {exc}") from exc
    return graph
