"""Exception hierarchy for the TreePi reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except``.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Invalid graph construction or access (unknown vertex, duplicate edge...)."""


class NotATreeError(GraphError):
    """An operation that requires a tree was given a non-tree graph."""

    def __init__(self, reason: str = "graph is not a tree") -> None:
        super().__init__(reason)


class SerializationError(ReproError):
    """Malformed input while parsing the text graph-database format."""


class IndexError_(ReproError):
    """Index construction or maintenance failure (e.g. querying an empty index)."""


class ConfigError(ReproError):
    """Invalid parameter combination (e.g. a support function with eta < alpha)."""


class AdmissionError(ReproError):
    """The sharded serving tier refused a query before dispatch.

    Raised only under ``admission="reject"`` when the configured
    in-flight cap is already saturated (see
    :class:`repro.serving.ShardedEngine`); under ``admission="degrade"``
    the tier instead returns a sound, fully-unresolved degraded result.
    The query was never dispatched, so retrying is always safe.
    """

    def __init__(self, reason: str = "admission cap reached") -> None:
        super().__init__(reason)
        self.reason = reason


class BudgetExceeded(ReproError):
    """A query's :class:`repro.core.budget.QueryBudget` ran out mid-pipeline.

    Raised by cancellation-token checkpoints inside verification and the
    monomorphism enumerator so deep recursions unwind cleanly.  The query
    engine catches it and returns a *degraded but sound* result
    (``complete=False``) instead of propagating; user code only sees this
    exception when driving :func:`repro.core.verification.verify_candidate`
    or the matcher directly with a token.

    ``reason`` records which bound tripped (``"deadline"``,
    ``"verify-budget"``, or an explicit cancellation reason).
    """

    def __init__(self, reason: str = "budget exceeded") -> None:
        super().__init__(reason)
        self.reason = reason
