"""Exception hierarchy for the TreePi reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except``.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Invalid graph construction or access (unknown vertex, duplicate edge...)."""


class NotATreeError(GraphError):
    """An operation that requires a tree was given a non-tree graph."""

    def __init__(self, reason: str = "graph is not a tree") -> None:
        super().__init__(reason)


class SerializationError(ReproError):
    """Malformed input while parsing the text graph-database format."""


class IndexError_(ReproError):
    """Index construction or maintenance failure (e.g. querying an empty index)."""


class ConfigError(ReproError):
    """Invalid parameter combination (e.g. a support function with eta < alpha)."""
