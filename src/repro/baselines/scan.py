"""Sequential scan: the ground-truth (and lower-bound) query processor.

Runs the naive subgraph-isomorphism test against every database graph.
Benchmarks use it both as the "no index" comparison point and as the
oracle that integration tests compare every index against.
"""

from __future__ import annotations

import time
from typing import FrozenSet

from repro.core.statistics import QueryResult
from repro.graphs.graph import GraphDatabase, LabeledGraph
from repro.graphs.isomorphism import is_subgraph_isomorphic


class SequentialScan:
    """A trivially correct query processor with no preprocessing at all."""

    def __init__(self, database: GraphDatabase) -> None:
        self._db = database

    @property
    def database(self) -> GraphDatabase:
        return self._db

    def support_set(self, query: LabeledGraph) -> FrozenSet[int]:
        """``D_q`` computed by brute force."""
        return frozenset(
            g.graph_id for g in self._db if is_subgraph_isomorphic(query, g)
        )

    def query(self, query: LabeledGraph) -> QueryResult:
        start = time.perf_counter()
        matches = self.support_set(query)
        n = len(self._db)
        return QueryResult(
            matches=matches,
            candidates_after_filter=n,
            candidates_after_prune=n,
            phase_seconds={"verification": time.perf_counter() - start},
        )
