"""Baselines: gIndex (the paper's comparator), GraphGrep, sequential scan."""

from repro.baselines.gindex import GIndexBaseline, GIndexConfig, GIndexStats
from repro.baselines.graphgrep import (
    GraphGrepBaseline,
    GraphGrepConfig,
    path_fingerprint,
)
from repro.baselines.scan import SequentialScan

__all__ = [
    "GIndexBaseline",
    "GIndexConfig",
    "GIndexStats",
    "GraphGrepBaseline",
    "GraphGrepConfig",
    "path_fingerprint",
    "SequentialScan",
]
