"""gIndex baseline (Yan, Yu & Han, SIGMOD 2004) — the paper's comparator.

gIndex indexes *arbitrary* frequent subgraphs selected by a discriminative
ratio, filters candidates by support-set intersection, and verifies with a
naive (unanchored) subgraph-isomorphism test.  Its three structural
disadvantages versus TreePi — exponential canonical labels, subgraph
enumeration at query time, and no location information — are what Section
6 measures, so they are reproduced faithfully here:

* features are mined with the size-increasing support ψ(l) and selected by
  the discriminative ratio γ_min against already-selected subpatterns,
* query processing enumerates the connected frequent subgraphs of the
  query (apriori-pruned through the full frequent map), intersects the
  support sets of indexed ones, and
* verification runs the generic matcher from scratch on every candidate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Union

from repro.core.statistics import QueryResult
from repro.exceptions import IndexError_
from repro.graphs.canonical import canonical_label
from repro.graphs.graph import Edge, GraphDatabase, LabeledGraph, edge_key
from repro.graphs.isomorphism import is_subgraph_isomorphic
from repro.mining.subgraph_miner import FrequentSubgraphMiner, gindex_psi
from repro.storage import PostingList

SupportSets = Mapping[str, Union[PostingList, FrozenSet[int], Iterable[int]]]


def _as_postings(supports: SupportSets) -> Dict[str, PostingList]:
    """Normalize label→support mappings onto the shared posting substrate."""
    return {
        key: value if isinstance(value, PostingList) else PostingList(value)
        for key, value in supports.items()
    }


def _maximal_subpattern_keys(pattern: LabeledGraph) -> List[str]:
    """Canonical labels of the connected one-edge-removed subpatterns."""
    keys: Set[str] = set()
    all_edges = list(pattern.edges())
    for drop in range(len(all_edges)):
        keep = [
            edge_key(u, v)
            for idx, (u, v, _) in enumerate(all_edges)
            if idx != drop
        ]
        if not keep:
            continue
        sub, _ = pattern.subgraph_from_edges(keep)
        if sub.is_connected():
            keys.add(canonical_label(sub))
    return sorted(keys)


@dataclass(frozen=True)
class GIndexConfig:
    """Section 6.1's gIndex settings.

    * ``max_size`` — maxL, the largest indexed fragment (paper: 10),
    * ``min_discriminative_ratio`` — γ_min (paper: 2.0),
    * ``max_support_fraction`` — Θ (paper: 0.1 N),
    * ``psi`` — optional override of the size-increasing support function.
    """

    max_size: int = 10
    min_discriminative_ratio: float = 2.0
    max_support_fraction: float = 0.1
    psi: Optional[Callable[[int], float]] = None
    max_embeddings_per_graph: Optional[int] = None


@dataclass
class GIndexStats:
    num_features: int
    num_frequent: int
    features_by_size: Dict[int, int]
    build_seconds: float


class GIndexBaseline:
    """A built gIndex over one graph database."""

    def __init__(
        self,
        database: GraphDatabase,
        config: GIndexConfig,
        frequent: SupportSets,
        selected: SupportSets,
        stats: GIndexStats,
    ) -> None:
        self._db = database
        self._config = config
        # canonical label -> support posting list (all ψ-frequent / selected)
        self._frequent = _as_postings(frequent)
        self._selected = _as_postings(selected)
        self._stats = stats

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, database: GraphDatabase, config: GIndexConfig) -> "GIndexBaseline":
        if len(database) == 0:
            raise IndexError_("cannot build an index over an empty database")
        start = time.perf_counter()
        psi = config.psi or gindex_psi(
            config.max_size, config.max_support_fraction, len(database)
        )
        mined = FrequentSubgraphMiner(
            database,
            psi,
            max_size=config.max_size,
            max_embeddings_per_graph=config.max_embeddings_per_graph,
        ).mine()

        frequent: Dict[str, PostingList] = {
            key: PostingList(pattern.support_set())
            for key, pattern in mined.patterns.items()
        }

        # Discriminative selection, smallest patterns first: keep a pattern
        # when the intersection of its already-selected subpatterns' support
        # sets is at least γ_min times larger than its own support set.
        selected: Dict[str, PostingList] = {}
        by_size = sorted(mined.patterns.values(), key=lambda p: p.size)
        for pattern in by_size:
            if pattern.size == 1:
                selected[pattern.key] = frequent[pattern.key]
                continue
            intersection: Optional[PostingList] = None
            for sub_key in _maximal_subpattern_keys(pattern.graph):
                support = selected.get(sub_key)
                if support is None:
                    continue
                intersection = (
                    support
                    if intersection is None
                    else intersection.intersect(support)
                )
            if intersection is None:
                selected[pattern.key] = frequent[pattern.key]
                continue
            ratio = len(intersection) / max(1, pattern.support)
            if ratio >= config.min_discriminative_ratio:
                selected[pattern.key] = frequent[pattern.key]

        sizes: Dict[int, int] = {}
        for key in selected:
            size = mined.patterns[key].size
            sizes[size] = sizes.get(size, 0) + 1
        stats = GIndexStats(
            num_features=len(selected),
            num_frequent=len(frequent),
            features_by_size=sizes,
            build_seconds=time.perf_counter() - start,
        )
        return cls(database, config, frequent, selected, stats)

    # ------------------------------------------------------------------
    @property
    def stats(self) -> GIndexStats:
        return self._stats

    @property
    def database(self) -> GraphDatabase:
        return self._db

    def feature_count(self) -> int:
        return len(self._selected)

    # ------------------------------------------------------------------
    def query(self, query: LabeledGraph) -> QueryResult:
        """Enumerate query subgraphs, intersect supports, verify naively."""
        phases: Dict[str, float] = {}
        t0 = time.perf_counter()
        found = self._enumerate_indexed_subgraphs(query)
        phases["enumerate"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        empty_proof = False
        if found:
            # Smallest-first adaptive k-way intersection; the universe
            # initializer is only materialized when no feature applies.
            candidates = PostingList.intersect_many(
                [self._selected[key] for key in sorted(found)], early_exit=True
            )
        else:
            candidates = self._db.universe_posting()
        # A single query edge that is not even ψ-frequent at size 1 (σ=1
        # there) occurs nowhere: the answer is provably empty.
        for u, v, elabel in query.edges():
            probe = LabeledGraph(
                [query.vertex_label(u), query.vertex_label(v)], [(0, 1, elabel)]
            )
            if canonical_label(probe) not in self._frequent:
                empty_proof = True
                break
        if empty_proof:
            candidates = PostingList()
        phases["filter"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        matches = frozenset(
            gid
            for gid in candidates  # posting lists iterate in sorted order
            if is_subgraph_isomorphic(query, self._db[gid])
        )
        phases["verification"] = time.perf_counter() - t0
        return QueryResult(
            matches=matches,
            sfq_size=len(found),
            candidates_after_filter=len(candidates),
            candidates_after_prune=len(candidates),  # gIndex has no pruning stage
            phase_seconds=phases,
        )

    # ------------------------------------------------------------------
    def _enumerate_indexed_subgraphs(self, query: LabeledGraph) -> Set[str]:
        """Connected frequent subgraphs of the query, up to maxL edges.

        Grows connected edge subsets breadth-first; a subset whose canonical
        label is not ψ-frequent cannot be extended into a frequent one
        (support is anti-monotone), which keeps the enumeration tractable —
        exactly gIndex's apriori pruning.
        """
        found: Set[str] = set()
        seen_sets: Set[FrozenSet[Edge]] = set()
        frontier: List[FrozenSet[Edge]] = []
        for u, v, _ in query.edges():
            es = frozenset({edge_key(u, v)})
            seen_sets.add(es)
            frontier.append(es)

        label_cache: Dict[FrozenSet[Edge], str] = {}

        def label_of(es: FrozenSet[Edge]) -> str:
            label = label_cache.get(es)
            if label is None:
                sub, _ = query.subgraph_from_edges(es)
                label = canonical_label(sub)
                label_cache[es] = label
            return label

        size = 1
        while frontier and size <= self._config.max_size:
            next_frontier: List[FrozenSet[Edge]] = []
            for es in frontier:
                label = label_of(es)
                if label not in self._frequent:
                    continue
                if label in self._selected:
                    found.add(label)
                if size == self._config.max_size:
                    continue
                touched = {w for e in es for w in e}
                for u in touched:
                    for v in query.neighbors(u):
                        key = edge_key(u, v)
                        if key in es:
                            continue
                        extended = es | {key}
                        if extended not in seen_sets:
                            seen_sets.add(extended)
                            next_frontier.append(extended)
            frontier = next_frontier
            size += 1
        return found
