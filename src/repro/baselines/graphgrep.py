"""GraphGrep baseline (Shasha, Wang & Giugno, PODS 2002) — path-based index.

GraphGrep fingerprints every graph by the multiset of label-paths up to a
maximum length.  A candidate must contain at least as many occurrences of
every query path as the query itself; survivors are verified naively.
The paper's introduction uses GraphGrep as the representative of
path-based indexing whose paths "lose a large amount of structural
information" — Figure-10-style comparisons against it show why tree
features filter better.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.core.statistics import QueryResult
from repro.exceptions import IndexError_
from repro.graphs.graph import GraphDatabase, LabeledGraph
from repro.graphs.isomorphism import is_subgraph_isomorphic

# A path fingerprint: alternating vertex and edge labels, canonically
# oriented (the lexicographically smaller of the two read directions).
PathKey = Tuple


@dataclass(frozen=True)
class GraphGrepConfig:
    """``max_length`` is the maximum path length in edges (Daylight's lp)."""

    max_length: int = 4


def _path_key(labels: List) -> PathKey:
    forward = tuple(map(repr, labels))
    backward = tuple(reversed(forward))
    return min(forward, backward)


def path_fingerprint(graph: LabeledGraph, max_length: int) -> Dict[PathKey, int]:
    """Counts of all simple label-paths of 1..max_length edges in ``graph``.

    Each undirected path is counted once (both traversal directions
    collapse onto the canonical orientation).
    """
    counts: Dict[PathKey, int] = {}

    def walk(current: int, visited: Set[int], labels: List) -> None:
        depth = len(visited) - 1
        if depth >= 1:
            key = _path_key(labels)
            counts[key] = counts.get(key, 0) + 1
        if depth == max_length:
            return
        for nxt, elabel in graph.neighbor_items(current):
            if nxt in visited:
                continue
            visited.add(nxt)
            labels.append(elabel)
            labels.append(graph.vertex_label(nxt))
            walk(nxt, visited, labels)
            labels.pop()
            labels.pop()
            visited.discard(nxt)

    for start in graph.vertices():
        walk(start, {start}, [graph.vertex_label(start)])
    # Every path was discovered from both endpoints; halve the counts.
    return {key: count // 2 for key, count in counts.items()}


class GraphGrepBaseline:
    """A built GraphGrep index over one graph database."""

    def __init__(self, database: GraphDatabase, config: GraphGrepConfig) -> None:
        if len(database) == 0:
            raise IndexError_("cannot build an index over an empty database")
        self._db = database
        self._config = config
        start = time.perf_counter()
        self._fingerprints: Dict[int, Dict[PathKey, int]] = {
            g.graph_id: path_fingerprint(g, config.max_length) for g in database
        }
        self.build_seconds = time.perf_counter() - start

    @property
    def database(self) -> GraphDatabase:
        return self._db

    def index_size(self) -> int:
        """Total number of (graph, path) fingerprint entries."""
        return sum(len(fp) for fp in self._fingerprints.values())

    def query(self, query: LabeledGraph) -> QueryResult:
        phases: Dict[str, float] = {}
        t0 = time.perf_counter()
        needed = path_fingerprint(query, self._config.max_length)
        candidates = [
            gid
            for gid, fp in self._fingerprints.items()
            if all(fp.get(key, 0) >= count for key, count in needed.items())
        ]
        phases["filter"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        matches = frozenset(
            gid
            for gid in sorted(candidates)
            if is_subgraph_isomorphic(query, self._db[gid])
        )
        phases["verification"] = time.perf_counter() - t0
        return QueryResult(
            matches=matches,
            candidates_after_filter=len(candidates),
            candidates_after_prune=len(candidates),
            phase_seconds=phases,
        )
