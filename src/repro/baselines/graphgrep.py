"""GraphGrep baseline (Shasha, Wang & Giugno, PODS 2002) — path-based index.

GraphGrep fingerprints every graph by the multiset of label-paths up to a
maximum length.  A candidate must contain at least as many occurrences of
every query path as the query itself; survivors are verified naively.
The paper's introduction uses GraphGrep as the representative of
path-based indexing whose paths "lose a large amount of structural
information" — Figure-10-style comparisons against it show why tree
features filter better.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.statistics import QueryResult
from repro.exceptions import IndexError_
from repro.graphs.graph import GraphDatabase, LabeledGraph
from repro.graphs.isomorphism import is_subgraph_isomorphic
from repro.storage import LabelInterner, PostingList

# A path fingerprint: alternating vertex and edge labels, canonically
# oriented (the lexicographically smaller of the two read directions).
PathKey = Tuple


@dataclass(frozen=True)
class GraphGrepConfig:
    """``max_length`` is the maximum path length in edges (Daylight's lp)."""

    max_length: int = 4


def _path_key(labels: List) -> PathKey:
    forward = tuple(map(repr, labels))
    backward = tuple(reversed(forward))
    return min(forward, backward)


def path_fingerprint(graph: LabeledGraph, max_length: int) -> Dict[PathKey, int]:
    """Counts of all simple label-paths of 1..max_length edges in ``graph``.

    Each undirected path is counted once (both traversal directions
    collapse onto the canonical orientation).
    """
    counts: Dict[PathKey, int] = {}

    def walk(current: int, visited: Set[int], labels: List) -> None:
        depth = len(visited) - 1
        if depth >= 1:
            key = _path_key(labels)
            counts[key] = counts.get(key, 0) + 1
        if depth == max_length:
            return
        for nxt, elabel in graph.neighbor_items(current):
            if nxt in visited:
                continue
            visited.add(nxt)
            labels.append(elabel)
            labels.append(graph.vertex_label(nxt))
            walk(nxt, visited, labels)
            labels.pop()
            labels.pop()
            visited.discard(nxt)

    for start in graph.vertices():
        walk(start, {start}, [graph.vertex_label(start)])
    # Every path was discovered from both endpoints; halve the counts.
    return {key: count // 2 for key, count in counts.items()}


class GraphGrepBaseline:
    """A built GraphGrep index over one graph database.

    Storage is the shared posting substrate: path keys are interned once
    per database (:class:`~repro.storage.LabelInterner`), each graph's
    fingerprint maps interned key → occurrence count, and an inverted
    index keeps one sorted :class:`~repro.storage.PostingList` per path
    key.  Filtering intersects the postings of the query's paths
    smallest-first and only then applies the per-graph count threshold —
    candidate discovery no longer scans every fingerprint.
    """

    def __init__(self, database: GraphDatabase, config: GraphGrepConfig) -> None:
        if len(database) == 0:
            raise IndexError_("cannot build an index over an empty database")
        self._db = database
        self._config = config
        start = time.perf_counter()
        self._paths = LabelInterner()
        self._fingerprints: Dict[int, Dict[int, int]] = {}
        inverted: Dict[int, List[int]] = {}
        for gid in database.graph_ids():  # already ascending
            raw = path_fingerprint(database[gid], config.max_length)
            interned = {
                self._paths.intern(key): count
                for key, count in sorted(raw.items())
            }
            self._fingerprints[gid] = interned
            for key_id in interned:
                inverted.setdefault(key_id, []).append(gid)
        # Graph ids were visited in ascending order, so each inverted row
        # is already strictly increasing.
        self._postings: Dict[int, PostingList] = {
            key_id: PostingList.from_sorted(gids)
            for key_id, gids in sorted(inverted.items())
        }
        self.build_seconds = time.perf_counter() - start

    @property
    def database(self) -> GraphDatabase:
        return self._db

    def index_size(self) -> int:
        """Total number of (graph, path) fingerprint entries."""
        return sum(len(fp) for fp in self._fingerprints.values())

    def storage_bytes(self) -> int:
        """Resident bytes of the inverted posting columns."""
        return sum(p.nbytes() for _, p in sorted(self._postings.items()))

    def query(self, query: LabeledGraph) -> QueryResult:
        phases: Dict[str, float] = {}
        t0 = time.perf_counter()
        needed = path_fingerprint(query, self._config.max_length)
        candidates = self._filter(needed)
        phases["filter"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        matches = frozenset(
            gid
            for gid in candidates  # _filter returns ascending ids
            if is_subgraph_isomorphic(query, self._db[gid])
        )
        phases["verification"] = time.perf_counter() - t0
        return QueryResult(
            matches=matches,
            candidates_after_filter=len(candidates),
            candidates_after_prune=len(candidates),
            phase_seconds=phases,
        )

    def _filter(self, needed: Dict[PathKey, int]) -> Sequence[int]:
        """Graphs whose fingerprint dominates ``needed``, in id order.

        Posting intersection finds the graphs containing *every* query
        path at least once; the count threshold (a graph must contain at
        least as many occurrences as the query) is then checked against
        the survivors' interned fingerprints only.
        """
        if not needed:
            return self._db.universe_posting()
        requirements: List[Tuple[int, int]] = []
        for key in sorted(needed):
            key_id = self._paths.get(key)
            if key_id is None:
                return []  # this path occurs in no database graph
            requirements.append((key_id, needed[key]))
        shared = PostingList.intersect_many(
            [self._postings[key_id] for key_id, _ in requirements],
            early_exit=True,
        )
        return [
            gid
            for gid in shared
            if all(
                self._fingerprints[gid].get(key_id, 0) >= count
                for key_id, count in requirements
            )
        ]
