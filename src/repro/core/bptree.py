"""A B+-tree over strings — the paper's alternative feature index.

Section 4.2.2: "Since all feature trees are transformed to strings, other
traditional indexing techniques, such as B+ tree, can also be applied
here."  This module provides that alternative: a textbook in-memory
B+-tree with sorted leaf chaining, supporting point lookup, insertion,
deletion (with borrow/merge rebalancing), and ordered range scans —
the operation a character trie cannot do efficiently over arbitrary
lexicographic intervals.

:class:`BPlusTree` is interface-compatible with
:class:`repro.core.trie.StringTrie` (``insert`` / ``get`` / ``remove`` /
``__contains__`` / ``__len__`` / ``items_with_prefix`` / ``keys``), so
:class:`repro.core.treepi.TreePiIndex` can be built over either via
``TreePiConfig.feature_index``.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: List[str] = []
        self.children: List["_Node"] = []   # internal nodes only
        self.values: List[int] = []         # leaves only
        self.next_leaf: Optional["_Node"] = None  # leaves only


class BPlusTree:
    """An in-memory B+-tree mapping strings to integers.

    ``order`` is the maximum number of children of an internal node (and
    the maximum number of entries of a leaf); nodes split when they would
    exceed it and borrow/merge when they fall below ``ceil(order/2) - 1``
    entries after a deletion.
    """

    def __init__(self, order: int = 32) -> None:
        if order < 3:
            raise ValueError("B+-tree order must be >= 3")
        self._order = order
        self._root = _Node(is_leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def _find_leaf(self, key: str) -> _Node:
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def get(self, key: str) -> Optional[int]:
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return None

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def insert(self, key: str, value: int) -> None:
        """Insert or overwrite the entry for ``key``."""
        path: List[Tuple[_Node, int]] = []
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            path.append((node, idx))
            node = node.children[idx]

        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            node.values[idx] = value
            return
        node.keys.insert(idx, key)
        node.values.insert(idx, value)
        self._size += 1

        # Split upward while overfull.
        while len(node.keys) > self._order:
            mid = len(node.keys) // 2
            if node.is_leaf:
                right = _Node(is_leaf=True)
                right.keys = node.keys[mid:]
                right.values = node.values[mid:]
                node.keys = node.keys[:mid]
                node.values = node.values[:mid]
                right.next_leaf = node.next_leaf
                node.next_leaf = right
                separator = right.keys[0]
            else:
                right = _Node(is_leaf=False)
                separator = node.keys[mid]
                right.keys = node.keys[mid + 1:]
                right.children = node.children[mid + 1:]
                node.keys = node.keys[:mid]
                node.children = node.children[: mid + 1]

            if path:
                parent, child_idx = path.pop()
                parent.keys.insert(child_idx, separator)
                parent.children.insert(child_idx + 1, right)
                node = parent
            else:
                new_root = _Node(is_leaf=False)
                new_root.keys = [separator]
                new_root.children = [node, right]
                self._root = new_root
                return

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------
    def remove(self, key: str) -> bool:
        """Remove ``key``; True if it was present."""
        path: List[Tuple[_Node, int]] = []
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            path.append((node, idx))
            node = node.children[idx]

        idx = bisect.bisect_left(node.keys, key)
        if idx >= len(node.keys) or node.keys[idx] != key:
            return False
        node.keys.pop(idx)
        node.values.pop(idx)
        self._size -= 1

        min_entries = (self._order + 1) // 2 - 1
        while node is not self._root and len(node.keys) < max(1, min_entries):
            parent, child_idx = path.pop()
            left_sibling = parent.children[child_idx - 1] if child_idx > 0 else None
            right_sibling = (
                parent.children[child_idx + 1]
                if child_idx + 1 < len(parent.children)
                else None
            )

            if left_sibling is not None and len(left_sibling.keys) > min_entries:
                self._borrow_from_left(parent, child_idx, left_sibling, node)
                return True
            if right_sibling is not None and len(right_sibling.keys) > min_entries:
                self._borrow_from_right(parent, child_idx, node, right_sibling)
                return True

            # Merge with a sibling.
            if left_sibling is not None:
                self._merge(parent, child_idx - 1, left_sibling, node)
            else:
                self._merge(parent, child_idx, node, right_sibling)
            node = parent

        if not self._root.is_leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
        return True

    @staticmethod
    def _borrow_from_left(
        parent: _Node, child_idx: int, left: _Node, node: _Node
    ) -> None:
        if node.is_leaf:
            node.keys.insert(0, left.keys.pop())
            node.values.insert(0, left.values.pop())
            parent.keys[child_idx - 1] = node.keys[0]
        else:
            node.keys.insert(0, parent.keys[child_idx - 1])
            parent.keys[child_idx - 1] = left.keys.pop()
            node.children.insert(0, left.children.pop())

    @staticmethod
    def _borrow_from_right(
        parent: _Node, child_idx: int, node: _Node, right: _Node
    ) -> None:
        if node.is_leaf:
            node.keys.append(right.keys.pop(0))
            node.values.append(right.values.pop(0))
            parent.keys[child_idx] = right.keys[0]
        else:
            node.keys.append(parent.keys[child_idx])
            parent.keys[child_idx] = right.keys.pop(0)
            node.children.append(right.children.pop(0))

    @staticmethod
    def _merge(parent: _Node, left_idx: int, left: _Node, right: _Node) -> None:
        """Fold ``right`` into ``left`` and drop the separator at left_idx."""
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[left_idx])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_idx)
        parent.children.pop(left_idx + 1)

    # ------------------------------------------------------------------
    # ordered scans
    # ------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[str, int]]:
        """All entries in key order (leaf chain walk)."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        while node is not None:
            yield from zip(node.keys, node.values)
            node = node.next_leaf

    def keys(self) -> Iterator[str]:
        # Not a dict view: BPlusTree.items() is a sorted leaf-chain scan.
        for key, _ in self.items():  # noqa: REPRO101 - B+ leaf chain is already key-ordered
            yield key

    def range(self, low: str, high: str) -> Iterator[Tuple[str, int]]:
        """Entries with ``low <= key < high`` in key order."""
        leaf = self._find_leaf(low)
        idx = bisect.bisect_left(leaf.keys, low)
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if key >= high:
                    return
                yield key, leaf.values[idx]
                idx += 1
            leaf = leaf.next_leaf
            idx = 0

    def items_with_prefix(self, prefix: str) -> Iterator[Tuple[str, int]]:
        """All entries whose key starts with ``prefix`` (range scan)."""
        if not prefix:
            yield from self.items()
            return
        # The smallest string > every prefixed string: bump the last char.
        high = prefix[:-1] + chr(ord(prefix[-1]) + 1)
        yield from self.range(prefix, high)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def height(self) -> int:
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    def check_invariants(self) -> None:
        """Validate sortedness, fanout bounds, and leaf-chain coverage."""
        collected: List[str] = []

        def walk(node: _Node, lo: Optional[str], hi: Optional[str], depth: int) -> int:
            assert node.keys == sorted(node.keys), "unsorted node"
            for key in node.keys:
                assert lo is None or key >= lo, "key below separator"
                assert hi is None or key < hi, "key above separator"
            if node.is_leaf:
                assert len(node.keys) == len(node.values)
                collected.extend(node.keys)
                return depth
            assert len(node.children) == len(node.keys) + 1
            if node is not self._root:
                assert len(node.children) >= (self._order + 1) // 2
            depths = set()
            bounds = [lo, *node.keys, hi]
            for i, child in enumerate(node.children):
                depths.add(walk(child, bounds[i], bounds[i + 1], depth + 1))
            assert len(depths) == 1, "leaves at unequal depths"
            return depths.pop()

        walk(self._root, None, None, 0)
        assert collected == sorted(collected)
        assert collected == list(self.keys()), "leaf chain disagrees with tree"
        assert len(collected) == self._size
