"""A thread-safe, caching query engine over a built TreePi index.

:class:`TreePiIndex` is a single-shot pipeline: every ``query()`` call
re-runs partition, filtering, pruning and verification from scratch, and
nothing protects concurrent callers from in-flight ``insert``/``delete``
maintenance.  Production substructure search looks different — the same
hot queries arrive over and over, batches contain isomorphic duplicates,
and reads vastly outnumber writes.  :class:`QueryEngine` adds that
serving layer:

* **Result caching.**  Answers are memoized in an LRU cache keyed on the
  query's *canonical label*, so isomorphic queries share one entry.  Any
  maintenance operation (``insert``/``delete``/``rebuild``) invalidates
  the whole cache; a generation counter guarantees a result computed
  against the pre-mutation index can never be stored afterwards.
* **Concurrency.**  A readers-writer lock lets any number of queries run
  simultaneously while maintenance gets exclusive access.  Verification
  of independent candidates — the pipeline's dominant cost on non-trivial
  queries — fans out over a thread pool when ``verify_workers > 1``.
* **Batching.**  :meth:`query_batch` deduplicates isomorphic queries up
  front and verifies the candidates of *all* member queries on one pool.
* **Observability.**  Per-stage counters (:class:`EngineStats`) are kept
  under the engine lock and surfaced through the wrapped index's
  :class:`~repro.core.statistics.IndexStats` as ``stats.engine``.
* **Deadlines.**  :meth:`query`/:meth:`query_batch` accept a
  :class:`~repro.core.budget.QueryBudget`; on expiry the call returns
  *degraded but sound* results — verified matches found so far plus the
  unresolved candidate ids, flagged ``complete=False`` and never cached
  — instead of letting one adversarial verification hold the read lock
  unboundedly (which, with a writer-preferring RW lock, would freeze
  every other caller behind a waiting writer).

The engine never changes answers: every *complete* result is exactly what
the wrapped :meth:`TreePiIndex.query` would return (the differential
suite in ``tests/differential`` locks this down against the scan and
gIndex oracles), and a degraded result's ``matches``/``unresolved`` pair
brackets that exact answer.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.flow import hot_path
from repro.analysis.guards import TrackedLock, guarded_by, note_acquire, note_release
from repro.core.budget import CancellationToken, QueryBudget
from repro.core.statistics import EngineStats, QueryResult
from repro.core.treepi import QueryPlan, TreePiIndex
from repro.core.verification import VerificationStats
from repro.exceptions import BudgetExceeded, IndexError_
from repro.graphs.canonical import canonical_label
from repro.graphs.graph import LabeledGraph
from repro.trees.canonical import tree_canonical_string


def query_cache_key(query: LabeledGraph) -> str:
    """The cache key of a query: its canonical label, scheme-prefixed.

    Trees use the cheap tree canonicalization, general graphs the minimum
    DFS code; the prefix keeps the two namespaces from colliding.
    """
    if query.is_tree():
        return "t:" + tree_canonical_string(query)
    return "g:" + canonical_label(query)


class ReadWriteLock:
    """A writer-preferring readers-writer lock.

    Queries hold the read side for their full pipeline so maintenance can
    never observe (or cause) a half-executed query; waiting writers block
    new readers, so a stream of queries cannot starve maintenance.

    Acquisitions report to the :mod:`repro.analysis.guards` lock-order
    tracker (active only under ``REPRO_CONTRACTS=1``) *before* blocking,
    so an ordering cycle raises instead of deadlocking; the internal
    condition variable is deliberately untracked meta-state.

    Shared infrastructure: :class:`QueryEngine` guards each shardable
    index with one, and :class:`repro.serving.ShardedEngine` reuses the
    same class (same discipline, same tracker visibility) for its
    tier-level scatter/rebalance lock.
    """

    def __init__(self, name: str = "ReadWriteLock") -> None:
        self.name = name
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        note_acquire(self, self.name, "read")
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()
            note_release(self)

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        note_acquire(self, self.name, "write")
        with self._cond:
            self._writers_waiting += 1
            while self._writer_active or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()
            note_release(self)


#: Backwards-compatible private alias (the class predates the serving tier).
_ReadWriteLock = ReadWriteLock


@dataclass
class _PlanOutcome:
    """Per-plan verification attribution (one plan's own work, no sharing).

    ``elapsed`` is the sum of the plan's own task durations — on a pooled
    batch that is the plan's *attributed* verification cost, independent
    of how many other plans shared the pool (the pre-fix code charged
    every plan the batch-wide wall time and one shared counter record).
    """

    matches: FrozenSet[int] = frozenset()
    vstats: VerificationStats = field(default_factory=VerificationStats)
    elapsed: float = 0.0
    matched: Set[int] = field(default_factory=set)
    unresolved: List[int] = field(default_factory=list)


class _LRUCache:
    """A size-bounded mapping with least-recently-used eviction.

    Not internally synchronized — the engine guards every access with its
    own mutex.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._data: "OrderedDict[str, QueryResult]" = OrderedDict()

    def get(self, key: str) -> Optional[QueryResult]:
        result = self._data.get(key)
        if result is not None:
            self._data.move_to_end(key)
        return result

    def put(self, key: str, value: QueryResult) -> None:
        if self.capacity <= 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


class QueryEngine:
    """Concurrent, cached query serving over one :class:`TreePiIndex`.

    Parameters
    ----------
    index:
        The built index to serve.  The engine takes over maintenance —
        route ``insert``/``delete``/``rebuild`` through the engine, not
        the raw index, or cached results may go stale.
    cache_size:
        Maximum number of distinct (up to isomorphism) query results kept;
        ``0`` disables caching.
    verify_workers:
        Thread-pool width for candidate verification.  ``1`` verifies
        inline; answers are identical either way.
    """

    def __init__(
        self,
        index: TreePiIndex,
        cache_size: int = 128,
        verify_workers: int = 1,
    ) -> None:
        if cache_size < 0:
            raise IndexError_(f"cache_size must be >= 0, got {cache_size}")
        if verify_workers < 1:
            raise IndexError_(
                f"verify_workers must be >= 1, got {verify_workers}"
            )
        self._index = index
        self._verify_workers = verify_workers
        # Lock order is _rw -> _mutex (never the reverse); the guards
        # tracker verifies that discipline under REPRO_CONTRACTS=1.
        self._rw = ReadWriteLock("QueryEngine._rw")
        self._mutex = TrackedLock("QueryEngine._mutex")
        self._cache = _LRUCache(cache_size)
        self._generation = 0
        self._counters = EngineStats()
        index.stats.engine = self._counters
        index.attach_serving_lock(self._rw)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def index(self) -> TreePiIndex:
        """The currently served index (``rebuild`` swaps it atomically).

        The reference is read under the read lock; holding the *returned*
        index across maintenance is the caller's explicit decision.
        """
        with self._rw.read_locked():
            index = self._index
        return index

    @property
    def cache_size(self) -> int:
        with self._mutex:
            return self._cache.capacity

    @property
    def cached_results(self) -> int:
        """Number of answers currently cached."""
        with self._mutex:
            return len(self._cache)

    @property
    def stats(self) -> EngineStats:
        """A consistent snapshot of the per-stage counters."""
        with self._mutex:
            return self._counters.snapshot()

    def graph_ids(self) -> List[int]:
        """Sorted ids of the graphs currently served (read-locked snapshot).

        A shard-embeddable hook: the sharded tier brackets a failed
        shard's contribution with exactly this universe, so it must be a
        consistent snapshot, not a live view.
        """
        with self._rw.read_locked():
            return self._index.database.graph_ids()

    def storage_bytes(self) -> int:
        """Resident bytes of the served index's columnar storage.

        Taken under the read lock so a concurrent rebuild/maintenance
        splice cannot be observed half-way; the columns themselves are
        immutable snapshots (see :mod:`repro.storage.occurrences`), so
        the sum is consistent.
        """
        with self._rw.read_locked():
            return self._index.storage_bytes()

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(
        self, query: LabeledGraph, budget: Optional[QueryBudget] = None
    ) -> QueryResult:
        """Answer one query, serving from cache when possible.

        ``budget`` bounds the call (deadline and/or work caps); on expiry
        a degraded-but-sound result comes back (``complete=False``, never
        cached — see :mod:`repro.core.budget`).  A cached *complete*
        result may serve a budgeted call: it is exact, which is strictly
        better than the degradation contract requires.
        """
        key = query_cache_key(query)
        cached, generation = self._cache_lookup(key)
        if cached is not None:
            return cached
        token = budget.start() if budget is not None else None
        with self._rw.read_locked():
            result = self._execute(query, token=token, budget=budget)
        self._count_degradation([result], token)
        self._cache_store(key, result, generation)
        return result

    def query_batch(
        self,
        queries: Sequence[LabeledGraph],
        budget: Optional[QueryBudget] = None,
    ) -> List[QueryResult]:
        """Answer many queries at once.

        Isomorphic duplicates are detected by canonical label and computed
        once; the verification work of every distinct uncached query is
        flattened into independent (query, candidate) tasks and run on a
        single thread pool.

        ``budget`` bounds the *call*: the whole batch shares one deadline
        clock and one work cap.  Members the budget could not finish come
        back individually flagged ``complete=False`` with their own
        unresolved candidate lists — retry just those stragglers with a
        fresh budget (they were never cached, so a retry recomputes).
        """
        keys = [query_cache_key(q) for q in queries]
        resolved: Dict[str, QueryResult] = {}
        pending: List[Tuple[str, LabeledGraph]] = []
        generation = 0
        with self._mutex:
            self._counters.batch_queries += len(queries)
            self._counters.queries += len(queries)
            generation = self._generation
            seen_in_batch = set()
            for key, query in zip(keys, queries):
                if key in seen_in_batch:
                    self._counters.batch_dedup_hits += 1
                    continue
                seen_in_batch.add(key)
                cached = self._cache.get(key)
                if cached is not None:
                    self._counters.cache_hits += 1
                    resolved[key] = cached
                else:
                    self._counters.cache_misses += 1
                    pending.append((key, query))
        if pending:
            token = budget.start() if budget is not None else None
            with self._rw.read_locked():
                computed = self._execute_batch(
                    [q for _, q in pending], token=token, budget=budget
                )
            self._count_degradation(computed, token)
            for (key, _), result in zip(pending, computed):
                resolved[key] = result
                self._cache_store(key, result, generation)
        return [resolved[key] for key in keys]

    # ------------------------------------------------------------------
    # maintenance (write-locked; every mutation invalidates the cache)
    # ------------------------------------------------------------------
    def insert(
        self, graph: LabeledGraph, graph_id: Optional[int] = None
    ) -> int:
        """Add a graph through the index's maintenance path.

        ``graph_id`` may pin a specific unused id — the shard-embeddable
        hook :class:`repro.serving.ShardedEngine` uses to keep one global
        id space across per-shard databases (so per-shard answer sets
        union without translation).
        """
        with self._rw.write_locked():
            gid = self._index.insert(graph, graph_id=graph_id)
            self._invalidate("inserts")
            self._note_maintenance()
        return gid

    def delete(self, graph_id: int) -> None:
        """Remove a graph and purge it from every feature."""
        with self._rw.write_locked():
            self._index.delete(graph_id)
            self._invalidate("deletes")
            self._note_maintenance()

    def _note_maintenance(self) -> None:
        """Post-mutation hook (write lock held): flush full memtables.

        A no-op on in-memory indexes.  On a segment-backed index the
        buffered insert/delete ops spill to an immutable delta segment
        once the memtable threshold trips; readers switch to the mapped
        layer without any answer change, so no extra invalidation is
        needed beyond the one the mutation already did.
        """
        if self._index.maybe_flush_segments():
            with self._mutex:
                self._counters.flushes += 1

    def rebuild(self) -> None:
        """Reconstruct the index from the current database state in place.

        The expensive build (mining + feature materialization, possibly a
        process pool) runs under the *read* lock, concurrently with
        queries — holding the writer lock across it would stall every
        reader for the whole build (REPRO202).  The writer lock is taken
        only for the swap; if maintenance raced the build (generation
        moved), the stale build is discarded and retried against the new
        database state.
        """
        while True:
            with self._mutex:
                observed = self._generation
            with self._rw.read_locked():
                rebuilt = self._index.rebuild()
            with self._rw.write_locked():
                with self._mutex:
                    raced = self._generation != observed
                if raced:
                    continue
                with self._mutex:
                    rebuilt.stats.engine = self._counters
                rebuilt.attach_serving_lock(self._rw)
                self._index = rebuilt
                self._invalidate("rebuilds")
                return

    def needs_rebuild(self) -> bool:
        with self._rw.read_locked():
            return self._index.needs_rebuild()

    def flush(self) -> bool:
        """Force-flush buffered segment maintenance (no-op when in-memory)."""
        with self._rw.write_locked():
            flushed = self._index.flush_segments()
        if flushed:
            with self._mutex:
                self._counters.flushes += 1
        return flushed

    def needs_compaction(self) -> bool:
        """True when the served index accumulated enough delta segments."""
        with self._rw.read_locked():
            return self._index.needs_compaction()

    def compact(self) -> bool:
        """Fold base + deltas − tombstones into one fresh base segment.

        Mirrors :meth:`rebuild`'s optimistic pattern: the expensive merge
        (:meth:`TreePiIndex.prepare_compaction`, a full checkpoint of the
        live view) runs under the *read* lock, concurrently with queries.
        The writer lock is taken only to publish; if maintenance raced
        the merge (generation moved), the staged segment is discarded and
        the merge retried against the new state.  Returns ``False`` when
        the index is not segment-backed or there was nothing to fold.
        """
        while True:
            with self._mutex:
                observed = self._generation
            with self._rw.read_locked():
                plan = self._index.prepare_compaction()
            if plan is None:
                return False
            with self._rw.write_locked():
                with self._mutex:
                    raced = self._generation != observed
                if raced:
                    plan.discard()
                    continue
                self._index.commit_compaction(plan)
                self._invalidate("compactions")
                return True

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _cache_lookup(
        self, key: str
    ) -> Tuple[Optional[QueryResult], int]:
        """Count the query and return ``(cached result, generation)``."""
        with self._mutex:
            self._counters.queries += 1
            cached = self._cache.get(key)
            if cached is not None:
                self._counters.cache_hits += 1
            else:
                self._counters.cache_misses += 1
            return cached, self._generation

    def _cache_store(
        self, key: str, result: QueryResult, generation: int
    ) -> None:
        """Memoize ``result`` unless the index changed since it started.

        Degraded results (``complete=False``) are *never* stored: their
        answer depends on the budget that produced them, and caching one
        would let a timeout masquerade as the exact answer for every
        later (possibly unbudgeted) isomorphic query.
        """
        if not result.complete:
            return
        with self._mutex:
            if self._generation == generation:
                self._cache.put(key, result)

    def _invalidate(self, counter: str) -> None:
        """Bump the generation and drop every cached answer.

        Called while holding the write lock, so no query pipeline is in
        flight; results still waiting to be stored observe the generation
        bump and discard themselves.
        """
        with self._mutex:
            self._generation += 1
            self._cache.clear()
            self._counters.invalidations += 1
            setattr(
                self._counters, counter, getattr(self._counters, counter) + 1
            )

    def _count_pipeline(self, plan: QueryPlan) -> None:
        with self._mutex:
            self._counters.candidates_filtered += plan.candidates_after_filter
            self._counters.candidates_pruned += plan.candidates_after_filter - len(
                plan.survivors
            )
            self._counters.verifications_run += len(plan.survivors)
            self._counters.prune_exhausted += plan.prune_exhausted

    def _count_degradation(
        self,
        results: Sequence[QueryResult],
        token: Optional[CancellationToken],
    ) -> None:
        """Fold one budgeted call's work ledger and degradation into the counters.

        ``verify_steps`` accumulates the token's exact work total whether
        or not the call degraded — the engine-level twin of
        :attr:`~repro.core.budget.CancellationToken.work_charged`.
        """
        if token is None:
            return
        expired = token.expired
        degraded = [r for r in results if not r.complete]
        steps = token.work_charged
        if not expired and not degraded and not steps:
            return
        with self._mutex:
            self._counters.verify_steps += steps
            if expired:
                self._counters.timeouts += 1
            self._counters.degraded_results += len(degraded)
            self._counters.unresolved_candidates += sum(
                len(r.unresolved) for r in degraded
            )

    @hot_path
    @guarded_by("_rw", mode="read")
    def _execute(
        self,
        query: LabeledGraph,
        token: Optional[CancellationToken] = None,
        budget: Optional[QueryBudget] = None,
    ) -> QueryResult:
        """Run one full pipeline (caller holds the read lock)."""
        plan = self._index.plan(query, token=token, budget=budget)
        if plan.result is not None:
            return plan.result
        self._count_pipeline(plan)
        outcome = self._verify_plans([plan], token)[0]
        return self._finish_plan(plan, outcome, token)

    @hot_path
    @guarded_by("_rw", mode="read")
    def _execute_batch(
        self,
        queries: Sequence[LabeledGraph],
        token: Optional[CancellationToken] = None,
        budget: Optional[QueryBudget] = None,
    ) -> List[QueryResult]:
        """Run pipelines for distinct queries, pooling their verification.

        Verification counters and elapsed time are attributed *per plan*
        (each plan's own ``VerificationStats`` and the summed durations of
        its own tasks), so every member's :class:`QueryResult` reports
        exactly what :meth:`query` would have reported for it alone —
        pooling changes wall-clock, never attribution.
        """
        plans = [
            self._index.plan(query, token=token, budget=budget)
            for query in queries
        ]
        open_plans = [plan for plan in plans if plan.result is None]
        for plan in open_plans:
            self._count_pipeline(plan)
        outcomes = self._verify_plans(open_plans, token)
        results: List[QueryResult] = []
        open_index = 0
        for plan in plans:
            if plan.result is not None:
                results.append(plan.result)
            else:
                results.append(
                    self._finish_plan(plan, outcomes[open_index], token)
                )
                open_index += 1
        return results

    def _finish_plan(
        self,
        plan: QueryPlan,
        outcome: "_PlanOutcome",
        token: Optional[CancellationToken],
    ) -> QueryResult:
        return self._index.finish(
            plan,
            outcome.matches,
            outcome.vstats,
            outcome.elapsed,
            unresolved=outcome.unresolved,
            degraded_reason=token.reason if token is not None else None,
        )

    @hot_path
    @guarded_by("_rw", mode="read")
    def _verify_plans(
        self, plans: List[QueryPlan], token: Optional[CancellationToken] = None
    ) -> List["_PlanOutcome"]:
        """Verify the survivors of every plan, fanning out when configured.

        Tasks are independent ``(plan, candidate)`` pairs; each worker
        keeps private verification counters and times its own task, and
        both are merged back *into the owning plan's outcome*, so each
        plan's totals match a serial run of that plan exactly regardless
        of batching or pool width.  A task cut short by the budget
        (:class:`~repro.exceptions.BudgetExceeded`) marks its candidate
        unresolved; once the shared token expires, the remaining queued
        tasks short-circuit at their first checkpoint.
        """
        tasks: List[Tuple[int, int]] = [
            (plan_idx, gid)
            for plan_idx, plan in enumerate(plans)
            for gid in plan.survivors
        ]

        def run_one(
            task: Tuple[int, int]
        ) -> Tuple[int, int, Optional[bool], VerificationStats, float]:
            plan_idx, gid = task
            local = VerificationStats()
            t0 = time.perf_counter()
            ok: Optional[bool]
            try:
                ok = self._index.verify(
                    plans[plan_idx], gid, local, token=token
                )
            except BudgetExceeded:
                ok = None  # unresolved: neither matched nor rejected
            return plan_idx, gid, ok, local, time.perf_counter() - t0

        if self._verify_workers > 1 and len(tasks) > 1:
            with ThreadPoolExecutor(max_workers=self._verify_workers) as pool:
                raw = list(pool.map(run_one, tasks))
        else:
            raw = [run_one(task) for task in tasks]

        outcomes = [_PlanOutcome() for _ in plans]
        for plan_idx, gid, ok, local, seconds in raw:
            outcome = outcomes[plan_idx]
            outcome.vstats.merge(local)
            outcome.elapsed += seconds
            if ok is None:
                outcome.unresolved.append(gid)
            elif ok:
                outcome.matched.add(gid)
        for outcome in outcomes:
            outcome.matches = frozenset(outcome.matched)
        return outcomes


class BackgroundCompactor:
    """A daemon thread that folds delta segments as they accumulate.

    Polls :meth:`QueryEngine.needs_compaction` every ``interval`` seconds
    and runs :meth:`QueryEngine.compact` when it trips.  All locking
    lives in the engine (read-locked merge, write-locked publish with a
    generation check), so the thread body is a plain poll loop; stopping
    waits for any in-flight compaction to finish publishing.

    Usable as a context manager::

        with BackgroundCompactor(engine, interval=0.05):
            ... serve traffic ...
    """

    def __init__(self, engine: QueryEngine, interval: float = 1.0) -> None:
        if interval <= 0:
            raise IndexError_(f"interval must be > 0, got {interval}")
        self._engine = engine
        self._interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            raise IndexError_("compactor already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="treepi-compactor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Signal the loop and join (waits out an in-flight compaction)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join()
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            if self._engine.needs_compaction():
                self._engine.compact()

    def __enter__(self) -> "BackgroundCompactor":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
