"""A thread-safe, caching query engine over a built TreePi index.

:class:`TreePiIndex` is a single-shot pipeline: every ``query()`` call
re-runs partition, filtering, pruning and verification from scratch, and
nothing protects concurrent callers from in-flight ``insert``/``delete``
maintenance.  Production substructure search looks different — the same
hot queries arrive over and over, batches contain isomorphic duplicates,
and reads vastly outnumber writes.  :class:`QueryEngine` adds that
serving layer:

* **Result caching.**  Answers are memoized in an LRU cache keyed on the
  query's *canonical label*, so isomorphic queries share one entry.  Any
  maintenance operation (``insert``/``delete``/``rebuild``) invalidates
  the whole cache; a generation counter guarantees a result computed
  against the pre-mutation index can never be stored afterwards.
* **Concurrency.**  A readers-writer lock lets any number of queries run
  simultaneously while maintenance gets exclusive access.  Verification
  of independent candidates — the pipeline's dominant cost on non-trivial
  queries — fans out over a thread pool when ``verify_workers > 1``.
* **Batching.**  :meth:`query_batch` deduplicates isomorphic queries up
  front and verifies the candidates of *all* member queries on one pool.
* **Observability.**  Per-stage counters (:class:`EngineStats`) are kept
  under the engine lock and surfaced through the wrapped index's
  :class:`~repro.core.statistics.IndexStats` as ``stats.engine``.

The engine never changes answers: every result is exactly what the
wrapped :meth:`TreePiIndex.query` would return (the differential suite in
``tests/differential`` locks this down against the scan and gIndex
oracles).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.guards import TrackedLock, guarded_by, note_acquire, note_release
from repro.core.statistics import EngineStats, QueryResult
from repro.core.treepi import QueryPlan, TreePiIndex
from repro.core.verification import VerificationStats
from repro.exceptions import IndexError_
from repro.graphs.canonical import canonical_label
from repro.graphs.graph import LabeledGraph
from repro.trees.canonical import tree_canonical_string


def query_cache_key(query: LabeledGraph) -> str:
    """The cache key of a query: its canonical label, scheme-prefixed.

    Trees use the cheap tree canonicalization, general graphs the minimum
    DFS code; the prefix keeps the two namespaces from colliding.
    """
    if query.is_tree():
        return "t:" + tree_canonical_string(query)
    return "g:" + canonical_label(query)


class _ReadWriteLock:
    """A writer-preferring readers-writer lock.

    Queries hold the read side for their full pipeline so maintenance can
    never observe (or cause) a half-executed query; waiting writers block
    new readers, so a stream of queries cannot starve maintenance.

    Acquisitions report to the :mod:`repro.analysis.guards` lock-order
    tracker (active only under ``REPRO_CONTRACTS=1``) *before* blocking,
    so an ordering cycle raises instead of deadlocking; the internal
    condition variable is deliberately untracked meta-state.
    """

    def __init__(self, name: str = "_ReadWriteLock") -> None:
        self.name = name
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        note_acquire(self, self.name, "read")
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()
            note_release(self)

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        note_acquire(self, self.name, "write")
        with self._cond:
            self._writers_waiting += 1
            while self._writer_active or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._cond:
                self._writer_active = False
                self._cond.notify_all()
            note_release(self)


class _LRUCache:
    """A size-bounded mapping with least-recently-used eviction.

    Not internally synchronized — the engine guards every access with its
    own mutex.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._data: "OrderedDict[str, QueryResult]" = OrderedDict()

    def get(self, key: str) -> Optional[QueryResult]:
        result = self._data.get(key)
        if result is not None:
            self._data.move_to_end(key)
        return result

    def put(self, key: str, value: QueryResult) -> None:
        if self.capacity <= 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


class QueryEngine:
    """Concurrent, cached query serving over one :class:`TreePiIndex`.

    Parameters
    ----------
    index:
        The built index to serve.  The engine takes over maintenance —
        route ``insert``/``delete``/``rebuild`` through the engine, not
        the raw index, or cached results may go stale.
    cache_size:
        Maximum number of distinct (up to isomorphism) query results kept;
        ``0`` disables caching.
    verify_workers:
        Thread-pool width for candidate verification.  ``1`` verifies
        inline; answers are identical either way.
    """

    def __init__(
        self,
        index: TreePiIndex,
        cache_size: int = 128,
        verify_workers: int = 1,
    ) -> None:
        if cache_size < 0:
            raise IndexError_(f"cache_size must be >= 0, got {cache_size}")
        if verify_workers < 1:
            raise IndexError_(
                f"verify_workers must be >= 1, got {verify_workers}"
            )
        self._index = index
        self._verify_workers = verify_workers
        # Lock order is _rw -> _mutex (never the reverse); the guards
        # tracker verifies that discipline under REPRO_CONTRACTS=1.
        self._rw = _ReadWriteLock("QueryEngine._rw")
        self._mutex = TrackedLock("QueryEngine._mutex")
        self._cache = _LRUCache(cache_size)
        self._generation = 0
        self._counters = EngineStats()
        index.stats.engine = self._counters
        index.attach_serving_lock(self._rw)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def index(self) -> TreePiIndex:
        """The currently served index (``rebuild`` swaps it atomically).

        The reference is read under the read lock; holding the *returned*
        index across maintenance is the caller's explicit decision.
        """
        with self._rw.read_locked():
            index = self._index
        return index

    @property
    def cache_size(self) -> int:
        with self._mutex:
            return self._cache.capacity

    @property
    def cached_results(self) -> int:
        """Number of answers currently cached."""
        with self._mutex:
            return len(self._cache)

    @property
    def stats(self) -> EngineStats:
        """A consistent snapshot of the per-stage counters."""
        with self._mutex:
            return self._counters.snapshot()

    def storage_bytes(self) -> int:
        """Resident bytes of the served index's columnar storage.

        Taken under the read lock so a concurrent rebuild/maintenance
        splice cannot be observed half-way; the columns themselves are
        immutable snapshots (see :mod:`repro.storage.occurrences`), so
        the sum is consistent.
        """
        with self._rw.read_locked():
            return self._index.storage_bytes()

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(self, query: LabeledGraph) -> QueryResult:
        """Answer one query, serving from cache when possible."""
        key = query_cache_key(query)
        cached, generation = self._cache_lookup(key)
        if cached is not None:
            return cached
        with self._rw.read_locked():
            result = self._execute(query)
        self._cache_store(key, result, generation)
        return result

    def query_batch(self, queries: Sequence[LabeledGraph]) -> List[QueryResult]:
        """Answer many queries at once.

        Isomorphic duplicates are detected by canonical label and computed
        once; the verification work of every distinct uncached query is
        flattened into independent (query, candidate) tasks and run on a
        single thread pool.
        """
        keys = [query_cache_key(q) for q in queries]
        resolved: Dict[str, QueryResult] = {}
        pending: List[Tuple[str, LabeledGraph]] = []
        generation = 0
        with self._mutex:
            self._counters.batch_queries += len(queries)
            self._counters.queries += len(queries)
            generation = self._generation
            seen_in_batch = set()
            for key, query in zip(keys, queries):
                if key in seen_in_batch:
                    self._counters.batch_dedup_hits += 1
                    continue
                seen_in_batch.add(key)
                cached = self._cache.get(key)
                if cached is not None:
                    self._counters.cache_hits += 1
                    resolved[key] = cached
                else:
                    self._counters.cache_misses += 1
                    pending.append((key, query))
        if pending:
            with self._rw.read_locked():
                computed = self._execute_batch([q for _, q in pending])
            for (key, _), result in zip(pending, computed):
                resolved[key] = result
                self._cache_store(key, result, generation)
        return [resolved[key] for key in keys]

    # ------------------------------------------------------------------
    # maintenance (write-locked; every mutation invalidates the cache)
    # ------------------------------------------------------------------
    def insert(self, graph: LabeledGraph) -> int:
        """Add a graph through the index's maintenance path."""
        with self._rw.write_locked():
            gid = self._index.insert(graph)
            self._invalidate("inserts")
        return gid

    def delete(self, graph_id: int) -> None:
        """Remove a graph and purge it from every feature."""
        with self._rw.write_locked():
            self._index.delete(graph_id)
            self._invalidate("deletes")

    def rebuild(self) -> None:
        """Reconstruct the index from the current database state in place.

        The expensive build (mining + feature materialization, possibly a
        process pool) runs under the *read* lock, concurrently with
        queries — holding the writer lock across it would stall every
        reader for the whole build (REPRO202).  The writer lock is taken
        only for the swap; if maintenance raced the build (generation
        moved), the stale build is discarded and retried against the new
        database state.
        """
        while True:
            with self._mutex:
                observed = self._generation
            with self._rw.read_locked():
                rebuilt = self._index.rebuild()
            with self._rw.write_locked():
                with self._mutex:
                    raced = self._generation != observed
                if raced:
                    continue
                with self._mutex:
                    rebuilt.stats.engine = self._counters
                rebuilt.attach_serving_lock(self._rw)
                self._index = rebuilt
                self._invalidate("rebuilds")
                return

    def needs_rebuild(self) -> bool:
        with self._rw.read_locked():
            return self._index.needs_rebuild()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _cache_lookup(
        self, key: str
    ) -> Tuple[Optional[QueryResult], int]:
        """Count the query and return ``(cached result, generation)``."""
        with self._mutex:
            self._counters.queries += 1
            cached = self._cache.get(key)
            if cached is not None:
                self._counters.cache_hits += 1
            else:
                self._counters.cache_misses += 1
            return cached, self._generation

    def _cache_store(
        self, key: str, result: QueryResult, generation: int
    ) -> None:
        """Memoize ``result`` unless the index changed since it started."""
        with self._mutex:
            if self._generation == generation:
                self._cache.put(key, result)

    def _invalidate(self, counter: str) -> None:
        """Bump the generation and drop every cached answer.

        Called while holding the write lock, so no query pipeline is in
        flight; results still waiting to be stored observe the generation
        bump and discard themselves.
        """
        with self._mutex:
            self._generation += 1
            self._cache.clear()
            self._counters.invalidations += 1
            setattr(
                self._counters, counter, getattr(self._counters, counter) + 1
            )

    def _count_pipeline(self, plan: QueryPlan) -> None:
        with self._mutex:
            self._counters.candidates_filtered += plan.candidates_after_filter
            self._counters.candidates_pruned += plan.candidates_after_filter - len(
                plan.survivors
            )
            self._counters.verifications_run += len(plan.survivors)

    @guarded_by("_rw", mode="read")
    def _execute(self, query: LabeledGraph) -> QueryResult:
        """Run one full pipeline (caller holds the read lock)."""
        plan = self._index.plan(query)
        if plan.result is not None:
            return plan.result
        self._count_pipeline(plan)
        start = time.perf_counter()
        vstats = VerificationStats()
        if self._verify_workers > 1 and len(plan.survivors) > 1:
            matches = self._verify_parallel([plan], vstats)[0]
        else:
            matches = frozenset(
                gid
                for gid in plan.survivors
                if self._index.verify(plan, gid, vstats)
            )
        return self._index.finish(
            plan, matches, vstats, time.perf_counter() - start
        )

    @guarded_by("_rw", mode="read")
    def _execute_batch(
        self, queries: Sequence[LabeledGraph]
    ) -> List[QueryResult]:
        """Run pipelines for distinct queries, pooling their verification."""
        plans = [self._index.plan(query) for query in queries]
        open_plans = [plan for plan in plans if plan.result is None]
        for plan in open_plans:
            self._count_pipeline(plan)
        start = time.perf_counter()
        vstats = VerificationStats()
        match_sets = self._verify_parallel(open_plans, vstats)
        elapsed = time.perf_counter() - start
        results: List[QueryResult] = []
        open_index = 0
        for plan in plans:
            if plan.result is not None:
                results.append(plan.result)
            else:
                results.append(
                    self._index.finish(
                        plan, match_sets[open_index], vstats, elapsed
                    )
                )
                open_index += 1
        return results

    @guarded_by("_rw", mode="read")
    def _verify_parallel(
        self, plans: List[QueryPlan], vstats: VerificationStats
    ) -> List[FrozenSet[int]]:
        """Verify the survivors of every plan, fanning out when configured.

        Tasks are independent ``(plan, candidate)`` pairs; each worker
        keeps private verification counters that are merged at the end, so
        the totals match a serial run exactly.
        """
        tasks: List[Tuple[int, int]] = [
            (plan_idx, gid)
            for plan_idx, plan in enumerate(plans)
            for gid in plan.survivors
        ]

        def run_one(task: Tuple[int, int]) -> Tuple[int, int, bool, VerificationStats]:
            plan_idx, gid = task
            local = VerificationStats()
            ok = self._index.verify(plans[plan_idx], gid, local)
            return plan_idx, gid, ok, local

        if self._verify_workers > 1 and len(tasks) > 1:
            with ThreadPoolExecutor(max_workers=self._verify_workers) as pool:
                outcomes = list(pool.map(run_one, tasks))
        else:
            outcomes = [run_one(task) for task in tasks]

        matched: Dict[int, Set[int]] = {}
        for plan_idx, gid, ok, local in outcomes:
            vstats.merge(local)
            if ok:
                matched.setdefault(plan_idx, set()).add(gid)
        return [
            frozenset(matched.get(plan_idx, set()))
            for plan_idx in range(len(plans))
        ]
