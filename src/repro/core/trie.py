"""Prefix-trie index over feature canonical strings (Section 4.2.2).

"After the string representation for each feature tree is obtained, a
prefix tree based indexing is used to index all feature trees."  The trie
maps canonical strings to feature ids in O(len(string)) and additionally
supports prefix enumeration, which a flat dict cannot.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple


class _Node:
    __slots__ = ("children", "value")

    def __init__(self) -> None:
        self.children: Dict[str, "_Node"] = {}
        self.value: Optional[int] = None


class StringTrie:
    """A character trie storing ``string -> int`` (feature id) entries."""

    def __init__(self) -> None:
        self._root = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, key: str, value: int) -> None:
        """Insert or overwrite the entry for ``key``."""
        node = self._root
        for ch in key:
            node = node.children.setdefault(ch, _Node())
        if node.value is None:
            self._size += 1
        node.value = value

    def get(self, key: str) -> Optional[int]:
        node = self._root
        for ch in key:
            node = node.children.get(ch)
            if node is None:
                return None
        return node.value

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def remove(self, key: str) -> bool:
        """Remove ``key``; True if it was present.  Prunes dead branches."""
        path: List[Tuple[_Node, str]] = []
        node = self._root
        for ch in key:
            nxt = node.children.get(ch)
            if nxt is None:
                return False
            path.append((node, ch))
            node = nxt
        if node.value is None:
            return False
        node.value = None
        self._size -= 1
        for parent, ch in reversed(path):
            child = parent.children[ch]
            if child.value is None and not child.children:
                del parent.children[ch]
            else:
                break
        return True

    def items_with_prefix(self, prefix: str) -> Iterator[Tuple[str, int]]:
        """All ``(key, value)`` entries whose key starts with ``prefix``."""
        node = self._root
        for ch in prefix:
            node = node.children.get(ch)
            if node is None:
                return
        stack: List[Tuple[_Node, str]] = [(node, prefix)]
        while stack:
            current, key = stack.pop()
            if current.value is not None:
                yield key, current.value
            for ch in sorted(current.children, reverse=True):
                stack.append((current.children[ch], key + ch))

    def keys(self) -> Iterator[str]:
        for key, _ in self.items_with_prefix(""):
            yield key
