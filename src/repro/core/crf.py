"""Canonical Reconstruction Forms (Section 5.3.1).

Two pairs of matched graphs ``(s1, t1)`` and ``(s2, t2)`` — where
``s1 ≈ s2 ≈ s`` and ``t1 ≈ t2 ≈ t`` overlap only on vertices — form
isomorphic unions iff their *canonical reconstruction forms* coincide:

    crf[s ∪ t, s, t] = ( min over automorphisms f_s of s, f_t of t and
                         orderings p of the shared vertices of
                         [f_s(s-side of p), f_t(t-side of p)],  s, t )

Minimizing over the automorphism groups quotients away every symmetric
renaming, so joining partial reconstructions can be deduplicated by a
plain hashable key instead of running isomorphism tests — the paper's
mechanism for keeping verification cheap.

This module implements the form exactly as defined (it is part of the
paper's contribution and is unit-tested against explicit union-graph
isomorphism); the production verifier in :mod:`repro.core.verification`
uses the derived :func:`overlap_signature` as its memoization key.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, Sequence, Tuple

from repro.graphs.graph import LabeledGraph
from repro.graphs.isomorphism import automorphisms

SharedPairs = Sequence[Tuple[int, int]]  # (vertex in s, vertex in t) identified


def canonical_reconstruction_form(
    s: LabeledGraph,
    t: LabeledGraph,
    shared: SharedPairs,
) -> Tuple[Tuple[Tuple[int, ...], Tuple[int, ...]], str, str]:
    """``crf[s ∪ t, s, t]`` for a union glued along ``shared`` vertex pairs.

    Returns ``((min s-side array, min t-side array), key(s), key(t))``
    where the arrays range over all automorphism images and all orderings
    of the shared pairs, minimized lexicographically (any fixed partial
    order works, per the paper; we use tuple order).
    """
    from repro.graphs.canonical import canonical_label

    auts_s = automorphisms(s)
    auts_t = automorphisms(t)
    pairs = list(shared)
    best: Tuple[Tuple[int, ...], Tuple[int, ...]] = None  # type: ignore[assignment]
    for ordering in permutations(range(len(pairs))):
        s_side = [pairs[i][0] for i in ordering]
        t_side = [pairs[i][1] for i in ordering]
        for fs in auts_s:
            fs_arr = tuple(fs[v] for v in s_side)
            for ft in auts_t:
                candidate = (fs_arr, tuple(ft[v] for v in t_side))
                if best is None or candidate < best:
                    best = candidate
    if best is None:  # no shared vertices: the union is a disjoint one
        best = ((), ())
    return (best, canonical_label(s), canonical_label(t))


def union_graph(
    s: LabeledGraph, t: LabeledGraph, shared: SharedPairs
) -> LabeledGraph:
    """Materialize ``s ∪ t`` with ``shared`` vertex pairs identified.

    Vertices of ``s`` keep their ids; unshared vertices of ``t`` are
    appended.  Used by tests to validate the CRF theorem (equal CRFs ⇒
    isomorphic unions) against explicit isomorphism checks.
    """
    t_to_union: Dict[int, int] = {tv: sv for sv, tv in shared}
    union = LabeledGraph(list(s.vertex_labels()))
    for tv in t.vertices():
        if tv not in t_to_union:
            t_to_union[tv] = union.add_vertex(t.vertex_label(tv))
    for u, v, label in s.edges():
        union.add_edge(u, v, label)
    for u, v, label in t.edges():
        a, b = t_to_union[u], t_to_union[v]
        if not union.has_edge(a, b):
            union.add_edge(a, b, label)
    return union


def overlap_signature(
    piece_index: int, boundary: Sequence[Tuple[int, int]]
) -> Tuple[int, Tuple[Tuple[int, int], ...]]:
    """Hashable memo key for a partial reconstruction state.

    ``boundary`` lists ``(query_vertex, graph_vertex)`` bindings that the
    remaining pieces can still observe; two states with equal signatures
    extend to exactly the same completions, so a failed one need never be
    retried — the CRF idea specialized to anchored reconstruction.
    """
    return (piece_index, tuple(sorted(boundary)))
