"""Index- and query-level statistics records.

Every figure in Section 6 is a statistic exposed here: feature counts
(Fig. 9), candidate-set sizes after filtering and pruning (Figs. 10/11),
and construction/query wall times (Figs. 12/13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet

from repro.core.verification import VerificationStats
from repro.mining.subtree_miner import MiningStats


@dataclass
class IndexStats:
    """What one index build produced and how long it took."""

    num_features: int
    features_by_size: Dict[int, int]
    total_center_locations: int
    build_seconds: float
    mining: MiningStats
    shrink_removed: int

    @property
    def max_feature_size(self) -> int:
        return max(self.features_by_size, default=0)


@dataclass
class QueryResult:
    """The answer to one graph query plus the paper's per-phase metrics."""

    matches: FrozenSet[int]
    direct_hit: bool = False
    partition_size: int = 0            # |TP_q|
    sfq_size: int = 0                  # |SF_q|
    candidates_after_filter: int = 0   # |P_q|
    candidates_after_prune: int = 0    # |P'_q|
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    verification: VerificationStats = field(default_factory=VerificationStats)

    @property
    def support(self) -> int:
        """``|D_q|`` — the true answer size."""
        return len(self.matches)

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    @property
    def false_positives_after_prune(self) -> int:
        """Candidates the verifier had to reject (lower is better)."""
        return self.candidates_after_prune - len(self.matches)
