"""Index- and query-level statistics records.

Every figure in Section 6 is a statistic exposed here: feature counts
(Fig. 9), candidate-set sizes after filtering and pruning (Figs. 10/11),
and construction/query wall times (Figs. 12/13).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Optional

from repro.core.verification import VerificationStats
from repro.mining.subtree_miner import MiningStats


@dataclass
class EngineStats:
    """Per-stage runtime counters of one :class:`repro.core.engine.QueryEngine`.

    Shared mutable state guarded by the engine's ``_mutex`` — every
    increment (and every read of the live record, aliasing through
    ``stats.engine`` included) happens under that lock; the REPRO201
    lint rule and the PR-3 audit hold the engine to exactly that.  Read
    a consistent copy through :meth:`snapshot` (or ``QueryEngine.stats``).
    Attached to the wrapped index's :class:`IndexStats` as
    ``stats.engine`` so the same record that describes the build also
    surfaces query-serving behavior; it is runtime-only state and is
    never persisted.

    The timeout counters describe graceful degradation under
    :class:`~repro.core.budget.QueryBudget`: ``timeouts`` counts calls
    whose deadline or work cap expired mid-pipeline, ``degraded_results``
    counts the ``complete=False`` answers handed back (one budgeted batch
    can produce several), ``unresolved_candidates`` sums the candidate
    ids those answers left unverified, and ``prune_exhausted`` counts
    candidates that survived center pruning only because the per-graph
    check budget ran out (kept-by-exhaustion, not proven-satisfiable).
    All four stay zero on unbudgeted traffic.
    """

    queries: int = 0                 # every query() / query_batch() member
    cache_hits: int = 0
    cache_misses: int = 0
    batch_queries: int = 0           # queries arriving through query_batch()
    batch_dedup_hits: int = 0        # batch members answered by an isomorph
    candidates_filtered: int = 0     # |P_q| summed over executed pipelines
    candidates_pruned: int = 0       # filtered candidates removed pre-verify
    verifications_run: int = 0       # exact subgraph-isomorphism tests
    invalidations: int = 0           # cache clears (insert/delete/rebuild)
    inserts: int = 0
    deletes: int = 0
    rebuilds: int = 0
    # --- segment-backed (format v3) maintenance counters ---------------
    flushes: int = 0                 # memtable flushes to delta segments
    compactions: int = 0             # delta folds published via compact()
    # --- deadline / degradation counters (budgeted calls only) ---------
    timeouts: int = 0                # budgets that expired mid-pipeline
    degraded_results: int = 0        # results returned with complete=False
    unresolved_candidates: int = 0   # candidates left unverified on expiry
    prune_exhausted: int = 0         # candidates kept on prune-budget exhaustion
    #: verification work units charged to budgeted calls' tokens, summed
    #: (matcher candidate draws + anchored-assignment trials).  Exact:
    #: enumerators flush sub-interval remainders on exit (the pre-fix
    #: matcher silently dropped up to CHECK_INTERVAL-1 steps per call).
    #: Zero on unbudgeted traffic — no token, nothing to account.
    verify_steps: int = 0

    def snapshot(self) -> "EngineStats":
        """An independent copy (safe to keep across further queries)."""
        return replace(self)


@dataclass
class IndexStats:
    """What one index build produced and how long it took."""

    num_features: int
    features_by_size: Dict[int, int]
    total_center_locations: int
    build_seconds: float
    mining: MiningStats
    shrink_removed: int
    #: live counters of the QueryEngine serving this index, if any
    #: (runtime-only; excluded from persistence).
    engine: Optional[EngineStats] = None

    @property
    def max_feature_size(self) -> int:
        return max(self.features_by_size, default=0)


@dataclass
class QueryResult:
    """The answer to one graph query plus the paper's per-phase metrics.

    A result computed under an expired :class:`~repro.core.budget.
    QueryBudget` is *degraded but sound*: ``complete`` is ``False``,
    ``matches`` holds only candidates verified before expiry (every one
    is a true match), and ``unresolved`` holds the candidate ids the
    pipeline never resolved — the exact answer is always a superset of
    ``matches`` and a subset of ``matches | unresolved``.  Degraded
    results are never cached by the engine; retry with a fresh budget to
    resolve the remainder.  ``prune_exhausted`` counts candidates kept
    by center-prune budget exhaustion rather than a satisfiability proof
    (they may still be resolved exactly by verification).
    """

    matches: FrozenSet[int]
    direct_hit: bool = False
    partition_size: int = 0            # |TP_q|
    sfq_size: int = 0                  # |SF_q|
    candidates_after_filter: int = 0   # |P_q|
    candidates_after_prune: int = 0    # |P'_q|
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    verification: VerificationStats = field(default_factory=VerificationStats)
    complete: bool = True              # False => budget expired mid-query
    unresolved: FrozenSet[int] = frozenset()  # candidates never resolved
    degraded_reason: Optional[str] = None     # "deadline" / "verify-budget"
    prune_exhausted: int = 0           # survivors kept by exhausted prune budget

    @property
    def support(self) -> int:
        """``|D_q|`` — the true answer size."""
        return len(self.matches)

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    @property
    def false_positives_after_prune(self) -> int:
        """Candidates the verifier had to reject (lower is better)."""
        return self.candidates_after_prune - len(self.matches)
