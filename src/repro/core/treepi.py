"""The TreePi index — the paper's primary contribution, end to end.

``TreePiIndex.build`` runs database preprocessing (Section 4): frequent
subtree mining under σ(s), γ-shrinking, feature materialization with
exact center locations, and a prefix-trie over canonical strings.

``TreePiIndex.query`` runs query processing (Section 5): randomized
Feature-Tree-Partition, support-set filtering, Center Distance Constraint
pruning, and reconstruction-based verification.  The result is exactly
``D_q = {g : q ⊆ g}``.

``insert`` / ``delete`` implement the Section 7.1 maintenance scheme:
occurrences of existing features are updated in place, and the index
advertises a rebuild once churn passes one quarter of the build size.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.flow import hot_path
from repro.analysis.guards import guarded_by
from repro.core.budget import CancellationToken, QueryBudget
from repro.core.center_prune import CenterConstraintProblem, center_prune
from repro.core.feature import FeatureTree
from repro.core.filtering import filter_candidates
from repro.core.partition import run_partitions
from repro.core.statistics import IndexStats, QueryResult
from repro.core.trie import StringTrie
from repro.core.verification import VerificationStats, verify_candidate
from repro.exceptions import BudgetExceeded, GraphError, IndexError_
from repro.graphs.distances import DistanceOracle
from repro.graphs.graph import GraphDatabase, LabeledGraph
from repro.graphs.isomorphism import is_subgraph_isomorphic, subgraph_monomorphisms
from repro.mining.patterns import MinedPattern
from repro.mining.shrink import leaf_removed_subtrees, shrink_feature_set
from repro.mining.subtree_miner import FrequentSubtreeMiner, _chunk
from repro.mining.support import SupportFunction
from repro.storage import PostingList
from repro.trees.canonical import tree_canonical_string
from repro.trees.center import tree_center

if TYPE_CHECKING:
    from repro.storage.segments import CompactionPlan, SegmentStore


def _augmentation_keys(
    query: LabeledGraph, max_size: int
) -> Tuple[List[str], List[str]]:
    """Canonical strings of every subtree of the query up to ``max_size`` edges.

    Returns ``(single_edge_keys, larger_keys)``.  Sizes up to α are indexed
    unconditionally (σ(s) = 1), so intersecting their supports sharpens
    SF_q essentially for free; misses among the larger keys are ignored by
    filtering (they may have been γ-shrunk), while a missing *single edge*
    proves the query unanswerable.

    Enumeration grows connected acyclic edge subsets breadth-first; a
    subset that closes a cycle stops extending (supersets stay cyclic).
    """
    single_edge_keys: List[str] = []
    larger_keys: Set[str] = set()
    frontier: List[frozenset] = []
    seen: Set[frozenset] = set()
    for u, v, elabel in query.edges():
        probe = LabeledGraph(
            [query.vertex_label(u), query.vertex_label(v)], [(0, 1, elabel)]
        )
        single_edge_keys.append(tree_canonical_string(probe))
        es = frozenset({(u, v) if u < v else (v, u)})
        seen.add(es)
        frontier.append(es)

    size = 1
    while frontier and size < max_size:
        next_frontier: List[frozenset] = []
        for es in frontier:
            touched = {w for e in es for w in e}
            for u in touched:
                for v in query.neighbors(u):
                    key = (u, v) if u < v else (v, u)
                    if key in es:
                        continue
                    if v in touched and u in touched:
                        continue  # would close a cycle
                    extended = es | {key}
                    if extended in seen:
                        continue
                    seen.add(extended)
                    sub, _ = query.subgraph_from_edges(extended)
                    larger_keys.add(tree_canonical_string(sub))
                    next_frontier.append(extended)
        frontier = next_frontier
        size += 1
    return single_edge_keys, sorted(larger_keys)


def _materialize_features(
    items: List[Tuple[int, MinedPattern]]
) -> List[FeatureTree]:
    """Build feature-location tables for a chunk of (id, pattern) pairs.

    A pure function of its input, so chunks can be fanned out over a
    process pool; feature ids are assigned by the caller in canonical-key
    order, making the merged list independent of chunking.
    """
    return [
        FeatureTree.from_mined_pattern(fid, pattern) for fid, pattern in items
    ]


@dataclass(frozen=True)
class TreePiConfig:
    """Build/query knobs (paper defaults in Section 6.1 commentary).

    * ``support`` — the σ(s) function (α, β, η),
    * ``gamma``   — shrinking parameter γ ∈ [1, 3],
    * ``delta``   — partition restarts δ; ``None`` uses |E(q)| per query,
    * ``enable_center_prune`` — ablation switch for Algorithm 2,
    * ``augment_small_subtrees`` — also intersect the supports of every 1-
      and 2-edge subtree of the query (cheap canonical lookups; σ(s)=1 at
      those sizes indexes them all, so this strengthens SF_q at no risk),
    * ``paths_only`` — restrict features to *path-shaped* trees.  This
      degrades TreePi into a GraphGrep-flavored index inside the same
      framework; the A4 ablation uses it to measure what branching tree
      features buy over paths (the paper's Section 1 argument),
    * ``direct_verification_max_edges`` — queries at or below this edge
      count verify candidates with a plain monomorphism search instead of
      anchored reconstruction: the reconstruction machinery's per-candidate
      setup cannot amortize on tiny queries (both verifiers are exact;
      set to 0 to always reconstruct, as the paper describes),
    * ``max_embeddings_per_graph`` — optional miner memory cap (approximate
      mining; the default ``None`` keeps the index exact),
    * ``matcher_prefilters`` — use the cached per-graph label-pair /
      neighboring-label-signature structures (:mod:`repro.graphs.
      matcher_index`) to refute candidates in center pruning and
      verification before any backtracking.  Answer sets are identical
      either way (every filter is a necessary condition — the
      differential suites pin this); ``False`` restores the unfiltered
      matcher, whose worst-case cost the deadline tests and adversarial
      benchmarks rely on.  A runtime performance knob like ``workers``:
      it cannot change what gets built or answered, so it is
      deliberately excluded from persistence,
    * ``seed``    — RNG seed for the randomized partition,
    * ``workers`` — process-pool width for index construction.  Mining's
      per-graph embedding enumeration and the feature-location table
      build are fanned out and merged in canonical-key order, so the
      built index (and its serialized JSON) is byte-identical for every
      value; ``workers`` is a runtime knob, not part of index identity,
      and is deliberately excluded from persistence.
    """

    support: SupportFunction
    gamma: float = 1.5
    delta: Optional[int] = None
    enable_center_prune: bool = True
    augment_small_subtrees: bool = True
    paths_only: bool = False
    feature_index: str = "trie"  # "trie" or "bptree" (Section 4.2.2's note)
    direct_verification_max_edges: int = 5
    center_prune_budget: int = 2000
    max_embeddings_per_graph: Optional[int] = None
    matcher_prefilters: bool = True
    seed: int = 2007
    workers: int = 1


@dataclass
class QueryPlan:
    """The state of one query after partition / filter / prune.

    ``result`` is set when the pipeline short-circuited (direct hit,
    provably empty answer); otherwise ``survivors`` lists the candidate
    graph ids still awaiting :meth:`TreePiIndex.verify`, and ``problem``
    carries the center-constraint instance verification anchors on.
    """

    query: LabeledGraph
    result: Optional[QueryResult] = None
    survivors: List[int] = field(default_factory=list)
    problem: Optional[CenterConstraintProblem] = None
    partition_size: int = 0
    sfq_size: int = 0
    candidates_after_filter: int = 0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: survivors kept because the center-prune budget/deadline ran out
    #: before a proof either way (kept-by-exhaustion, still sound).
    prune_exhausted: int = 0


class TreePiIndex:
    """A built TreePi index over one :class:`GraphDatabase`."""

    def __init__(
        self,
        database: GraphDatabase,
        config: TreePiConfig,
        features: List[FeatureTree],
        stats: IndexStats,
    ) -> None:
        self._db = database
        self._config = config
        self._features = features
        self._lookup: Dict[str, FeatureTree] = {f.key: f for f in features}
        if config.feature_index == "trie":
            self._trie = StringTrie()
        elif config.feature_index == "bptree":
            from repro.core.bptree import BPlusTree

            self._trie = BPlusTree()
        else:
            raise IndexError_(
                f"unknown feature_index {config.feature_index!r}; "
                "pick 'trie' or 'bptree'"
            )
        for f in features:
            self._trie.insert(f.key, f.feature_id)
        self._stats = stats
        self._build_size = len(database)
        self._churn = 0
        # Per-graph BFS distance oracles, shared across queries (graphs are
        # treated as immutable once indexed; maintenance invalidates).
        self._oracles: Dict[int, "DistanceOracle"] = {}
        # Set by QueryEngine.attach_serving_lock: once an engine serves
        # this index, direct maintenance calls must hold its write lock
        # (enforced by @guarded_by under REPRO_CONTRACTS=1).
        self._serving_lock: Optional[object] = None
        # Set by attach_segment_store for v3 (mmap-backed) indexes:
        # maintenance then buffers into memtables/tombstones instead of
        # advertising rebuilds, and flushes/compacts through the store.
        self._segment_store: Optional["SegmentStore"] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, database: GraphDatabase, config: TreePiConfig) -> "TreePiIndex":
        """Database preprocessing: mine, shrink, materialize features."""
        if len(database) == 0:
            raise IndexError_("cannot build an index over an empty database")
        if config.workers < 1:
            raise IndexError_(f"workers must be >= 1, got {config.workers}")
        start = time.perf_counter()
        miner = FrequentSubtreeMiner(
            database,
            config.support,
            max_embeddings_per_graph=config.max_embeddings_per_graph,
            workers=config.workers,
        )
        mined = miner.mine()
        shrink = shrink_feature_set(mined.patterns, config.gamma)
        kept = list(shrink.kept.values())
        if config.paths_only:
            kept = [
                p for p in kept
                if all(p.graph.degree(v) <= 2 for v in p.graph.vertices())
            ]
        enumerated = list(enumerate(kept))
        if config.workers > 1 and len(enumerated) > 1:
            with ProcessPoolExecutor(max_workers=config.workers) as pool:
                parts = list(
                    pool.map(
                        _materialize_features,
                        _chunk(enumerated, config.workers),
                    )
                )
            features = [f for part in parts for f in part]
            features.sort(key=lambda f: f.feature_id)
        else:
            features = _materialize_features(enumerated)
        by_size: Dict[int, int] = {}
        for f in features:
            by_size[f.size] = by_size.get(f.size, 0) + 1
        stats = IndexStats(
            num_features=len(features),
            features_by_size=by_size,
            total_center_locations=sum(f.total_locations() for f in features),
            build_seconds=time.perf_counter() - start,
            mining=mined.stats,
            shrink_removed=shrink.removed_count,
        )
        return cls(database, config, features, stats)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def database(self) -> GraphDatabase:
        return self._db

    @property
    def config(self) -> TreePiConfig:
        return self._config

    @property
    def stats(self) -> IndexStats:
        return self._stats

    @property
    def features(self) -> List[FeatureTree]:
        return list(self._features)

    def feature_count(self) -> int:
        return len(self._features)

    def storage_bytes(self) -> int:
        """Resident bytes of the columnar occurrence/support storage.

        Counts the posting and center columns of every feature's
        :class:`~repro.storage.occurrences.OccurrenceStore` — the part of
        the index the storage layer owns (graphs, tries and stats live
        elsewhere).
        """
        return sum(f.store.nbytes() for f in self._features)

    def has_feature(self, key: str) -> bool:
        return key in self._trie

    def feature_by_key(self, key: str) -> Optional[FeatureTree]:
        return self._lookup.get(key)

    # ------------------------------------------------------------------
    # query processing (Section 5)
    # ------------------------------------------------------------------
    @hot_path
    def query(
        self, query: LabeledGraph, budget: Optional[QueryBudget] = None
    ) -> QueryResult:
        """Find ``D_q`` — all database graphs containing ``query``.

        With a ``budget``, the pipeline degrades gracefully instead of
        running unboundedly: on expiry the result carries the matches
        verified so far plus the unresolved candidate ids and is flagged
        ``complete=False`` (see :mod:`repro.core.budget`).  Without one
        the behavior is byte-identical to the unbudgeted pipeline.
        """
        token = budget.start() if budget is not None else None
        plan = self.plan(query, token=token, budget=budget)
        if plan.result is not None:
            return plan.result
        t0 = time.perf_counter()
        vstats = VerificationStats()
        matches: Set[int] = set()
        unresolved: List[int] = []
        for gid in plan.survivors:
            try:
                if self.verify(plan, gid, vstats, token=token):
                    matches.add(gid)
            except BudgetExceeded:
                unresolved.append(gid)
        return self.finish(
            plan,
            frozenset(matches),
            vstats,
            time.perf_counter() - t0,
            unresolved=unresolved,
            degraded_reason=token.reason if token is not None else None,
        )

    @hot_path
    def plan(
        self,
        query: LabeledGraph,
        token: Optional[CancellationToken] = None,
        budget: Optional[QueryBudget] = None,
    ) -> "QueryPlan":
        """Run partition / filter / prune, stopping short of verification.

        Returns a :class:`QueryPlan`; when the pipeline can already prove
        the answer (direct feature hit, missing single edge, empty filter
        intersection) the plan carries a final ``result`` and an empty
        survivor list, otherwise the survivors still need :meth:`verify`.
        This staged form is what :class:`repro.core.engine.QueryEngine`
        uses to parallelize verification across candidates.

        ``token`` bounds the center-pruning stage (partition and filter
        are low-order polynomial and run to completion): when the
        deadline expires mid-prune the remaining candidates are kept
        unexamined, which only ever *grows* the survivor superset.
        ``budget`` additionally overrides the per-graph prune-check cap
        via :attr:`QueryBudget.prune_checks`.
        """
        if query.num_edges == 0:
            raise GraphError("query graphs must have at least one edge")
        if not query.is_connected():
            raise GraphError("query graphs must be connected")

        phases: Dict[str, float] = {}
        t0 = time.perf_counter()

        # Fast path: the query itself is an indexed feature tree, so its
        # exact support set is already materialized (RP's first check).
        if query.is_tree():
            feature = self._lookup.get(tree_canonical_string(query))
            if feature is not None:
                phases["lookup"] = time.perf_counter() - t0
                support = feature.support_set()
                return QueryPlan(
                    query=query,
                    result=QueryResult(
                        matches=support,
                        direct_hit=True,
                        partition_size=1,
                        sfq_size=1,
                        candidates_after_filter=len(support),
                        candidates_after_prune=len(support),
                        phase_seconds=phases,
                    ),
                )

        # Every single edge of the query must be an indexed feature (σ(1)=1
        # and size-1 trees are never shrunk); a miss proves D_q is empty.
        # Enumerate up to 3-edge subtrees even when α < 3: lookups whose
        # keys are absent (infrequent or shrunk) are skipped soundly, and
        # present ones buy the same filter power gIndex gets from its
        # exhaustive ≤3-edge enumeration.
        single_edge_keys, larger_keys = _augmentation_keys(
            query, max(3, self._config.support.alpha)
        )
        for key in single_edge_keys:
            if key not in self._lookup:
                phases["partition"] = time.perf_counter() - t0
                return QueryPlan(
                    query=query,
                    result=QueryResult(
                        matches=frozenset(), phase_seconds=phases
                    ),
                )
        extra_keys = single_edge_keys + larger_keys

        # Stage-1 filter on the augmentation subtrees alone.  Cheap (pure
        # lookups and posting-list merges), and when it already leaves only
        # a handful of candidates the partition budget δ can shrink: SF_q
        # diversity buys nothing on a near-final candidate set, while TP_q
        # for verification needs only a few restarts.  ``stage1`` is the
        # ``P_q ← D`` initializer handed to Algorithm 1; when augmentation
        # features exist their intersection bounds it without ever copying
        # the database id set.
        stage1: Optional[PostingList] = None
        if self._config.augment_small_subtrees:
            # dict.fromkeys dedups while keeping list order; intersection
            # is order-free and intersect_many runs smallest-first with
            # the Algorithm 1 early exit.
            postings = [
                self._lookup[k].support_posting()
                for k in dict.fromkeys(extra_keys)
                if k in self._lookup
            ]
            if postings:
                stage1 = PostingList.intersect_many(postings, early_exit=True)
        if stage1 is None:
            stage1 = self._db.universe_posting()

        rng = random.Random(self._config.seed)
        delta = self._config.delta or max(1, query.num_edges)
        if len(stage1) <= 8:
            delta = min(delta, 3)
        run = run_partitions(query, self._trie.__contains__, delta, rng)
        phases["partition"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        outcome = filter_candidates(
            stage1, run.feature_subtrees.values(), self._lookup
        )
        phases["filter"] = time.perf_counter() - t0
        if outcome.definitely_empty:
            return QueryPlan(
                query=query,
                result=QueryResult(
                    matches=frozenset(),
                    partition_size=run.best.size,
                    sfq_size=run.sfq_size,
                    candidates_after_filter=len(outcome.candidates),
                    candidates_after_prune=0,
                    phase_seconds=phases,
                ),
            )

        t0 = time.perf_counter()
        problem = CenterConstraintProblem.from_partition(
            query, run.best, self._lookup
        )
        candidates = sorted(outcome.candidates)
        prune_exhausted = 0
        if self._config.enable_center_prune:
            prune_budget = self._config.center_prune_budget
            if budget is not None and budget.prune_checks is not None:
                prune_budget = budget.prune_checks
            report = center_prune(
                problem,
                candidates,
                {gid: self._db[gid] for gid in candidates},
                oracles=self._oracles,
                budget_per_graph=prune_budget,
                token=token,
                query=query if self._config.matcher_prefilters else None,
            )
            survivors = report.survivors
            prune_exhausted = report.exhausted + report.skipped
        else:
            survivors = candidates
        phases["center_prune"] = time.perf_counter() - t0
        return QueryPlan(
            query=query,
            survivors=list(survivors),
            problem=problem,
            partition_size=run.best.size,
            sfq_size=run.sfq_size,
            candidates_after_filter=len(outcome.candidates),
            phase_seconds=phases,
            prune_exhausted=prune_exhausted,
        )

    @hot_path
    def verify(
        self,
        plan: "QueryPlan",
        gid: int,
        vstats: VerificationStats,
        token: Optional[CancellationToken] = None,
    ) -> bool:
        """Exactly test one surviving candidate of ``plan``.

        Safe to call concurrently from several threads for distinct
        candidates of the same plan as long as each caller passes its own
        ``vstats`` (or tolerates racy counter increments).  With a
        ``token``, an expired budget unwinds the search with
        :class:`~repro.exceptions.BudgetExceeded` — the candidate is then
        *unresolved*, never silently matched or rejected.
        """
        query = plan.query
        prefilter = self._config.matcher_prefilters
        if query.num_edges <= self._config.direct_verification_max_edges:
            return is_subgraph_isomorphic(
                query, self._db[gid], token=token, prefilter=prefilter
            )
        assert plan.problem is not None
        return verify_candidate(
            query,
            plan.problem,
            self._db[gid],
            gid,
            vstats,
            oracle=self._oracles.setdefault(gid, DistanceOracle(self._db[gid])),
            token=token,
            prefilter=prefilter,
        )

    def finish(
        self,
        plan: "QueryPlan",
        matches: frozenset,
        vstats: VerificationStats,
        verify_seconds: float,
        unresolved: Sequence[int] = (),
        degraded_reason: Optional[str] = None,
    ) -> QueryResult:
        """Assemble the final :class:`QueryResult` for a verified plan.

        ``unresolved`` lists survivors whose verification was cut short
        by budget expiry; a non-empty list flags the result
        ``complete=False`` (degraded but sound — ``matches`` holds only
        exactly-verified graphs).
        """
        phases = dict(plan.phase_seconds)
        phases["verification"] = verify_seconds
        return QueryResult(
            matches=matches,
            partition_size=plan.partition_size,
            sfq_size=plan.sfq_size,
            candidates_after_filter=plan.candidates_after_filter,
            candidates_after_prune=len(plan.survivors),
            phase_seconds=phases,
            verification=vstats,
            complete=not unresolved,
            unresolved=frozenset(unresolved),
            degraded_reason=degraded_reason if unresolved else None,
            prune_exhausted=plan.prune_exhausted,
        )

    # ------------------------------------------------------------------
    # maintenance (Section 7.1)
    # ------------------------------------------------------------------
    def attach_serving_lock(self, lock: object) -> None:
        """Declare that ``lock`` (an engine's RW lock) now guards this index.

        A standalone index is single-owner and unchecked; once served by
        a :class:`~repro.core.engine.QueryEngine`, the ``@guarded_by``
        contracts on :meth:`insert`/:meth:`delete` require the engine's
        write lock, so maintenance that bypasses the engine (and its
        cache invalidation) fails fast under ``REPRO_CONTRACTS=1``.
        """
        self._serving_lock = lock

    @guarded_by("_serving_lock", mode="write")
    def insert(
        self, graph: LabeledGraph, graph_id: Optional[int] = None
    ) -> int:
        """Add a graph: update support sets and center positions in place.

        ``graph_id`` may pin a specific unused database id (the sharded
        serving tier allocates ids globally and pins them per shard so
        per-shard answer sets stay directly unionable).

        Edge types never seen before are materialized as fresh single-edge
        features first — the completeness floor (σ(1)=1, every database
        edge indexed) must survive maintenance, otherwise the missing-edge
        emptiness proof in :meth:`query` would turn false.  By induction no
        earlier graph can contain a type that was absent from the lookup.

        Existing features are then scanned smallest-first with apriori
        pruning: a feature whose (feature) subtrees are absent from the new
        graph cannot occur.
        """
        gid = self._db.add(graph, graph_id=graph_id)
        for u, v, elabel in graph.edges():
            probe = LabeledGraph(
                [graph.vertex_label(u), graph.vertex_label(v)], [(0, 1, elabel)]
            )
            key = tree_canonical_string(probe)
            if key not in self._lookup:
                feature = FeatureTree(
                    feature_id=len(self._features),
                    tree=probe,
                    key=key,
                    center=tree_center(probe),
                )
                if self._segment_store is not None:
                    self._segment_store.adopt_feature(feature)
                self._features.append(feature)
                self._lookup[key] = feature
                self._trie.insert(key, feature.feature_id)
        present: Dict[str, List[Dict[int, int]]] = {}
        for feature in sorted(self._features, key=lambda f: f.size):
            if feature.size >= 2:
                prunable = False
                for sub_key, _ in leaf_removed_subtrees(feature.tree):
                    if sub_key in self._lookup and sub_key not in present:
                        prunable = True
                        break
                if prunable:
                    continue
            embeddings = list(subgraph_monomorphisms(feature.tree, graph))
            if not embeddings:
                continue
            present[feature.key] = embeddings
            centers = {
                tuple(sorted(emb[v] for v in feature.center))
                for emb in embeddings
            }
            feature.add_occurrences(gid, centers)
        self._churn += 1
        if self._segment_store is not None:
            self._segment_store.note_insert()
        return gid

    @guarded_by("_serving_lock", mode="write")
    def delete(self, graph_id: int) -> None:
        """Remove a graph and purge its entries from every feature."""
        self._db.remove(graph_id)
        for feature in self._features:
            feature.remove_graph(graph_id)
        self._oracles.pop(graph_id, None)
        self._churn += 1
        if self._segment_store is not None:
            self._segment_store.note_delete(graph_id)

    @property
    def churn_fraction(self) -> float:
        """Inserts+deletes since build, relative to the build-time size."""
        return self._churn / max(1, self._build_size)

    def needs_rebuild(self) -> bool:
        """Section 7.1's guidance: rebuild after ~25% of graphs changed.

        A segment-backed index never advertises one: maintenance is
        absorbed by delta segments and folded by compaction, which
        preserves answers exactly — the rebuild heuristic exists to
        re-mine features, and the LSM path keeps the feature set exact
        incrementally (new edge types materialize on insert, dead data
        is tombstoned out).
        """
        if self._segment_store is not None:
            return False
        return self.churn_fraction >= 0.25

    def rebuild(self) -> "TreePiIndex":
        """Reconstruct the feature set from the current database state."""
        return TreePiIndex.build(self._db, self._config)

    # ------------------------------------------------------------------
    # segment-backed maintenance (format v3)
    # ------------------------------------------------------------------
    @property
    def segment_backed(self) -> bool:
        """True when this index maintains an mmap segment directory."""
        return self._segment_store is not None

    @property
    def segment_store(self) -> Optional["SegmentStore"]:
        return self._segment_store

    def attach_segment_store(self, store: "SegmentStore") -> None:
        """Bind the segment directory this index was loaded from.

        Hands the store the live database and the index's *own* feature
        list (so features materialized by later inserts participate in
        flushes), after which ``insert``/``delete`` become memtable/
        tombstone appends and ``needs_rebuild`` stays False forever.
        """
        from repro.storage.segments import SegmentGraphDatabase

        if not isinstance(self._db, SegmentGraphDatabase):
            raise IndexError_(
                "attach_segment_store requires a SegmentGraphDatabase-"
                "backed index (load it with load_index on a v3 directory)"
            )
        self._segment_store = store
        store.attach(self._db, self._features)

    @guarded_by("_serving_lock", mode="write")
    def maybe_flush_segments(self) -> bool:
        """Flush the memtables iff the buffered-op threshold tripped."""
        store = self._segment_store
        if store is None or not store.should_flush():
            return False
        return store.flush()

    @guarded_by("_serving_lock", mode="write")
    def flush_segments(self) -> bool:
        """Unconditionally persist buffered maintenance (delta + manifest)."""
        store = self._segment_store
        if store is None:
            return False
        return store.flush()

    def needs_compaction(self) -> bool:
        """True when enough delta segments accumulated to fold."""
        store = self._segment_store
        return store is not None and store.needs_compaction()

    @guarded_by("_serving_lock", mode="read")
    def prepare_compaction(self) -> Optional["CompactionPlan"]:
        """Stage the fully merged segment in a temp file (read-only).

        Safe under the engine's *read* lock — the expensive merge runs
        concurrently with queries, mirroring how ``rebuild`` keeps the
        build outside the writer lock.  Returns None when the index is
        not segment-backed or there is nothing to fold.
        """
        store = self._segment_store
        if store is None:
            return None
        return store.prepare_compaction()

    @guarded_by("_serving_lock", mode="write")
    def commit_compaction(self, plan: "CompactionPlan") -> None:
        """Publish a staged compaction (write lock held by the engine)."""
        store = self._segment_store
        if store is None:
            raise IndexError_("index is not segment-backed")
        store.commit_compaction(plan)
