"""Randomized Feature-Tree-Partition of query graphs (Section 5.1).

``RP(q)`` recursively splits the query's edge set into connected parts
until every part is a feature tree; single-edge parts always terminate
(σ(1) = 1 keeps every database edge indexed, the worst-case guarantee).
Running ``RP`` δ times yields δ partitions: the smallest becomes ``TP_q``
(driving pruning and verification) and the union of all pieces becomes
the feature subtree set ``SF_q`` (driving support-set filtering).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.graphs.graph import Edge, LabeledGraph, edge_key
from repro.graphs.random_subgraph import random_connected_edge_subset
from repro.trees.canonical import tree_canonical_string
from repro.trees.center import Center, tree_center


@dataclass
class QueryPiece:
    """One part of a Feature-Tree-Partition, kept in both coordinate systems.

    ``tree`` is the piece renumbered ``0..k``; ``to_query`` maps its
    vertices back onto query vertices so overlaps between pieces and
    center distances inside the query stay computable.
    """

    edges: Tuple[Edge, ...]           # edge keys in query coordinates
    tree: LabeledGraph                # piece-local coordinates
    to_query: Dict[int, int]          # piece vertex -> query vertex
    key: str                          # canonical string of the piece tree
    center: Center                    # center in piece-local coordinates
    center_in_query: Center           # the same center in query coordinates

    @property
    def size(self) -> int:
        return self.tree.num_edges


@dataclass
class Partition:
    """A Feature-Tree-Partition: non-edge-overlapping pieces covering q."""

    pieces: List[QueryPiece]

    @property
    def size(self) -> int:
        """``|p|`` — number of pieces; smaller is better (Section 5.1)."""
        return len(self.pieces)

    def piece_keys(self) -> List[str]:
        return [p.key for p in self.pieces]


def _make_piece(
    edges: Sequence[Edge], sub: LabeledGraph, remap: Dict[int, int]
) -> QueryPiece:
    to_query = {new: old for old, new in remap.items()}
    center = tree_center(sub)
    return QueryPiece(
        edges=tuple(sorted(edges)),
        tree=sub,
        to_query=to_query,
        key=tree_canonical_string(sub),
        center=center,
        center_in_query=tuple(sorted(to_query[v] for v in center)),
    )


def _edge_components(edges: Sequence[Edge]) -> List[List[Edge]]:
    """Split an edge set into connected components (union-find, no graphs)."""
    parent: Dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for u, v in edges:
        parent.setdefault(u, u)
        parent.setdefault(v, v)
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
    buckets: Dict[int, List[Edge]] = {}
    for u, v in edges:
        buckets.setdefault(find(u), []).append(edge_key(u, v))
    # Sort components by their edge lists so piece order is canonical, not
    # tied to union-find root discovery order.
    return sorted(sorted(b) for b in buckets.values())


# Cache entry for one edge subset: either a finished piece, or the built
# subgraph + remap of a non-terminal subset awaiting a random split.
_CacheEntry = Tuple[bool, object, object]


def random_partition(
    query: LabeledGraph,
    is_feature: Callable[[str], bool],
    rng: random.Random,
    cache: Optional[Dict[frozenset, _CacheEntry]] = None,
) -> Partition:
    """One run of ``RP(q)``: split until every part is a feature tree.

    A connected part terminates when it is a tree whose canonical string
    the index recognizes, or when it is a single edge (which may or may not
    be a feature — a non-feature edge means the query's answer is empty,
    and the caller detects that from the piece's empty support).

    ``cache`` memoizes, per query, the deterministic work on each edge
    subset (subgraph construction, canonical string, terminal test) so the
    δ restarts of :func:`run_partitions` never redo it; only the split
    choices stay random.
    """
    if cache is None:
        cache = {}
    pieces: List[QueryPiece] = []
    stack: List[List[Edge]] = [sorted(e[:2] for e in query.edges())]
    while stack:
        edges = stack.pop()
        fs = frozenset(edges)
        entry = cache.get(fs)
        if entry is None:
            sub, remap = query.subgraph_from_edges(edges)
            terminal = len(edges) == 1 or (
                sub.is_tree() and is_feature(tree_canonical_string(sub))
            )
            if terminal:
                entry = (True, _make_piece(edges, sub, remap), None)
            else:
                entry = (False, sub, remap)
            cache[fs] = entry
        if entry[0]:
            pieces.append(entry[1])  # type: ignore[arg-type]
            continue
        sub, remap = entry[1], entry[2]  # type: ignore[assignment]
        # Random split into a connected part and the (possibly disconnected)
        # remainder; remainder components are pushed separately.
        k = rng.randint(1, len(edges) - 1)
        local_part = random_connected_edge_subset(sub, k, rng)
        inverse = {new: old for old, new in remap.items()}
        part = sorted(edge_key(inverse[u], inverse[v]) for u, v in local_part)
        rest = sorted(set(edges) - set(part))
        stack.append(part)
        if rest:
            stack.extend(_edge_components(rest))
    pieces.sort(key=lambda p: (-p.size, p.edges))
    return Partition(pieces)


@dataclass
class PartitionRun:
    """The outcome of running ``RP(q)`` δ times."""

    best: Partition                       # TP_q — the minimum partition found
    feature_subtrees: Dict[str, QueryPiece]  # SF_q keyed by canonical string
    attempts: int

    @property
    def sfq_size(self) -> int:
        return len(self.feature_subtrees)


def run_partitions(
    query: LabeledGraph,
    is_feature: Callable[[str], bool],
    delta: int,
    rng: Optional[random.Random] = None,
) -> PartitionRun:
    """Execute ``RP(q)`` δ times; keep the minimum partition and pool SF_q.

    The paper sets δ = |q| ("relatively large"); callers may tune it.
    """
    if rng is None:
        rng = random.Random(0xC0FFEE)
    best: Optional[Partition] = None
    sfq: Dict[str, QueryPiece] = {}
    attempts = max(1, delta)
    cache: Dict[frozenset, _CacheEntry] = {}
    for _ in range(attempts):
        partition = random_partition(query, is_feature, rng, cache)
        for piece in partition.pieces:
            sfq.setdefault(piece.key, piece)
        if best is None or partition.size < best.size:
            best = partition
    assert best is not None
    return PartitionRun(best=best, feature_subtrees=sfq, attempts=attempts)
