"""Per-query deadlines and work budgets — graceful degradation layer.

Verification is an NP-complete subgraph-isomorphism search (Section 5.3),
so a single adversarial query can otherwise hold the engine's read lock
unboundedly; because the RW lock is writer-preferring, one runaway query
plus one waiting writer would freeze the whole engine.  This module
bounds that tail: a :class:`QueryBudget` declares a wall-clock deadline
and/or per-stage work caps, and a :class:`CancellationToken` carries
those bounds through the pipeline — ``TreePiIndex.plan`` → center
pruning → ``verify_candidate`` → the monomorphism enumerator — each of
which checks the shared token at bounded intervals and unwinds cleanly
(:class:`~repro.exceptions.BudgetExceeded`) instead of running forever.

The contract is the one succinct-filter systems rely on: **filters may
loosen, answers never change.**  Expiry during *pruning* keeps the
remaining candidates (a superset is sound); expiry during *verification*
moves the still-unverified candidates into ``QueryResult.unresolved``
and flags the result ``complete=False``.  Everything actually reported
in ``matches`` was exactly verified, so

    degraded.matches  ⊆  exact answer  ⊆  degraded.matches ∪ unresolved

always holds.  Degraded results are never cached; retrying with a fresh
budget (or none) recomputes them exactly.

Budget semantics (aligned with ``center_prune``'s per-graph budget):

* ``None`` for any field means *unbounded* — an all-``None`` budget is a
  no-op and :meth:`QueryBudget.start` returns no token at all, keeping
  the unbudgeted hot path byte-identical to the pre-budget code.
* ``0`` means *no work allowed*: a zero deadline is already expired, a
  zero verify budget refuses every verification step.  Exhaustion is
  always explicit — it produces a degraded result, never a silent one.
* Negative values are configuration errors.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import BudgetExceeded, ConfigError


@dataclass(frozen=True)
class QueryBudget:
    """Resource bounds for one ``query()`` / ``query_batch()`` call.

    Parameters
    ----------
    deadline_ms:
        Wall-clock deadline in milliseconds, measured from
        :meth:`start`.  Applies to the whole call: a batch shares one
        clock, and stragglers it could not finish are flagged in their
        own results and can be retried individually with a fresh budget.
    verify_steps:
        Cap on verification work units (matcher vertex expansions,
        anchored-assignment trials and piece-embedding extensions) summed
        across the call — the machine-independent twin of the deadline.
    prune_checks:
        Override for the per-graph center-prune distance-check budget
        (defaults to ``TreePiConfig.center_prune_budget`` when unset).
        Same semantics as that knob: exhaustion *keeps* the graph.
    """

    deadline_ms: Optional[float] = None
    verify_steps: Optional[int] = None
    prune_checks: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("deadline_ms", "verify_steps", "prune_checks"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ConfigError(
                    f"QueryBudget.{name} must be >= 0 or None, got {value}"
                )

    @property
    def unbounded(self) -> bool:
        """True when this budget constrains nothing (no token is issued)."""
        return self.deadline_ms is None and self.verify_steps is None

    def start(self) -> Optional["CancellationToken"]:
        """Begin the clock: returns a token, or ``None`` for a no-op budget.

        ``prune_checks`` alone never issues a token — it is a pure
        parameter override with no cross-stage state to share.
        """
        if self.unbounded:
            return None
        deadline = None
        if self.deadline_ms is not None:
            deadline = time.perf_counter() + self.deadline_ms / 1000.0
        return CancellationToken(
            deadline=deadline, verify_steps=self.verify_steps
        )


class CancellationToken:
    """Shared cancellation state for one budgeted call, safe across threads.

    One token is created per ``query()``/``query_batch()`` call and
    handed to every pipeline stage — including verification workers on
    the engine's thread pool, so the state is cross-thread by design:

    * ``_deadline`` / ``_verify_cap`` are immutable after construction;
    * ``_expired`` is a :class:`threading.Event` (its own internal lock);
    * ``_charged`` / ``_reason`` are mutated only under ``_lock``.

    Hot loops batch their accounting: they keep a thread-local step
    counter and call :meth:`charge` every ``CHECK_INTERVAL`` steps, so
    the shared counter sees one locked update per interval rather than
    one per step (the deadline is therefore observed with at most
    ``CHECK_INTERVAL`` steps of slack — "bounded intervals", not exact).
    """

    #: How many work steps callers may run between token checks.
    CHECK_INTERVAL = 64

    def __init__(
        self,
        deadline: Optional[float] = None,
        verify_steps: Optional[int] = None,
    ) -> None:
        self._deadline = deadline
        self._verify_cap = verify_steps
        self._lock = threading.Lock()
        self._charged = 0
        self._reason: Optional[str] = None
        self._expired = threading.Event()

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def expired(self) -> bool:
        """Has the budget run out?  (Event read; safe from any thread.)"""
        return self._expired.is_set()

    @property
    def reason(self) -> Optional[str]:
        """Why the token expired (``"deadline"`` / ``"verify-budget"`` /
        an explicit :meth:`cancel` reason), or ``None`` while live."""
        with self._lock:
            return self._reason

    @property
    def work_charged(self) -> int:
        """Verification work units accounted so far."""
        with self._lock:
            return self._charged

    def cancel(self, reason: str = "cancelled") -> None:
        """Expire the token explicitly (first reason wins)."""
        with self._lock:
            if self._reason is None:
                self._reason = reason
        self._expired.set()

    def expired_now(self) -> bool:
        """Like :attr:`expired`, but also evaluates the deadline clock.

        Non-raising — for stages like center pruning that degrade by
        *keeping* work rather than unwinding (sound either way).
        """
        if self._expired.is_set():
            return True
        if self._deadline is not None and time.perf_counter() > self._deadline:
            self.cancel("deadline")
            return True
        return False

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------
    def poll(self) -> None:
        """Raise :class:`BudgetExceeded` if the budget has run out.

        Cheap enough for per-candidate / per-recursion granularity: one
        event read plus one clock read when a deadline is set.
        """
        if self._expired.is_set():
            raise BudgetExceeded(self.reason or "cancelled")
        if self._deadline is not None and time.perf_counter() > self._deadline:
            self.cancel("deadline")
            raise BudgetExceeded("deadline")

    def charge(self, steps: int) -> None:
        """Account ``steps`` work units, then :meth:`poll`.

        Callers batch: accumulate up to :data:`CHECK_INTERVAL` steps
        locally, then charge them in one locked update.
        """
        over = False
        with self._lock:
            self._charged += steps
            if self._verify_cap is not None and self._charged > self._verify_cap:
                over = True
        if over:
            self.cancel("verify-budget")
        self.poll()

    def flush(self, steps: int) -> None:
        """Account ``steps`` work units *without* raising.

        Terminal accounting for batching loops: a search that exits (or
        unwinds) mid-interval still performed its sub-interval remainder,
        so the enumerator flushes it from a ``finally`` to keep
        :attr:`work_charged` exact.  Crossing the cap here still expires
        the token — the *next* checkpoint anywhere on the shared token
        raises — but the flush itself never does: the work is already
        done, and raising out of a normal completion would wrongly turn
        an exactly-resolved answer into a degraded one.
        """
        if steps <= 0:
            return
        over = False
        with self._lock:
            self._charged += steps
            if self._verify_cap is not None and self._charged > self._verify_cap:
                over = True
        if over:
            self.cancel("verify-budget")
