"""TreePi core: features, partitioning, filtering, pruning, verification."""

from repro.core.budget import CancellationToken, QueryBudget
from repro.core.center_prune import (
    CenterConstraintProblem,
    PruneDecision,
    PruneReport,
    center_assignments,
    center_prune,
    check_center_constraints,
    satisfies_center_constraints,
)
from repro.core.crf import (
    canonical_reconstruction_form,
    overlap_signature,
    union_graph,
)
from repro.core.engine import QueryEngine, query_cache_key
from repro.core.feature import CenterSet, FeatureTree
from repro.core.filtering import FilterOutcome, filter_candidates
from repro.core.partition import (
    Partition,
    PartitionRun,
    QueryPiece,
    random_partition,
    run_partitions,
)
from repro.core.statistics import EngineStats, IndexStats, QueryResult
from repro.core.treepi import QueryPlan, TreePiConfig, TreePiIndex
from repro.core.bptree import BPlusTree
from repro.core.trie import StringTrie
from repro.core.verification import VerificationStats, verify_candidate

__all__ = [
    "CancellationToken",
    "QueryBudget",
    "CenterConstraintProblem",
    "PruneDecision",
    "PruneReport",
    "center_assignments",
    "center_prune",
    "check_center_constraints",
    "satisfies_center_constraints",
    "canonical_reconstruction_form",
    "overlap_signature",
    "union_graph",
    "CenterSet",
    "FeatureTree",
    "FilterOutcome",
    "filter_candidates",
    "Partition",
    "PartitionRun",
    "QueryPiece",
    "random_partition",
    "run_partitions",
    "EngineStats",
    "IndexStats",
    "QueryEngine",
    "QueryPlan",
    "QueryResult",
    "TreePiConfig",
    "TreePiIndex",
    "query_cache_key",
    "StringTrie",
    "BPlusTree",
    "VerificationStats",
    "verify_candidate",
]
