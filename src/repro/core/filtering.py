"""Filtering by support-set intersection (Section 5.2.1, Algorithm 1).

``P_q = ⋂_{t ∈ SF_q ∩ T_D} D_t`` — a graph that misses any feature
subtree of the query cannot contain the query.  Support sets are
intersected smallest-first with an early exit on empty, and the paper's
redundancy note (skip feature subtrees contained in an already-processed
feature) is subsumed: intersecting a superset support changes nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.core.feature import FeatureTree
from repro.core.partition import QueryPiece


@dataclass
class FilterOutcome:
    """The filtered set P_q plus which pieces actually contributed."""

    candidates: FrozenSet[int]
    used_features: List[FeatureTree]
    missing_key: Optional[str] = None  # a piece key absent from the index

    @property
    def definitely_empty(self) -> bool:
        """True when filtering alone proves the query has no matches."""
        return self.missing_key is not None or not self.candidates


def filter_candidates(
    universe: Iterable[int],
    pieces: Iterable[QueryPiece],
    lookup: Dict[str, FeatureTree],
    extra_keys: Iterable[str] = (),
) -> FilterOutcome:
    """Algorithm 1 over the feature subtree set ``SF_q``.

    ``universe`` is the full database id set (the ``P_q ← D`` initializer).
    A piece whose canonical string the index does not know proves emptiness:
    partitioning only terminates on feature trees or single edges, and a
    single edge missing from the index occurs in no database graph.

    ``extra_keys`` are additional query-subtree canonical strings (e.g. the
    small-subtree augmentation); ones the index does not know are silently
    skipped — they may simply have been γ-shrunk away.
    """
    features: List[FeatureTree] = []
    for piece in pieces:
        feature = lookup.get(piece.key)
        if feature is None:
            return FilterOutcome(
                candidates=frozenset(), used_features=[], missing_key=piece.key
            )
        features.append(feature)
    seen = {f.key for f in features}
    for key in extra_keys:
        feature = lookup.get(key)
        if feature is not None and key not in seen:
            seen.add(key)
            features.append(feature)

    features.sort(key=lambda f: f.support)
    result: Set[int] = set(universe)
    used: List[FeatureTree] = []
    for feature in features:
        result &= feature.support_set()
        used.append(feature)
        if not result:
            break
    return FilterOutcome(candidates=frozenset(result), used_features=used)
