"""Filtering by support-set intersection (Section 5.2.1, Algorithm 1).

``P_q = ⋂_{t ∈ SF_q ∩ T_D} D_t`` — a graph that misses any feature
subtree of the query cannot contain the query.  Support posting lists
are intersected smallest-first (:meth:`PostingList.intersect_many`'s
adaptive merge/gallop) with an early exit on empty, and the paper's
redundancy note (skip feature subtrees contained in an already-processed
feature) is subsumed: intersecting a superset support changes nothing.

The intersection is **seeded from the smallest support set**, not from a
copy of the database universe: the old ``set(universe)`` initializer
cost O(|D|) per query even when ``SF_q`` pinned the candidates to a
handful of graphs.  The universe is only materialized when no feature
applies; otherwise it participates as a constraint on the (already
small) intersection result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Union

from repro.analysis.flow import hot_path
from repro.core.feature import FeatureTree
from repro.core.partition import QueryPiece
from repro.storage import PostingList

#: The ``P_q ← D`` initializer: either a posting list/set with cheap
#: membership, or any iterable of graph ids (materialized only if needed).
Universe = Union[PostingList, Iterable[int]]


@dataclass
class FilterOutcome:
    """The filtered set P_q plus which pieces actually contributed."""

    candidates: FrozenSet[int]
    used_features: List[FeatureTree]
    missing_key: Optional[str] = None  # a piece key absent from the index

    @property
    def definitely_empty(self) -> bool:
        """True when filtering alone proves the query has no matches."""
        return self.missing_key is not None or not self.candidates

    def posting(self) -> PostingList:
        """The candidate set as a posting list."""
        return PostingList(self.candidates)


def _constrain(result: PostingList, universe: Universe) -> FrozenSet[int]:
    """Intersect a (small) filter result with the universe initializer.

    The universe bounds ``P_q`` from above (callers may pass a stage-1
    pre-filtered subset rather than all of ``D``), so it must still be
    applied — but via O(|result|) membership probes or a posting-list
    merge, never by copying the universe.
    """
    if isinstance(universe, PostingList):
        return result.intersect(universe).to_frozenset()
    if isinstance(universe, (set, frozenset, range)):
        return frozenset(gid for gid in result if gid in universe)
    return result.intersect(PostingList(universe)).to_frozenset()


@hot_path
def filter_candidates(
    universe: Universe,
    pieces: Iterable[QueryPiece],
    lookup: Dict[str, FeatureTree],
    extra_keys: Iterable[str] = (),
) -> FilterOutcome:
    """Algorithm 1 over the feature subtree set ``SF_q``.

    ``universe`` is the ``P_q ← D`` initializer — the full database id
    set, or an already-narrowed subset (e.g. the stage-1 augmentation
    filter result as a :class:`PostingList`).
    A piece whose canonical string the index does not know proves emptiness:
    partitioning only terminates on feature trees or single edges, and a
    single edge missing from the index occurs in no database graph.

    ``extra_keys`` are additional query-subtree canonical strings (e.g. the
    small-subtree augmentation); ones the index does not know are silently
    skipped — they may simply have been γ-shrunk away.
    """
    features: List[FeatureTree] = []
    for piece in pieces:
        feature = lookup.get(piece.key)
        if feature is None:
            return FilterOutcome(
                candidates=frozenset(), used_features=[], missing_key=piece.key
            )
        features.append(feature)
    seen = {f.key for f in features}
    for key in extra_keys:
        feature = lookup.get(key)
        if feature is not None and key not in seen:
            seen.add(key)
            features.append(feature)

    if not features:
        if isinstance(universe, PostingList):
            return FilterOutcome(
                candidates=universe.to_frozenset(), used_features=[]
            )
        return FilterOutcome(candidates=frozenset(universe), used_features=[])

    features.sort(key=lambda f: f.support)
    result = features[0].support_posting()
    used: List[FeatureTree] = [features[0]]
    for feature in features[1:]:
        if not result:
            break
        result = result.intersect(feature.support_posting())
        used.append(feature)
    return FilterOutcome(
        candidates=_constrain(result, universe), used_features=used
    )
