"""Reconstruction-based subgraph isomorphism (Section 5.3, Algorithm 3).

Given a candidate graph ``g`` that survived filtering and center pruning,
verification decides ``q ⊆ g`` by *reconstructing* the query from its
partition pieces instead of running a blind matcher.  Pieces are joined
one at a time in a connectivity-greedy order; for the current piece the
search

1. picks a recorded **center location** consistent with the Center
   Distance Constraints against every already-placed piece (Algorithm 2's
   ``TP'_q`` enumeration, interleaved rather than materialized up front),
2. retrieves the piece's embeddings **anchored at that center** and seeded
   with the bindings of already-mapped shared query vertices (the paper's
   "depth first search ... rooted in the stored center vertices"),
3. extends the partial query mapping, rejecting vertex collisions, and
   recurses.

Failed partial states are memoized by ``(piece position, boundary
bindings, used vertices)`` — the canonical-reconstruction-form idea
(Section 5.3.1) specialized to anchored joins.  The key is exact: future
pieces only interact with a partial state through the bindings of query
vertices they touch (the boundary) and through injectivity (the used
set), so two states agreeing on both have identical completions.

Soundness: a successful reconstruction is literally an embedding of ``q``.
Completeness: any embedding of ``q`` restricts to center-anchored piece
embeddings whose centers are recorded in the index and satisfy every
distance constraint, so the search space always contains it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.flow import hot_path
from repro.core.budget import CancellationToken
from repro.core.center_prune import CenterConstraintProblem
from repro.graphs.distances import DistanceOracle
from repro.graphs.graph import LabeledGraph
from repro.graphs.isomorphism import subgraph_monomorphisms
from repro.graphs.matcher_index import pair_subsumed
from repro.trees.center import Center


@dataclass
class VerificationStats:
    """Work counters for one or more verification calls."""

    assignments_tried: int = 0            # center choices explored
    piece_embeddings_enumerated: int = 0  # anchored embeddings expanded
    memo_hits: int = 0

    def merge(self, other: "VerificationStats") -> None:
        """Fold another counter set into this one (parallel verification)."""
        self.assignments_tried += other.assignments_tried
        self.piece_embeddings_enumerated += other.piece_embeddings_enumerated
        self.memo_hits += other.memo_hits


def _anchor_seeds(piece_center: Center, assigned: Center) -> List[Dict[int, int]]:
    """Seed mappings pinning the piece's center onto the assigned location.

    Vertex centers give one seed; edge centers give both orientations.
    """
    if len(piece_center) == 1:
        return [{piece_center[0]: assigned[0]}]
    a, b = piece_center
    x, y = assigned
    return [{a: x, b: y}, {a: y, b: x}]


def _piece_order(
    problem: CenterConstraintProblem,
    location_lists: List[List[Center]],
) -> List[int]:
    """Piece order: scarcest-first start, then connectivity-greedy.

    The first piece has no overlap seeds, so its branching factor is the
    number of recorded centers — start from the piece with the fewest.
    Subsequent pieces maximize overlap with the covered region (strong
    seeds make their anchored searches nearly deterministic), breaking
    ties toward larger pieces.
    """
    pieces = problem.pieces
    m = len(pieces)
    remaining = set(range(m))
    vertex_sets = [set(p.to_query.values()) for p in pieces]
    order: List[int] = []
    covered: Set[int] = set()
    while remaining:
        if not order:
            best = min(
                remaining, key=lambda i: (len(location_lists[i]), -pieces[i].size, i)
            )
        else:
            best = max(
                remaining,
                key=lambda i: (len(vertex_sets[i] & covered), pieces[i].size, -i),
            )
        order.append(best)
        covered |= vertex_sets[best]
        remaining.discard(best)
    return order


@hot_path
def verify_candidate(
    query: LabeledGraph,
    problem: CenterConstraintProblem,
    graph: LabeledGraph,
    graph_id: int,
    stats: Optional[VerificationStats] = None,
    oracle: Optional[DistanceOracle] = None,
    token: Optional[CancellationToken] = None,
    prefilter: bool = True,
) -> bool:
    """Algorithm 3: is ``q ⊆ g``, reconstructing from anchored pieces?

    ``oracle`` optionally reuses a distance oracle (and its cached BFS
    levels) from the center-pruning pass or from previous queries.

    ``token`` makes the reconstruction cooperative: the ``search``
    recursion polls it on entry, each anchored-assignment trial charges
    one work unit, and the piece-embedding enumerator charges per vertex
    expansion, so an expired budget unwinds the whole recursion with
    :class:`~repro.exceptions.BudgetExceeded` within a bounded number of
    steps.  The caller treats such a candidate as *unresolved* — never
    as a match or a non-match.

    ``prefilter`` enables the cached label-pair refutation (a query
    whose label-pair incidence multiset exceeds the graph's cannot embed
    — an exact ``False``, no reconstruction needed) and is forwarded to
    the piece-embedding matcher.
    """
    if stats is None:
        stats = VerificationStats()
    if token is not None:
        token.poll()
    if prefilter and not pair_subsumed(
        query.matcher_index(), graph.matcher_index()
    ):
        return False
    pieces = problem.pieces
    m = len(pieces)

    location_lists: List[List[Center]] = []
    for feature in problem.features:
        centers = feature.centers_in(graph_id)
        if not centers:
            return False
        location_lists.append(sorted(centers))

    order = _piece_order(problem, location_lists)
    if oracle is None:
        oracle = DistanceOracle(graph)

    # Query vertices still relevant from position pos onward.
    future_vertices: List[Set[int]] = [set() for _ in range(m + 1)]
    for pos in range(m - 1, -1, -1):
        future_vertices[pos] = future_vertices[pos + 1] | set(
            pieces[order[pos]].to_query.values()
        )

    failed: Set[Tuple] = set()

    def search(
        pos: int,
        qmap: Dict[int, int],
        used: frozenset,
        placed_centers: List[Tuple[int, Center]],  # (piece index, center in g)
    ) -> bool:
        if token is not None:
            token.poll()
        if pos == m:
            return True
        boundary = tuple(
            sorted((qv, gv) for qv, gv in qmap.items() if qv in future_vertices[pos])
        )
        memo_key = (pos, boundary, used)
        if memo_key in failed:
            stats.memo_hits += 1
            return False

        i = order[pos]
        piece = pieces[i]
        to_query = piece.to_query
        overlap_seed = {
            pv: qmap[qv] for pv, qv in to_query.items() if qv in qmap
        }

        # Fully-seeded shortcut: every piece vertex is already bound, so
        # the piece embeds iff its edges exist under the binding — no
        # center enumeration needed (a real embedding trivially satisfies
        # every distance constraint).
        if len(overlap_seed) == piece.tree.num_vertices:
            for u, v, lbl in piece.tree.edges():
                gu, gv = overlap_seed[u], overlap_seed[v]
                if not graph.has_edge(gu, gv) or graph.edge_label(gu, gv) != lbl:
                    failed.add(memo_key)
                    return False
            center_image = tuple(
                sorted(overlap_seed[v] for v in piece.center)
            )
            placed_centers.append((i, center_image))
            matched = search(pos + 1, qmap, used, placed_centers)
            placed_centers.pop()
            if matched:
                return True
            failed.add(memo_key)
            return False

        for center in location_lists[i]:
            ok = True
            for j, placed in placed_centers:
                if oracle.set_distance(center, placed) > problem.distances[i][j]:
                    ok = False
                    break
            if not ok:
                continue
            stats.assignments_tried += 1
            if token is not None:
                token.charge(1)
            for anchor in _anchor_seeds(piece.center, center):
                seed = dict(overlap_seed)
                conflict = False
                # Conflict scan over every entry — order-insensitive.
                for pv, gv in anchor.items():  # noqa: REPRO101 - conflict scan over every entry; order-free
                    if seed.get(pv, gv) != gv:
                        conflict = True
                        break
                    seed[pv] = gv
                if conflict:
                    continue
                for emb in subgraph_monomorphisms(
                    piece.tree, graph, seed=seed, token=token, prefilter=prefilter
                ):
                    stats.piece_embeddings_enumerated += 1
                    extended = dict(qmap)
                    new_used = set(used)
                    good = True
                    # Consistency scan over every entry — order-insensitive.
                    for pv, gv in emb.items():  # noqa: REPRO101 - consistency scan over every entry; order-free
                        qv = to_query[pv]
                        known = extended.get(qv)
                        if known is None:
                            if gv in new_used:
                                good = False  # distinct query vertices collided
                                break
                            extended[qv] = gv
                            new_used.add(gv)
                        elif known != gv:
                            good = False
                            break
                    if good:
                        placed_centers.append((i, center))
                        matched = search(
                            pos + 1, extended, frozenset(new_used), placed_centers
                        )
                        placed_centers.pop()
                        if matched:
                            return True
        failed.add(memo_key)
        return False

    return search(0, {}, frozenset(), [])
