"""Feature trees: the index entries of TreePi (Section 4.2).

A :class:`FeatureTree` is a selected frequent subtree together with

* its canonical string (the lookup key),
* its center in pattern coordinates (a vertex or an edge, Theorem 1),
* its support set, and
* for every supporting graph, the set of **center locations** — the
  positions at which embedded copies of the tree are centered.  This is
  the paper's per-vertex/per-edge bit array of Section 4.2.1, stored
  columnar in a :class:`~repro.storage.occurrences.OccurrenceStore`, and
  it is the location information that powers both Center Distance
  pruning and reconstruction-based verification.

The support set doubles as the feature's posting list: filtering
(Algorithm 1) intersects :meth:`FeatureTree.support_posting` snapshots
directly, with no per-query frozenset materialization.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Mapping, Optional, Union

from repro.graphs.graph import LabeledGraph
from repro.mining.patterns import MinedPattern
from repro.storage import OccurrenceStore, PostingList
from repro.trees.center import Center, tree_center

if TYPE_CHECKING:
    from repro.storage.segments import LsmStore

CenterSet = FrozenSet[Center]

#: A feature's occurrence backing: the heap columnar store, or the
#: merged LSM view over memory-mapped segment layers.  Both expose the
#: identical read/maintenance surface used below.
StoreLike = Union[OccurrenceStore, "LsmStore"]


class FeatureTree:
    """One indexed feature tree with its exact occurrence locations."""

    __slots__ = ("feature_id", "tree", "key", "center", "store")

    store: StoreLike

    def __init__(
        self,
        feature_id: int,
        tree: LabeledGraph,
        key: str,
        center: Center,
        locations: Optional[Mapping[int, Iterable[Center]]] = None,
        store: Optional[StoreLike] = None,
    ) -> None:
        self.feature_id = feature_id
        self.tree = tree
        self.key = key
        self.center = center
        if store is not None:
            if store.arity != len(center):
                raise ValueError(
                    f"store arity {store.arity} does not match "
                    f"center arity {len(center)}"
                )
            self.store = store
        else:
            self.store = OccurrenceStore.from_mapping(
                len(center), locations or {}
            )

    def __repr__(self) -> str:
        return (
            f"<FeatureTree id={self.feature_id} size={self.size} "
            f"support={self.support} key={self.key[:40]!r}>"
        )

    @property
    def size(self) -> int:
        """Edge count of the feature tree."""
        return self.tree.num_edges

    @property
    def is_edge_centered(self) -> bool:
        return len(self.center) == 2

    @property
    def support(self) -> int:
        """``|D_t|`` — the number of graphs containing this tree."""
        return len(self.store)

    @property
    def locations(self) -> Dict[int, CenterSet]:
        """The classic dict-of-frozensets view, materialized on demand.

        Compatibility/introspection surface only — hot paths read the
        columnar ``store`` directly via :meth:`support_posting`,
        :meth:`centers_in`, and :meth:`support_set`.
        """
        return self.store.to_mapping()

    def support_set(self) -> FrozenSet[int]:
        return self.store.graph_ids().to_frozenset()

    def support_posting(self) -> PostingList:
        """The support set as a zero-copy sorted posting-list snapshot."""
        return self.store.graph_ids()

    def centers_in(self, graph_id: int) -> CenterSet:
        """Center locations of this feature inside one graph (possibly empty)."""
        return self.store.centers_in(graph_id)

    def total_locations(self) -> int:
        return self.store.total_centers()

    @classmethod
    def from_mined_pattern(cls, feature_id: int, pattern: MinedPattern) -> "FeatureTree":
        """Derive a feature from a mined pattern's stored embeddings.

        The center of each embedded copy is the image of the pattern center
        (isomorphisms preserve centers), so locations fall straight out of
        the embedding tuples with no extra isomorphism work.
        """
        center = tree_center(pattern.graph)
        locations: Dict[int, CenterSet] = {}
        for gid, embeddings in sorted(pattern.embeddings.items()):
            locations[gid] = frozenset(
                tuple(sorted(emb[v] for v in center)) for emb in embeddings
            )
        return cls(
            feature_id=feature_id,
            tree=pattern.graph,
            key=pattern.key,
            center=center,
            locations=locations,
        )

    def add_occurrences(self, graph_id: int, centers: Iterable[Center]) -> None:
        """Insert-maintenance hook: record occurrences in a new graph."""
        self.store.add_graph(graph_id, centers)

    def remove_graph(self, graph_id: int) -> bool:
        """Delete-maintenance hook: purge a graph; True if it was present."""
        return self.store.remove_graph(graph_id)
