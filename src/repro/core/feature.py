"""Feature trees: the index entries of TreePi (Section 4.2).

A :class:`FeatureTree` is a selected frequent subtree together with

* its canonical string (the lookup key),
* its center in pattern coordinates (a vertex or an edge, Theorem 1),
* its support set, and
* for every supporting graph, the set of **center locations** — the
  positions at which embedded copies of the tree are centered.  This is
  the paper's per-vertex/per-edge bit array of Section 4.2.1, stored
  sparsely, and it is the location information that powers both Center
  Distance pruning and reconstruction-based verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable

from repro.graphs.graph import LabeledGraph
from repro.mining.patterns import MinedPattern
from repro.trees.center import Center, tree_center

CenterSet = FrozenSet[Center]


@dataclass
class FeatureTree:
    """One indexed feature tree with its exact occurrence locations."""

    feature_id: int
    tree: LabeledGraph
    key: str                      # canonical string
    center: Center                # center in the tree's own coordinates
    locations: Dict[int, CenterSet] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Edge count of the feature tree."""
        return self.tree.num_edges

    @property
    def is_edge_centered(self) -> bool:
        return len(self.center) == 2

    @property
    def support(self) -> int:
        """``|D_t|`` — the number of graphs containing this tree."""
        return len(self.locations)

    def support_set(self) -> FrozenSet[int]:
        return frozenset(self.locations)

    def centers_in(self, graph_id: int) -> CenterSet:
        """Center locations of this feature inside one graph (possibly empty)."""
        return self.locations.get(graph_id, frozenset())

    def total_locations(self) -> int:
        return sum(len(c) for c in self.locations.values())

    @classmethod
    def from_mined_pattern(cls, feature_id: int, pattern: MinedPattern) -> "FeatureTree":
        """Derive a feature from a mined pattern's stored embeddings.

        The center of each embedded copy is the image of the pattern center
        (isomorphisms preserve centers), so locations fall straight out of
        the embedding tuples with no extra isomorphism work.
        """
        center = tree_center(pattern.graph)
        locations: Dict[int, CenterSet] = {}
        for gid, embeddings in sorted(pattern.embeddings.items()):
            locations[gid] = frozenset(
                tuple(sorted(emb[v] for v in center)) for emb in embeddings
            )
        return cls(
            feature_id=feature_id,
            tree=pattern.graph,
            key=pattern.key,
            center=center,
            locations=locations,
        )

    def add_occurrences(self, graph_id: int, centers: Iterable[Center]) -> None:
        """Insert-maintenance hook: record occurrences in a new graph."""
        centers = frozenset(centers)
        if centers:
            existing = self.locations.get(graph_id, frozenset())
            self.locations[graph_id] = existing | centers

    def remove_graph(self, graph_id: int) -> bool:
        """Delete-maintenance hook: purge a graph; True if it was present."""
        return self.locations.pop(graph_id, None) is not None
