"""Center Distance Constraint pruning (Section 5.2.2, Algorithm 2).

If ``q ⊆ g`` via an embedding ``f``, every piece of a Feature-Tree-
Partition of ``q`` embeds into ``g`` centered at ``f(center)``, and since
embeddings never stretch distances, the center-to-center distance of any
two pieces inside ``g`` is **at most** their distance inside ``q``:

    d_q(center(tp_i), center(tp_j)) >= d_g(center(tp'_i), center(tp'_j)).

A candidate graph survives only if some assignment of recorded center
locations — one per piece of ``TP_q`` — satisfies every pairwise
constraint.  This is the paper's novelty: arbitrary subgraph features
have no unique center, so gIndex cannot prune this way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.feature import FeatureTree
from repro.core.partition import Partition, QueryPiece
from repro.graphs.distances import DistanceOracle
from repro.graphs.graph import LabeledGraph
from repro.trees.center import Center


@dataclass
class CenterConstraintProblem:
    """The query-side half of the constraint check, computed once per query.

    ``distances[i][j]`` is the center distance between pieces ``i`` and
    ``j`` measured inside the query graph.
    """

    pieces: List[QueryPiece]
    features: List[FeatureTree]
    distances: List[List[float]]

    @classmethod
    def from_partition(
        cls,
        query: LabeledGraph,
        partition: Partition,
        lookup: Dict[str, FeatureTree],
    ) -> "CenterConstraintProblem":
        pieces = list(partition.pieces)
        features = [lookup[p.key] for p in pieces]
        oracle = DistanceOracle(query)
        m = len(pieces)
        distances = [[0.0] * m for _ in range(m)]
        for i in range(m):
            for j in range(i + 1, m):
                d = oracle.set_distance(
                    pieces[i].center_in_query, pieces[j].center_in_query
                )
                distances[i][j] = distances[j][i] = d
        return cls(pieces=pieces, features=features, distances=distances)


def center_assignments(
    problem: CenterConstraintProblem,
    graph: LabeledGraph,
    graph_id: int,
    oracle: Optional[DistanceOracle] = None,
) -> Iterator[Tuple[Center, ...]]:
    """Yield every assignment of recorded centers satisfying all constraints.

    Assignments follow the piece order of ``problem``; pieces with fewer
    recorded locations in this graph are *checked* first internally, but
    yielded tuples stay in piece order so verification can anchor each
    piece at its assigned center.
    """
    if oracle is None:
        oracle = DistanceOracle(graph)
    m = len(problem.pieces)
    location_lists: List[Sequence[Center]] = []
    for feature in problem.features:
        centers = feature.centers_in(graph_id)
        if not centers:
            return
        location_lists.append(sorted(centers))

    # Assign most-constrained pieces (fewest candidate centers) first.
    order = sorted(range(m), key=lambda i: len(location_lists[i]))
    assignment: List[Optional[Center]] = [None] * m

    def backtrack(pos: int) -> Iterator[Tuple[Center, ...]]:
        if pos == m:
            yield tuple(assignment)  # type: ignore[arg-type]
            return
        i = order[pos]
        for center in location_lists[i]:
            ok = True
            for prev in order[:pos]:
                bound = problem.distances[i][prev]
                if oracle.set_distance(center, assignment[prev]) > bound:
                    ok = False
                    break
            if ok:
                assignment[i] = center
                yield from backtrack(pos + 1)
                assignment[i] = None

    yield from backtrack(0)


def satisfies_center_constraints(
    problem: CenterConstraintProblem,
    graph: LabeledGraph,
    graph_id: int,
    oracle: Optional[DistanceOracle] = None,
    budget: Optional[int] = None,
) -> bool:
    """Algorithm 2's per-graph test: does any valid assignment exist?

    ``budget`` optionally caps the number of pairwise distance checks;
    when exhausted the graph is *kept* (pruning is a sound-to-skip
    optimization), bounding worst-case prune latency on graphs with huge
    center-assignment spaces.
    """
    if budget is None:
        for _ in center_assignments(problem, graph, graph_id, oracle):
            return True
        return False

    if oracle is None:
        oracle = DistanceOracle(graph)
    m = len(problem.pieces)
    location_lists: List[Sequence[Center]] = []
    for feature in problem.features:
        centers = feature.centers_in(graph_id)
        if not centers:
            return False
        location_lists.append(sorted(centers))
    order = sorted(range(m), key=lambda i: len(location_lists[i]))
    assignment: List[Optional[Center]] = [None] * m
    checks = 0

    def backtrack(pos: int) -> bool:
        nonlocal checks
        if pos == m:
            return True
        i = order[pos]
        for center in location_lists[i]:
            ok = True
            for prev in order[:pos]:
                checks += 1
                if checks > budget:
                    return True  # give up pruning: keep the graph
                if oracle.set_distance(center, assignment[prev]) > (
                    problem.distances[i][prev]
                ):
                    ok = False
                    break
            if ok:
                assignment[i] = center
                if backtrack(pos + 1):
                    return True
                assignment[i] = None
        # A zero-piece prefix exhausting means genuinely no assignment.
        return checks > budget

    return backtrack(0)


def center_prune(
    problem: CenterConstraintProblem,
    candidates: Sequence[int],
    graphs: Dict[int, LabeledGraph],
    oracles: Optional[Dict[int, DistanceOracle]] = None,
    budget_per_graph: Optional[int] = None,
) -> List[int]:
    """Algorithm 2: reduce the filtered set ``P_q`` to ``P'_q``.

    ``oracles`` optionally supplies/receives per-graph distance oracles so
    BFS levels persist across queries (the index owns this cache);
    ``budget_per_graph`` bounds per-graph pruning work (see
    :func:`satisfies_center_constraints`).
    """
    survivors: List[int] = []
    for gid in candidates:
        graph = graphs[gid]
        oracle = None
        if oracles is not None:
            oracle = oracles.get(gid)
            if oracle is None:
                oracle = DistanceOracle(graph)
                oracles[gid] = oracle
        if satisfies_center_constraints(
            problem, graph, gid, oracle, budget=budget_per_graph
        ):
            survivors.append(gid)
    return survivors
