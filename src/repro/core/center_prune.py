"""Center Distance Constraint pruning (Section 5.2.2, Algorithm 2).

If ``q ⊆ g`` via an embedding ``f``, every piece of a Feature-Tree-
Partition of ``q`` embeds into ``g`` centered at ``f(center)``, and since
embeddings never stretch distances, the center-to-center distance of any
two pieces inside ``g`` is **at most** their distance inside ``q``:

    d_q(center(tp_i), center(tp_j)) >= d_g(center(tp'_i), center(tp'_j)).

A candidate graph survives only if some assignment of recorded center
locations — one per piece of ``TP_q`` — satisfies every pairwise
constraint.  This is the paper's novelty: arbitrary subgraph features
have no unique center, so gIndex cannot prune this way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.flow import hot_path
from repro.core.budget import CancellationToken
from repro.core.feature import FeatureTree
from repro.exceptions import ConfigError
from repro.core.partition import Partition, QueryPiece
from repro.graphs.distances import DistanceOracle
from repro.graphs.graph import LabeledGraph
from repro.graphs.matcher_index import pair_subsumed
from repro.trees.center import Center


@dataclass
class CenterConstraintProblem:
    """The query-side half of the constraint check, computed once per query.

    ``distances[i][j]`` is the center distance between pieces ``i`` and
    ``j`` measured inside the query graph.
    """

    pieces: List[QueryPiece]
    features: List[FeatureTree]
    distances: List[List[float]]

    @classmethod
    def from_partition(
        cls,
        query: LabeledGraph,
        partition: Partition,
        lookup: Dict[str, FeatureTree],
    ) -> "CenterConstraintProblem":
        pieces = list(partition.pieces)
        features = [lookup[p.key] for p in pieces]
        oracle = DistanceOracle(query)
        m = len(pieces)
        distances = [[0.0] * m for _ in range(m)]
        for i in range(m):
            for j in range(i + 1, m):
                d = oracle.set_distance(
                    pieces[i].center_in_query, pieces[j].center_in_query
                )
                distances[i][j] = distances[j][i] = d
        return cls(pieces=pieces, features=features, distances=distances)


def center_assignments(
    problem: CenterConstraintProblem,
    graph: LabeledGraph,
    graph_id: int,
    oracle: Optional[DistanceOracle] = None,
) -> Iterator[Tuple[Center, ...]]:
    """Yield every assignment of recorded centers satisfying all constraints.

    Assignments follow the piece order of ``problem``; pieces with fewer
    recorded locations in this graph are *checked* first internally, but
    yielded tuples stay in piece order so verification can anchor each
    piece at its assigned center.
    """
    if oracle is None:
        oracle = DistanceOracle(graph)
    m = len(problem.pieces)
    location_lists: List[Sequence[Center]] = []
    for feature in problem.features:
        centers = feature.centers_in(graph_id)
        if not centers:
            return
        location_lists.append(sorted(centers))

    # Assign most-constrained pieces (fewest candidate centers) first.
    order = sorted(range(m), key=lambda i: len(location_lists[i]))
    assignment: List[Optional[Center]] = [None] * m

    def backtrack(pos: int) -> Iterator[Tuple[Center, ...]]:
        if pos == m:
            yield tuple(assignment)  # type: ignore[arg-type]
            return
        i = order[pos]
        earlier = order[:pos]
        for center in location_lists[i]:
            ok = True
            for prev in earlier:
                bound = problem.distances[i][prev]
                if oracle.set_distance(center, assignment[prev]) > bound:
                    ok = False
                    break
            if ok:
                assignment[i] = center
                yield from backtrack(pos + 1)
                assignment[i] = None

    yield from backtrack(0)


@dataclass(frozen=True)
class PruneDecision:
    """The explicit outcome of one per-graph center-constraint test.

    ``keep`` is the pruning decision (``True`` = the graph survives into
    ``P'_q``); ``exhausted`` records *why* a kept graph was kept: a
    refuted graph (``keep=False``) was proven to admit no assignment, a
    satisfied graph (``keep=True, exhausted=False``) was proven to admit
    one, and an exhausted graph (``keep=True, exhausted=True``) ran out
    of budget before either proof and is kept because giving up pruning
    is sound.  The pre-fix code collapsed the last two (and its terminal
    ``checks > budget`` return was unreachable), so callers could not
    tell a real survivor from a budget timeout.
    """

    keep: bool
    exhausted: bool = False
    checks: int = 0  # distance checks actually spent


@hot_path
def check_center_constraints(
    problem: CenterConstraintProblem,
    graph: LabeledGraph,
    graph_id: int,
    oracle: Optional[DistanceOracle] = None,
    budget: Optional[int] = None,
    token: Optional[CancellationToken] = None,
    query: Optional[LabeledGraph] = None,
) -> PruneDecision:
    """Algorithm 2's per-graph test, with an explicit three-way outcome.

    ``budget`` caps the number of pairwise distance checks (``None`` =
    unbounded; ``0`` = no checks allowed, so any graph that would need
    one is immediately *exhausted* and kept; negative values raise
    :class:`~repro.exceptions.ConfigError`).  ``token`` is the per-query
    cancellation token: an expired deadline behaves exactly like an
    exhausted budget — stop checking, keep the graph — so pruning never
    raises and never loses soundness.  A graph missing some feature
    outright is refuted for free, before any budget is spent.

    ``query`` (optional) enables the cached label-pair refutation: a
    query whose (vertex-label, edge-label, vertex-label) incidence
    multiset is not contained in the graph's cannot embed, so the graph
    is *refuted* — an exact proof, budget-free, before any distance
    check.  The survivor set only shrinks; answer sets are unchanged
    (filters tighten, answers never change).
    """
    if budget is not None and budget < 0:
        raise ConfigError(f"center-prune budget must be >= 0 or None, got {budget}")
    if query is not None and not pair_subsumed(
        query.matcher_index(), graph.matcher_index()
    ):
        return PruneDecision(keep=False)
    if oracle is None:
        oracle = DistanceOracle(graph)
    m = len(problem.pieces)
    location_lists: List[Sequence[Center]] = []
    for feature in problem.features:
        centers = feature.centers_in(graph_id)
        if not centers:
            return PruneDecision(keep=False)
        location_lists.append(sorted(centers))
    order = sorted(range(m), key=lambda i: len(location_lists[i]))
    assignment: List[Optional[Center]] = [None] * m
    checks = 0
    exhausted = False

    def out_of_budget() -> bool:
        nonlocal exhausted
        if budget is not None and checks >= budget:
            exhausted = True
        elif token is not None and token.expired_now():
            exhausted = True
        return exhausted

    def backtrack(pos: int) -> bool:
        """True = a full assignment exists *or* the budget ran out."""
        nonlocal checks
        if pos == m:
            return True
        i = order[pos]
        earlier = order[:pos]
        for center in location_lists[i]:
            ok = True
            for prev in earlier:
                if out_of_budget():
                    return True  # give up pruning: keep the graph
                checks += 1
                if oracle.set_distance(center, assignment[prev]) > (
                    problem.distances[i][prev]
                ):
                    ok = False
                    break
            if ok:
                assignment[i] = center
                if backtrack(pos + 1):
                    return True
                assignment[i] = None
        # Every center of this piece was refuted within budget.
        return False

    keep = backtrack(0)
    return PruneDecision(keep=keep, exhausted=exhausted, checks=checks)


def satisfies_center_constraints(
    problem: CenterConstraintProblem,
    graph: LabeledGraph,
    graph_id: int,
    oracle: Optional[DistanceOracle] = None,
    budget: Optional[int] = None,
) -> bool:
    """Algorithm 2's per-graph test: does any valid assignment exist?

    Boolean façade over :func:`check_center_constraints` — an exhausted
    budget answers ``True`` (the graph is kept; pruning is a sound-to-
    skip optimization).  Callers that need to distinguish a proven
    survivor from a budget timeout should use the richer form.
    """
    return check_center_constraints(
        problem, graph, graph_id, oracle, budget=budget
    ).keep


@dataclass
class PruneReport:
    """What Algorithm 2 did to one candidate set, exhaustion made visible.

    ``survivors`` is ``P'_q``; ``exhausted`` counts survivors kept only
    because their per-graph budget (or the query deadline) ran out
    before a proof either way, ``refuted`` counts graphs actually pruned,
    and ``skipped`` counts candidates never examined because the query
    deadline expired mid-prune (they are kept — a superset is sound).
    """

    survivors: List[int] = field(default_factory=list)
    exhausted: int = 0
    refuted: int = 0
    skipped: int = 0

    @property
    def degraded(self) -> bool:
        """Did any candidate dodge a full constraint check?"""
        return self.exhausted > 0 or self.skipped > 0


@hot_path
def center_prune(
    problem: CenterConstraintProblem,
    candidates: Sequence[int],
    graphs: Dict[int, LabeledGraph],
    oracles: Optional[Dict[int, DistanceOracle]] = None,
    budget_per_graph: Optional[int] = None,
    token: Optional[CancellationToken] = None,
    query: Optional[LabeledGraph] = None,
) -> PruneReport:
    """Algorithm 2: reduce the filtered set ``P_q`` to ``P'_q``.

    ``oracles`` optionally supplies/receives per-graph distance oracles so
    BFS levels persist across queries (the index owns this cache);
    ``budget_per_graph`` bounds per-graph pruning work and ``token``
    bounds the whole pass (see :func:`check_center_constraints`) — on
    deadline expiry the remaining candidates are kept unexamined, so a
    budgeted prune always returns a superset of the exact ``P'_q``.
    ``query`` (optional) adds the budget-free label-pair refutation per
    candidate (see :func:`check_center_constraints`).
    """
    report = PruneReport()
    for pos, gid in enumerate(candidates):
        if token is not None and token.expired_now():
            remaining = list(candidates[pos:])
            report.survivors.extend(remaining)
            report.skipped += len(remaining)
            break
        graph = graphs[gid]
        oracle = None
        if oracles is not None:
            oracle = oracles.get(gid)
            if oracle is None:
                oracle = DistanceOracle(graph)
                oracles[gid] = oracle
        decision = check_center_constraints(
            problem,
            graph,
            gid,
            oracle,
            budget=budget_per_graph,
            token=token,
            query=query,
        )
        if decision.keep:
            report.survivors.append(gid)
            if decision.exhausted:
                report.exhausted += 1
        else:
            report.refuted += 1
    return report
