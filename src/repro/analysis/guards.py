"""Lock-discipline declarations and the runtime lock-order tracker.

The static side of concurrency safety lives in
:mod:`repro.analysis.concurrency` (the REPRO2xx lint family); this module
is its runtime half:

* :func:`guarded_by` — a declaration decorator.  ``@guarded_by("_lock")``
  on a method states the caller must hold ``self._lock`` for the whole
  call.  The static analyzer reads the declaration (the method body is
  checked as if the lock were held); under ``REPRO_CONTRACTS=1`` the
  decorator also *enforces* it, raising :class:`ContractViolation` when
  the method is entered without the named lock held by the current
  thread.  When the instance has no attribute of that name the check is
  skipped — that is how :class:`~repro.core.treepi.TreePiIndex` methods
  stay usable standalone but become lock-checked once a
  :class:`~repro.core.engine.QueryEngine` attaches its lock.
* :class:`TrackedLock` — a mutex whose acquisitions feed the tracker, a
  drop-in for ``threading.Lock`` used as a context manager.
* The **lock-order tracker** — a process-wide record of the
  lock-acquisition graph.  Every tracked acquisition made while other
  tracked locks are held adds held→acquiring edges; an edge that closes a
  cycle is a potential deadlock and raises *before* the acquisition
  blocks.  Re-acquiring a non-reentrant lock already held by the same
  thread (guaranteed self-deadlock) is caught the same way.

Tracking is gated on :func:`repro.analysis.contracts.contracts_enabled`
so the hot path pays one predicate call when contracts are off.  Lock
names are class-level (``"QueryEngine._mutex"``), so the acquisition
graph expresses a *discipline* shared by every instance; the per-thread
held list additionally records object identity so :func:`guarded_by` can
check the exact instance's lock.
"""

from __future__ import annotations

import functools
import threading
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, TypeVar

from repro.analysis.contracts import ContractViolation, contracts_enabled

_F = TypeVar("_F", bound=Callable[..., Any])

#: Acquisition modes.  ``exclusive`` is a plain mutex; ``read``/``write``
#: are the two sides of a readers-writer lock.
_MODES = ("exclusive", "read", "write")


class _HeldLock:
    """One tracked acquisition on one thread's stack."""

    __slots__ = ("key", "name", "mode")

    def __init__(self, key: int, name: str, mode: str) -> None:
        self.key = key
        self.name = name
        self.mode = mode


def _mode_satisfies(held: str, required: str) -> bool:
    if required == "read":
        return True
    return held in ("exclusive", "write")


class _LockOrderTracker:
    """Per-thread held-lock stacks plus the global acquisition graph."""

    def __init__(self) -> None:
        self._local = threading.local()
        # name -> names acquired while it was held.  The graph (and its
        # guard) are meta-state: _graph_lock is deliberately untracked.
        self._graph: Dict[str, Set[str]] = {}
        self._graph_lock = threading.Lock()

    def _held(self) -> List[_HeldLock]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _path(self, source: str, target: str) -> Optional[List[str]]:
        """A source→target path in the acquisition graph, if one exists."""
        stack = [(source, [source])]
        seen = {source}
        while stack:
            node, path = stack.pop()
            if node == target:
                return path
            for succ in sorted(self._graph.get(node, ())):
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, path + [succ]))
        return None

    def acquiring(self, lock: object, name: str, mode: str) -> None:
        """Record (and vet) an acquisition *before* it blocks."""
        held = self._held()
        for entry in held:
            if entry.key == id(lock):
                raise ContractViolation(
                    f"lock-order contract: thread re-acquires non-reentrant "
                    f"lock {name!r} already held (mode={entry.mode}); "
                    "guaranteed self-deadlock"
                )
        with self._graph_lock:
            for entry in held:
                if entry.name != name:
                    self._graph.setdefault(entry.name, set()).add(name)
            for entry in held:
                if entry.name == name:
                    continue
                cycle = self._path(name, entry.name)
                if cycle is not None:
                    raise ContractViolation(
                        "lock-order contract: acquiring "
                        f"{name!r} while holding {entry.name!r} closes the "
                        f"cycle {' -> '.join(cycle + [name])}; potential "
                        "deadlock"
                    )
        held.append(_HeldLock(id(lock), name, mode))

    def released(self, lock: object) -> None:
        """Pop the most recent acquisition of ``lock`` (tolerant no-op)."""
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i].key == id(lock):
                del held[i]
                return

    def holds(self, lock: object, required: str = "exclusive") -> bool:
        for entry in self._held():
            if entry.key == id(lock) and _mode_satisfies(entry.mode, required):
                return True
        return False

    def edges(self) -> Dict[str, Tuple[str, ...]]:
        with self._graph_lock:
            return {
                name: tuple(sorted(succs))
                for name, succs in sorted(self._graph.items())
            }

    def reset(self) -> None:
        with self._graph_lock:
            self._graph.clear()


_TRACKER = _LockOrderTracker()


def note_acquire(lock: object, name: str, mode: str = "exclusive") -> None:
    """Hook for lock implementations: call just before blocking to acquire."""
    if contracts_enabled():
        _TRACKER.acquiring(lock, name, mode)


def note_release(lock: object) -> None:
    """Hook for lock implementations: call after releasing.

    Unconditional (not gated on :func:`contracts_enabled`) so toggling
    contracts inside a critical section cannot desynchronize the
    per-thread held stack; popping an untracked lock is a no-op.
    """
    _TRACKER.released(lock)


def lock_is_held(lock: object, mode: str = "exclusive") -> bool:
    """True when the calling thread holds ``lock`` at least at ``mode``."""
    return _TRACKER.holds(lock, mode)


def lock_order_edges() -> Dict[str, Tuple[str, ...]]:
    """Snapshot of the recorded acquisition graph (for tests/diagnostics)."""
    return _TRACKER.edges()


def reset_lock_order() -> None:
    """Forget the recorded acquisition graph (test isolation)."""
    _TRACKER.reset()


def guarded_by(lock_attr: str, mode: str = "exclusive") -> Callable[[_F], _F]:
    """Declare that a method runs with ``self.<lock_attr>`` held.

    The declaration is dual-use:

    * the REPRO2xx static analyzer treats the method body as executing
      with the named lock held at ``mode`` (see REPRO201);
    * under contracts, entering the method on a thread that does not hold
      the (tracked) lock raises :class:`ContractViolation`.

    ``mode`` is ``"exclusive"`` for plain mutexes, ``"read"``/``"write"``
    for the respective side of a readers-writer lock.  Instances without
    the attribute skip the runtime check entirely, so guarded classes
    remain usable outside a locking harness.
    """
    if mode not in _MODES:
        raise ValueError(f"guarded_by mode must be one of {_MODES}, got {mode!r}")

    def decorate(fn: _F) -> _F:
        @functools.wraps(fn)
        def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
            if contracts_enabled():
                lock = getattr(self, lock_attr, None)
                if lock is not None and not _TRACKER.holds(lock, mode):
                    raise ContractViolation(
                        f"guard contract: {type(self).__name__}."
                        f"{fn.__name__}() entered without {lock_attr!r} held "
                        f"({mode}); acquire the lock (or route the call "
                        "through the owning engine)"
                    )
            return fn(self, *args, **kwargs)

        wrapper.__guarded_by__ = (lock_attr, mode)  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate


class TrackedLock:
    """A non-reentrant mutex whose acquisitions feed the order tracker.

    Context-manager drop-in for ``threading.Lock()``; under contracts the
    tracker vets every acquisition (ordering cycles, re-entry) *before*
    blocking, so discipline bugs surface as :class:`ContractViolation`
    instead of a hung test.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()

    def acquire(self) -> None:
        note_acquire(self, self.name, "exclusive")
        self._lock.acquire()

    def release(self) -> None:
        self._lock.release()
        note_release(self)

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def locked(self) -> bool:
        return self._lock.locked()
