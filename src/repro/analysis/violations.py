"""The violation record shared by every lint rule."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True, order=True)
class Violation:
    """One rule hit at one source location.

    Ordering is (path, line, col, rule_id) so reports are stable
    regardless of the order rules ran in.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        """``flake8``-style one-liner: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }
