"""REPRO2xx — lock-discipline lint for the concurrent serving layer.

PR 2 made the repo genuinely concurrent (:class:`repro.core.engine.QueryEngine`
holds a writer-preferring RW lock plus a stats/cache mutex), and a data
race there does not crash — it silently corrupts answer sets, the one
thing an exact index must never do.  These rules make the lock discipline
*checkable*:

For every class that owns locks, the analyzer

1. finds the **lock fields** (attributes assigned from ``Lock``/
   ``RLock``/``Condition``/``Semaphore`` constructors or anything whose
   constructor name contains "lock", e.g. ``_ReadWriteLock`` and
   :class:`repro.analysis.guards.TrackedLock`), plus locks named by
   :func:`repro.analysis.guards.guarded_by` declarations;
2. computes, per statement, the **lexically held** lock set from
   ``with self._lock:`` / ``with self._rw.read_locked():`` /
   ``...write_locked():`` blocks;
3. builds the **per-class call graph** and propagates held sets into
   private helpers: a ``_helper`` only ever called with the mutex held is
   analyzed as holding it (fixpoint over the call graph); ``@guarded_by``
   declarations seed the same entry sets for public methods;
4. **infers guards**: a field mutated inside a lexical ``with self.L``
   block anywhere in the class is *guarded by* ``L`` (evidence-based —
   declarations alone never create guards, so externally-locked classes
   like ``TreePiIndex`` are not misattributed).

It then emits:

* **REPRO201** — a read/write of a guarded field at a point where the
  guard is not held (reads need any mode of an RW lock, writes need the
  write side or an exclusive mutex).  ``__init__`` is exempt (the object
  is not shared yet).
* **REPRO202** — blocking work (pool construction/submits, verification,
  mining/builds, file or socket I/O, sleeps) while holding a writer or
  exclusive lock: every reader stalls behind it.  Calls on the lock
  objects themselves (``cond.wait()``) are exempt.
* **REPRO203** — guarded mutable state escaping its locked region:
  ``return self._cache``-style returns of an in-place-mutated guarded
  object from inside the critical section, or a lock-justified closure
  over guarded state handed to an escape sink (``submit``, ``Thread``,
  a return, a ``self`` attribute).  Once outside, the lock no longer
  means anything.
* **REPRO204** — in a class with a generation counter, storing into a
  ``*cache*`` field with no generation comparison in the same method: a
  result computed against a pre-mutation index must never be cached
  afterwards (the QueryEngine's generation protocol).  Removals
  (``clear``/``pop``) are always safe and exempt.

The analysis is per class and intentionally lexical: aliasing a guarded
field into a local and handing it out defeats it, which is exactly why
REPRO203 flags the *implicit* escapes and leaves deliberate, visible
hand-offs to review.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.rules import FileContext, Rule, register
from repro.analysis.violations import Violation

#: A held lock: ``(field_name, mode)`` with mode exclusive/read/write.
HeldSet = FrozenSet[Tuple[str, str]]

_EMPTY: HeldSet = frozenset()

_LOCK_CTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Method names that mutate their receiver in place.  Calling one on a
#: guarded field is a *write* access; anything else is a read.
_MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "delete",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "put",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

#: Cache-store mutators for REPRO204 (removals are always safe).
_CACHE_STORE_METHODS = frozenset({"add", "append", "insert", "put", "setdefault", "update"})

_BLOCKING_NAME_CALLS = frozenset(
    {"open", "Pool", "ProcessPoolExecutor", "ThreadPoolExecutor"}
)
_BLOCKING_ATTR_CALLS = frozenset(
    {
        "build",
        "is_subgraph_isomorphic",
        "join",
        "map",
        "mine",
        "query",
        "query_batch",
        "read_bytes",
        "read_text",
        "rebuild",
        "result",
        "sleep",
        "submit",
        "subgraph_monomorphisms",
        "urlopen",
        "verify",
        "verify_candidate",
        "wait",
        "write_bytes",
        "write_text",
    }
)

#: Call names that hand a closure to another thread or a later time.
_ESCAPE_SINKS = frozenset({"Thread", "Timer", "call_later", "defer", "spawn", "submit"})


def _self_attr(node: ast.AST) -> Optional[str]:
    """``F`` when ``node`` is exactly ``self.F``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _names_in(node: ast.AST) -> Set[str]:
    out: Set[str] = set()
    for n in ast.walk(node):
        if isinstance(n, ast.Name):
            out.add(n.id)
        elif isinstance(n, ast.Attribute):
            out.add(n.attr)
    return out


def _mode_satisfies(held_mode: str, kind: str) -> bool:
    if kind == "read":
        return True
    return held_mode in ("exclusive", "write")


def _satisfied(held: HeldSet, guard: str, kind: str) -> bool:
    return any(
        lock == guard and _mode_satisfies(mode, kind) for lock, mode in held
    )


def _guarded_by_decorators(fn: ast.AST) -> HeldSet:
    """Locks declared held via ``@guarded_by("_lock", mode=...)``."""
    held: Set[Tuple[str, str]] = set()
    for deco in getattr(fn, "decorator_list", []):
        if not isinstance(deco, ast.Call):
            continue
        name = None
        if isinstance(deco.func, ast.Name):
            name = deco.func.id
        elif isinstance(deco.func, ast.Attribute):
            name = deco.func.attr
        if name != "guarded_by":
            continue
        if not deco.args or not isinstance(deco.args[0], ast.Constant):
            continue
        lock = deco.args[0].value
        if not isinstance(lock, str):
            continue
        mode = "exclusive"
        for kw in deco.keywords:
            if (
                kw.arg == "mode"
                and isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, str)
            ):
                mode = kw.value.value
        held.add((lock, mode))
    return frozenset(held)


class _Access:
    """One read/write of ``self.<field>`` at one program point."""

    __slots__ = ("field", "kind", "detail", "node", "held", "method")

    def __init__(
        self,
        field: str,
        kind: str,
        detail: str,
        node: ast.AST,
        held: HeldSet,
        method: str,
    ) -> None:
        self.field = field
        self.kind = kind
        self.detail = detail
        self.node = node
        self.held = held
        self.method = method


class _Closure:
    """A nested def/lambda, with the locks lexically held where defined."""

    __slots__ = ("node", "name", "held", "method", "fields")

    def __init__(
        self, node: ast.AST, name: str, held: HeldSet, method: str
    ) -> None:
        self.node = node
        self.name = name
        self.held = held
        self.method = method
        self.fields = {
            attr
            for n in ast.walk(node)
            for attr in [_self_attr(n)]
            if attr is not None
        }


class _ClassModel:
    """Everything the four REPRO2xx rules need about one class."""

    def __init__(self, ctx: FileContext, classdef: ast.ClassDef) -> None:
        self.ctx = ctx
        self.cls = classdef
        self.methods: Dict[str, ast.AST] = {
            stmt.name: stmt
            for stmt in classdef.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.decorated: Dict[str, HeldSet] = {
            name: _guarded_by_decorators(fn) for name, fn in self.methods.items()
        }
        self.lock_fields = self._find_lock_fields()
        self.accesses: List[_Access] = []
        self.call_sites: List[Tuple[str, str, HeldSet]] = []  # caller, callee, held
        self.returns: List[Tuple[ast.Return, HeldSet, str]] = []
        self.closures: List[_Closure] = []
        self.calls: List[Tuple[ast.Call, HeldSet, str]] = []
        for name, fn in sorted(self.methods.items()):
            body: Sequence[ast.stmt] = getattr(fn, "body", [])
            for stmt in body:
                self._scan(stmt, _EMPTY, name)
        self.entry_held = self._infer_entry_held()
        self.guards = self._infer_guards()
        self.container_like = {
            a.field
            for a in self.accesses
            if a.kind == "write" and a.detail != "assign"
        }
        self.generation_fields = {
            a.field
            for a in self.accesses
            if "generation" in a.field.lower() or a.field.lstrip("_") == "gen"
        }
        self.cache_fields = {
            a.field
            for a in self.accesses
            if "cache" in a.field.lower() and a.field not in self.lock_fields
        }

    # -- discovery -----------------------------------------------------
    def _find_lock_fields(self) -> Set[str]:
        locks: Set[str] = set()
        for fn in self.methods.values():
            for node in ast.walk(fn):
                if not isinstance(node, ast.Assign):
                    continue
                if not isinstance(node.value, ast.Call):
                    continue
                callee = node.value.func
                name = None
                if isinstance(callee, ast.Name):
                    name = callee.id
                elif isinstance(callee, ast.Attribute):
                    name = callee.attr
                if name is None:
                    continue
                if name not in _LOCK_CTORS and "lock" not in name.lower():
                    continue
                for target in node.targets:
                    field = _self_attr(target)
                    if field is not None:
                        locks.add(field)
        for held in self.decorated.values():
            for lock, _ in held:
                locks.add(lock)
        return locks

    def _with_item_locks(self, item: ast.withitem) -> List[Tuple[str, str]]:
        expr = item.context_expr
        field = _self_attr(expr)
        if field is not None and field in self.lock_fields:
            return [(field, "exclusive")]
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            base = _self_attr(expr.func.value)
            if base is not None and base in self.lock_fields:
                meth = expr.func.attr.lower()
                if "write" in meth:
                    return [(base, "write")]
                if "read" in meth:
                    return [(base, "read")]
                return [(base, "exclusive")]
        return []

    # -- the lexical walk ----------------------------------------------
    def _scan(self, node: ast.AST, held: HeldSet, method: str) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: List[Tuple[str, str]] = []
            for item in node.items:
                self._scan(item.context_expr, held, method)
                if item.optional_vars is not None:
                    self._scan(item.optional_vars, held, method)
                acquired.extend(self._with_item_locks(item))
            inner = held | frozenset(acquired)
            for stmt in node.body:
                self._scan(stmt, inner, method)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            name = getattr(node, "name", "<lambda>")
            self.closures.append(_Closure(node, name, held, method))
            body = node.body if isinstance(node.body, list) else [node.body]
            for stmt in body:
                self._scan(stmt, held, method)
            return
        if isinstance(node, ast.Return):
            self.returns.append((node, held, method))
        if isinstance(node, ast.Call):
            self.calls.append((node, held, method))
            callee = _self_attr(node.func)
            if callee is not None and callee in self.methods:
                self.call_sites.append((method, callee, held))
        attr = _self_attr(node)
        if (
            attr is not None
            and attr not in self.lock_fields
            and attr not in self.methods
        ):
            kind, detail = self._classify_access(node)
            self.accesses.append(_Access(attr, kind, detail, node, held, method))
        for child in ast.iter_child_nodes(node):
            self._scan(child, held, method)

    def _classify_access(self, node: ast.Attribute) -> Tuple[str, str]:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            return "write", "assign"
        parents = self.ctx.parents
        current: ast.AST = node
        while True:
            parent = parents.get(current)
            if isinstance(parent, ast.Attribute) and parent.value is current:
                if isinstance(parent.ctx, (ast.Store, ast.Del)):
                    return "write", "attr"
                grand = parents.get(parent)
                if isinstance(grand, ast.Call) and grand.func is parent:
                    if parent.attr in _MUTATOR_METHODS:
                        return "write", f"method:{parent.attr}"
                    return "read", f"method:{parent.attr}"
                current = parent
                continue
            if isinstance(parent, ast.Subscript) and parent.value is current:
                if isinstance(parent.ctx, (ast.Store, ast.Del)):
                    return "write", "subscript"
                current = parent
                continue
            if (
                isinstance(parent, ast.Call)
                and current is node
                and isinstance(parent.func, ast.Name)
                and parent.func.id == "setattr"
                and parent.args
                and parent.args[0] is node
            ):
                return "write", "setattr"
            return "read", "load"

    # -- inference -----------------------------------------------------
    def _infer_entry_held(self) -> Dict[str, HeldSet]:
        """Fixpoint: locks guaranteed held when each method is entered.

        Public methods get only their ``@guarded_by`` declarations;
        private helpers additionally inherit the intersection of what
        every internal call site holds.
        """
        entry: Dict[str, HeldSet] = dict(self.decorated)
        sites: Dict[str, List[Tuple[str, HeldSet]]] = {}
        for caller, callee, held in self.call_sites:
            sites.setdefault(callee, []).append((caller, held))
        private = {
            name
            for name in self.methods
            if name.startswith("_") and not name.startswith("__")
        }
        for _ in range(len(self.methods) + 1):
            changed = False
            for name in sorted(private):
                call_ins = sites.get(name)
                if not call_ins:
                    continue
                inherited: Optional[HeldSet] = None
                for caller, held in call_ins:
                    at_site = held | entry.get(caller, _EMPTY)
                    inherited = (
                        at_site if inherited is None else inherited & at_site
                    )
                new = self.decorated.get(name, _EMPTY) | (inherited or _EMPTY)
                if new != entry.get(name, _EMPTY):
                    entry[name] = new
                    changed = True
            if not changed:
                break
        return entry

    def _infer_guards(self) -> Dict[str, str]:
        """field -> lock, from lexically locked mutations (evidence-based)."""
        votes: Dict[str, Dict[str, int]] = {}
        for access in self.accesses:
            if access.kind != "write" or access.method == "__init__":
                continue
            for lock, _mode in access.held:
                per_field = votes.setdefault(access.field, {})
                per_field[lock] = per_field.get(lock, 0) + 1
        guards: Dict[str, str] = {}
        for field, per_lock in votes.items():
            best = sorted(per_lock.items(), key=lambda kv: (-kv[1], kv[0]))[0]
            guards[field] = best[0]
        return guards

    def effective(self, access_held: HeldSet, method: str) -> HeldSet:
        return access_held | self.entry_held.get(method, _EMPTY)

    # -- findings ------------------------------------------------------
    def findings(self) -> Dict[str, List[Tuple[ast.AST, str]]]:
        out: Dict[str, List[Tuple[ast.AST, str]]] = {
            "REPRO201": [],
            "REPRO202": [],
            "REPRO203": [],
            "REPRO204": [],
        }
        cls = self.cls.name
        self._find_unguarded(out["REPRO201"], cls)
        self._find_blocking(out["REPRO202"], cls)
        self._find_escapes(out["REPRO203"], cls)
        self._find_unchecked_cache_stores(out["REPRO204"], cls)
        return out

    def _find_unguarded(
        self, sink: List[Tuple[ast.AST, str]], cls: str
    ) -> None:
        for access in self.accesses:
            if access.method == "__init__":
                continue
            guard = self.guards.get(access.field)
            if guard is None:
                continue
            held = self.effective(access.held, access.method)
            if _satisfied(held, guard, access.kind):
                continue
            sink.append(
                (
                    access.node,
                    f"{access.kind} of {cls}.{access.field} (guarded by "
                    f"{guard!r}) without the lock held; wrap the access in "
                    f"`with self.{guard}` or declare @guarded_by({guard!r})",
                )
            )

    def _find_blocking(
        self, sink: List[Tuple[ast.AST, str]], cls: str
    ) -> None:
        for call, held, method in self.calls:
            effective = self.effective(held, method)
            writer = sorted(
                lock
                for lock, mode in effective
                if mode in ("write", "exclusive")
            )
            if not writer:
                continue
            label = self._blocking_label(call)
            if label is None:
                continue
            sink.append(
                (
                    call,
                    f"blocking call {label}() in {cls}.{method} while holding "
                    f"writer/exclusive lock {writer[0]!r}; every reader stalls "
                    "behind it — do the work outside the critical section",
                )
            )

    def _blocking_label(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            return func.id if func.id in _BLOCKING_NAME_CALLS else None
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Constant):
                return None  # e.g. " -> ".join(...) — string method, not I/O
            receiver_field = _self_attr(func.value)
            if receiver_field is not None and receiver_field in self.lock_fields:
                return None  # cond.wait()/notify on the lock itself
            if func.attr not in _BLOCKING_ATTR_CALLS:
                return None
            if func.attr == "map":
                hints = {n.lower() for n in _names_in(func.value)}
                if not any("pool" in h or "executor" in h for h in hints):
                    return None
            return func.attr
        return None

    def _find_escapes(
        self, sink: List[Tuple[ast.AST, str]], cls: str
    ) -> None:
        for ret, held, method in self.returns:
            field = _self_attr(ret.value) if ret.value is not None else None
            if field is None:
                continue
            guard = self.guards.get(field)
            if guard is None or field not in self.container_like:
                continue
            effective = self.effective(held, method)
            if any(lock == guard for lock, _ in effective):
                sink.append(
                    (
                        ret,
                        f"guarded mutable {cls}.{field} escapes its locked "
                        "region by return; hand out a snapshot/copy instead",
                    )
                )
        escaped = self._escaped_closures()
        for closure in self.closures:
            if id(closure.node) not in escaped:
                continue
            for field in sorted(closure.fields):
                guard = self.guards.get(field)
                if guard is None or field not in self.container_like:
                    continue
                effective = self.effective(closure.held, closure.method)
                if any(lock == guard for lock, _ in effective):
                    sink.append(
                        (
                            closure.node,
                            f"closure capturing guarded mutable {cls}.{field} "
                            "escapes the locked region "
                            f"(via return/{'/'.join(sorted(_ESCAPE_SINKS))}); "
                            "it will run after the lock is released",
                        )
                    )
                    break

    def _escaped_closures(self) -> Set[int]:
        """ids of closure nodes handed past the end of their region."""
        by_name: Dict[Tuple[str, str], _Closure] = {}
        lambda_ids = set()
        for closure in self.closures:
            if closure.name == "<lambda>":
                lambda_ids.add(id(closure.node))
            else:
                by_name[(closure.method, closure.name)] = closure
        escaped: Set[int] = set()

        def note(value: ast.AST, method: str) -> None:
            if isinstance(value, ast.Lambda) and id(value) in lambda_ids:
                escaped.add(id(value))
            if isinstance(value, ast.Name):
                closure = by_name.get((method, value.id))
                if closure is not None:
                    escaped.add(id(closure.node))

        for ret, _held, method in self.returns:
            if ret.value is not None:
                note(ret.value, method)
        for call, _held, method in self.calls:
            name = None
            if isinstance(call.func, ast.Name):
                name = call.func.id
            elif isinstance(call.func, ast.Attribute):
                name = call.func.attr
            if name not in _ESCAPE_SINKS:
                continue
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                note(arg, method)
        for name, fn in self.methods.items():
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign) and any(
                    _self_attr(t) is not None for t in node.targets
                ):
                    note(node.value, name)
        return escaped

    def _find_unchecked_cache_stores(
        self, sink: List[Tuple[ast.AST, str]], cls: str
    ) -> None:
        if not self.generation_fields or not self.cache_fields:
            return
        checked_methods = self._generation_checked_methods()
        for access in self.accesses:
            if access.method == "__init__":
                continue
            if access.field not in self.cache_fields or access.kind != "write":
                continue
            is_store = access.detail == "subscript" or (
                access.detail.startswith("method:")
                and access.detail.split(":", 1)[1] in _CACHE_STORE_METHODS
            )
            if not is_store or access.method in checked_methods:
                continue
            sink.append(
                (
                    access.node,
                    f"store into {cls}.{access.field} without a generation "
                    f"check in {access.method}(); compare the generation "
                    "captured before computing against the current one, or "
                    "a result computed against a pre-mutation index gets "
                    "cached as current",
                )
            )

    def _generation_checked_methods(self) -> Set[str]:
        checked: Set[str] = set()
        for name, fn in self.methods.items():
            for node in ast.walk(fn):
                if not isinstance(node, ast.Compare):
                    continue
                for side in [node.left] + list(node.comparators):
                    field = _self_attr(side)
                    if field in self.generation_fields:
                        checked.add(name)
        return checked


def _models(ctx: FileContext) -> List[_ClassModel]:
    cached = getattr(ctx, "_repro2_models", None)
    if cached is None:
        cached = [
            _ClassModel(ctx, node)
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef)
        ]
        ctx._repro2_models = cached  # type: ignore[attr-defined]
    return cached


def _file_findings(ctx: FileContext) -> Dict[str, List[Tuple[ast.AST, str]]]:
    cached = getattr(ctx, "_repro2_findings", None)
    if cached is None:
        cached = {
            "REPRO201": [],
            "REPRO202": [],
            "REPRO203": [],
            "REPRO204": [],
        }
        for model in _models(ctx):
            for rule_id, items in model.findings().items():
                cached[rule_id].extend(items)
        ctx._repro2_findings = cached  # type: ignore[attr-defined]
    return cached


class _ConcurrencyRule(Rule):
    """Base for the REPRO2xx family: report one rule's share of the model."""

    def run(self) -> List[Violation]:
        for node, message in _file_findings(self.ctx)[self.rule_id]:
            self.report(node, message)
        return self.violations


@register
class UnguardedSharedState(_ConcurrencyRule):
    """REPRO201: guarded field accessed without its lock."""

    rule_id = "REPRO201"
    name = "unguarded-shared-state"
    rationale = (
        "A field mutated inside `with self._lock` anywhere in a class is "
        "shared mutable state guarded by that lock; touching it elsewhere "
        "without the lock (reads included — torn reads of a cache or "
        "counter are real) is a data race that corrupts answer sets "
        "silently. Hold the guard, or declare the caller's obligation "
        "with @guarded_by."
    )


@register
class BlockingUnderWriteLock(_ConcurrencyRule):
    """REPRO202: blocking work inside a writer/exclusive critical section."""

    rule_id = "REPRO202"
    name = "blocking-under-write-lock"
    rationale = (
        "The writer lock stops every reader; holding it across pool "
        "submits, verification, index builds or file I/O turns a "
        "millisecond swap into a full stall of the serving path (and a "
        "deadlock risk if the blocked work ever needs a lock). Prepare "
        "outside, lock only to swap."
    )


@register
class GuardedStateEscapes(_ConcurrencyRule):
    """REPRO203: guarded mutable state leaks out of the locked region."""

    rule_id = "REPRO203"
    name = "guarded-state-escape"
    rationale = (
        "Returning a lock-guarded container, or shipping a closure over "
        "one to another thread, hands out a reference the lock no longer "
        "protects once the region exits. Return a snapshot/copy; pass "
        "closures only immutable or private data."
    )


@register
class CacheStoreWithoutGenerationCheck(_ConcurrencyRule):
    """REPRO204: cache mutation that skips the generation protocol."""

    rule_id = "REPRO204"
    name = "cache-store-no-generation-check"
    rationale = (
        "In a class that versions its state with a generation counter, "
        "every cache store must prove the result is still current "
        "(compare the generation captured before computing). An "
        "unchecked store races maintenance and pins a stale answer set "
        "in the cache indefinitely."
    )


__all__ = [
    "BlockingUnderWriteLock",
    "CacheStoreWithoutGenerationCheck",
    "GuardedStateEscapes",
    "UnguardedSharedState",
]
