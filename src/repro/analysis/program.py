"""Whole-program (cross-module) analysis model.

PR 6's :class:`~repro.analysis.flow.FileFlow` sees one file at a time;
cross-file calls were approximated by the hard-coded ``TOKEN_CALLEES``
name registry.  The degradation-soundness contract the serving tier
guarantees (``matches ⊆ exact ⊆ matches ∪ unresolved``) spans
``serving/sharded.py`` → ``core/engine.py`` → ``core/treepi.py`` →
``graphs/isomorphism.py``, so checking it needs the real project-wide
call graph.  This module builds it:

* every file is parsed **once** into a shared AST table (the lint
  driver hands the same trees to the per-file rules);
* per-module symbol tables: top-level functions, classes (with base
  lists and inferred ``self.<attr>`` types), and import bindings
  (``import m``, ``from m import f``, aliases, and re-export chains
  through package ``__init__`` files);
* cross-module call resolution for bare names (through import
  bindings), ``module.f()`` attribute calls, constructor calls, and
  class-method dispatch — receivers are typed from parameter/variable
  annotations, ``x = ClassName(...)`` assignments, and
  ``self._attr = <typed value>`` patterns, with method lookup walking
  base classes across files;
* the token/loop/checkpoint fixpoints and the hot set re-run over the
  global graph (serving-layer spine functions seed hotness alongside
  the ``repro/core`` spine and ``@hot_path`` marks).

Known limits (documented in docs/ANALYSIS.md): dynamic dispatch through
containers of callables, monkey-patching, ``getattr`` calls and
``functools.partial`` are not resolved; an attribute whose inferred
types conflict is treated as untyped.  Resolution is a *best-effort
under-approximation* — an unresolved call contributes no edge, exactly
like the registry it replaces.

Per-file REPRO3xx analysis keeps its per-file fixpoints for
compatibility, but its :class:`~repro.analysis.flow.ExternalSurface` is
now :class:`ResolvedSurface` — real resolution standing where the
registry used to guess (the differential test in
``tests/analysis/test_program.py`` proves findings are unchanged on
``src/repro``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Set, Tuple, Union

from repro.analysis.flow import (
    SPINE_FUNCTIONS,
    CallSite,
    ExternalInfo,
    ExternalSurface,
    FileFlow,
    FunctionInfo,
)
from repro.analysis.rules import _module_path

__all__ = [
    "ClassInfo",
    "ModuleInfo",
    "ProgramModel",
    "ResolvedSurface",
    "build_program",
    "single_file_program",
]

#: Packages whose spine-named functions seed the *global* hot set.  The
#: per-file REPRO3xx hot set stays scoped to ``repro/core`` (plus
#: ``@hot_path`` marks) for compatibility; the whole-program REPRO4xx
#: family additionally treats the serving tier's entry points as hot.
_HOT_SEED_PREFIXES: Tuple[str, ...] = ("repro/core", "repro/serving")

_ANN_WRAPPERS = frozenset({"Optional", "Final", "ClassVar", "Annotated"})


class Binding(NamedTuple):
    """One imported name: ``symbol`` from dotted ``module`` (or the
    module itself when ``symbol`` is None)."""

    module: str
    symbol: Optional[str]


def _dotted_name(module_path: str) -> str:
    """``repro/serving/sharded.py`` → ``repro.serving.sharded``."""
    name = module_path
    if name.endswith(".py"):
        name = name[: -len(".py")]
    name = name.replace("/", ".")
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name


def _ann_type_name(expr: Optional[ast.expr]) -> Optional[str]:
    """Terminal class name of an annotation, unwrapping Optional/quotes."""
    if expr is None:
        return None
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        try:
            inner = ast.parse(expr.value, mode="eval").body
        except SyntaxError:
            return None
        return _ann_type_name(inner)
    if isinstance(expr, ast.Subscript):
        value = expr.value
        head = value.id if isinstance(value, ast.Name) else (
            value.attr if isinstance(value, ast.Attribute) else None
        )
        if head in _ANN_WRAPPERS:
            return _ann_type_name(expr.slice)
        return None  # containers (List[X], Dict[..]) are not receivers
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
        for side in (expr.left, expr.right):
            if isinstance(side, ast.Constant) and side.value is None:
                continue
            return _ann_type_name(side)
        return None
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


class ClassInfo:
    """One class definition with methods, bases, and attribute types."""

    def __init__(self, node: ast.ClassDef, module: "ModuleInfo") -> None:
        self.node = node
        self.name = node.name
        self.module = module
        self.methods: Dict[str, FunctionInfo] = dict(
            module.flow.class_methods.get(node.name, {})
        )
        self.bases: List[ast.expr] = list(node.bases)
        #: ``self.<attr>`` → candidate class-name strings (conflicting
        #: non-None assignments make the attribute untyped).
        self.attr_types: Dict[str, Set[str]] = {}
        self._infer_attr_types()

    def _infer_attr_types(self) -> None:
        for stmt in self.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                name = _ann_type_name(stmt.annotation)
                if name is not None:
                    self.attr_types.setdefault(stmt.target.id, set()).add(name)
        for method in self.methods.values():
            for node, _stack in method.owned:
                attr: Optional[str] = None
                tname: Optional[str] = None
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and self._is_self_attr(node.targets[0])
                ):
                    attr = node.targets[0].attr  # type: ignore[attr-defined]
                    tname = self._value_type(method, node.value)
                    if tname is None and not self._is_none(node.value):
                        tname = "?"
                elif isinstance(node, ast.AnnAssign) and self._is_self_attr(node.target):
                    attr = node.target.attr  # type: ignore[attr-defined]
                    tname = _ann_type_name(node.annotation)
                if attr is not None and tname is not None:
                    self.attr_types.setdefault(attr, set()).add(tname)

    @staticmethod
    def _is_self_attr(target: ast.expr) -> bool:
        return (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        )

    @staticmethod
    def _is_none(value: ast.expr) -> bool:
        return isinstance(value, ast.Constant) and value.value is None

    def _value_type(self, method: FunctionInfo, value: ast.expr) -> Optional[str]:
        if isinstance(value, ast.Name) and value.id in method.params:
            return _param_annotation_name(method, value.id)
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name):
                return func.id
            if isinstance(func, ast.Attribute):
                return func.attr
        return None


def _param_annotation_name(fn: FunctionInfo, param: str) -> Optional[str]:
    args = fn.node.args  # type: ignore[attr-defined]
    for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        if a.arg == param:
            return _ann_type_name(a.annotation)
    return None


class ModuleInfo:
    """One parsed source file with its symbol tables."""

    def __init__(
        self, path: str, source: str, tree: ast.Module, program: "ProgramModel"
    ) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.module_path = _module_path(path)
        self.name = _dotted_name(self.module_path)
        is_init = self.module_path.endswith("/__init__.py")
        self.package = self.name if is_init else self.name.rpartition(".")[0]
        self.flow = FileFlow(
            tree, self.module_path, surface=ResolvedSurface(program, self)
        )
        self.imports: Dict[str, Binding] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._collect_imports()
        self._collect_classes()
        self._parents: Optional[Dict[int, ast.AST]] = None

    # ------------------------------------------------------------------
    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.imports[alias.asname] = Binding(alias.name, None)
                    else:
                        root = alias.name.split(".", 1)[0]
                        self.imports.setdefault(root, Binding(root, None))
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.imports[alias.asname or alias.name] = Binding(
                        base, alias.name
                    )

    def _import_base(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        parts = self.package.split(".") if self.package else []
        up = node.level - 1
        if up > len(parts):
            return None
        kept = parts[: len(parts) - up] if up else parts
        base = ".".join(kept)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base or None

    def _collect_classes(self) -> None:
        for stmt in self.tree.body:
            if isinstance(stmt, ast.ClassDef):
                self.classes.setdefault(stmt.name, ClassInfo(stmt, self))

    # ------------------------------------------------------------------
    def parents(self) -> Dict[int, ast.AST]:
        """Child-id → parent map over this module's tree (built lazily)."""
        if self._parents is None:
            table: Dict[int, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    table[id(child)] = parent
            self._parents = table
        return self._parents


class ResolvedSurface(ExternalSurface):
    """Real cross-module resolution behind the per-file flow model.

    Reports token-governed looping only (see
    :class:`~repro.analysis.flow.ExternalInfo`), preserving the scope
    the legacy registry gave REPRO3xx while replacing its guesses with
    the resolved call graph.
    """

    def __init__(self, program: "ProgramModel", module: "ModuleInfo") -> None:
        self._program = program
        self._module = module

    def info(
        self,
        site: CallSite,
        fn: Optional[FunctionInfo],
        module_path: str,
    ) -> Optional[ExternalInfo]:
        return self._program.external_info(site)


_Symbol = Union[FunctionInfo, ClassInfo, ModuleInfo, None]


class ProgramModel:
    """The project-wide call graph and its fixpoints."""

    def __init__(self, entries: Sequence[Tuple[str, str, ast.Module]]) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_name: Dict[str, ModuleInfo] = {}
        for path, source, tree in entries:
            info = ModuleInfo(path, source, tree, self)
            self.modules[path] = info
            self.by_name.setdefault(info.name, info)
        self.owner: Dict[FunctionInfo, ModuleInfo] = {}
        for info in self.modules.values():
            for fn in info.flow.functions:
                self.owner[fn] = info
        self._cross: Dict[int, Optional[FunctionInfo]] = {}
        for info in self.modules.values():
            for fn in info.flow.functions:
                for site in fn.calls:
                    if info.flow.resolved(site) is None:
                        self._cross[id(site)] = self._cross_resolve(info, fn, site)
        self._edges: Dict[FunctionInfo, List[FunctionInfo]] = self._edge_map()
        self._gloops: Dict[FunctionInfo, bool] = self._global_loops()
        self._gcycles: Set[FunctionInfo] = self._global_cycles()
        self._gcheckpoints: Dict[FunctionInfo, bool] = self._global_checkpoints()
        self._ghot: Set[FunctionInfo] = self._global_hot()

    # ------------------------------------------------------------------
    # symbol lookup through import bindings and re-export chains
    # ------------------------------------------------------------------
    def _binding_target(
        self, binding: Binding, seen: Set[Tuple[str, str]]
    ) -> _Symbol:
        if binding.symbol is None:
            return self.by_name.get(binding.module)
        full = f"{binding.module}.{binding.symbol}"
        if full in self.by_name:
            return self.by_name[full]
        target = self.by_name.get(binding.module)
        if target is None:
            return None
        return self._lookup(target, binding.symbol, seen)

    def _lookup(
        self,
        module: ModuleInfo,
        name: str,
        seen: Optional[Set[Tuple[str, str]]] = None,
    ) -> _Symbol:
        if seen is None:
            seen = set()
        key = (module.name, name)
        if key in seen:
            return None
        seen.add(key)
        fn = module.flow.module_functions.get(name)
        if fn is not None:
            return fn
        cls = module.classes.get(name)
        if cls is not None:
            return cls
        binding = module.imports.get(name)
        if binding is not None:
            return self._binding_target(binding, seen)
        return None

    def _resolve_class(
        self, module: ModuleInfo, name: Optional[str]
    ) -> Optional[ClassInfo]:
        if name is None or name == "?":
            return None
        found = self._lookup(module, name)
        return found if isinstance(found, ClassInfo) else None

    def _method(
        self, cls: Optional[ClassInfo], name: str, depth: int = 0
    ) -> Optional[FunctionInfo]:
        """Method lookup walking base classes (cross-module)."""
        if cls is None or depth > 8:
            return None
        direct = cls.methods.get(name)
        if direct is not None:
            return direct
        for base in cls.bases:
            base_name = _ann_type_name(base)
            parent = self._resolve_class(cls.module, base_name)
            found = self._method(parent, name, depth + 1)
            if found is not None:
                return found
        return None

    def _as_callable(self, symbol: _Symbol) -> Optional[FunctionInfo]:
        if isinstance(symbol, FunctionInfo):
            return symbol
        if isinstance(symbol, ClassInfo):
            return self._method(symbol, "__init__")
        return None

    def _enclosing_class(
        self, module: ModuleInfo, fn: Optional[FunctionInfo]
    ) -> Optional[ClassInfo]:
        anc = fn
        while anc is not None and anc.class_name is None:
            anc = anc.parent
        if anc is None or anc.class_name is None:
            return None
        return module.classes.get(anc.class_name)

    def _local_type(
        self, module: ModuleInfo, fn: FunctionInfo, name: str
    ) -> Optional[str]:
        """Single inferred class name of a local/parameter, else None."""
        if name in fn.params:
            return _param_annotation_name(fn, name)
        candidates: Set[str] = set()
        for node, _stack in fn.owned:
            value: Optional[ast.expr] = None
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == name
            ):
                value = node.value
            elif (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.target.id == name
            ):
                ann = _ann_type_name(node.annotation)
                if ann is not None:
                    candidates.add(ann)
                continue
            if value is None:
                continue
            if isinstance(value, ast.Constant) and value.value is None:
                continue
            if isinstance(value, ast.Call):
                func = value.func
                if isinstance(func, ast.Name):
                    candidates.add(func.id)
                elif isinstance(func, ast.Attribute):
                    candidates.add(func.attr)
                else:
                    candidates.add("?")
            else:
                candidates.add("?")
        if len(candidates) == 1:
            return next(iter(candidates))
        return None

    # ------------------------------------------------------------------
    # cross-module call resolution
    # ------------------------------------------------------------------
    def _cross_resolve(
        self, module: ModuleInfo, fn: FunctionInfo, site: CallSite
    ) -> Optional[FunctionInfo]:
        func = site.node.func
        if isinstance(func, ast.Name):
            return self._as_callable(self._lookup(module, func.id))
        if not isinstance(func, ast.Attribute):
            return None
        recv = func.value
        if isinstance(recv, ast.Name):
            if recv.id == "self":
                # In-file resolution already checked the class itself;
                # inherited methods live in base classes, possibly in
                # other files.
                cls = self._enclosing_class(module, fn)
                return self._method(cls, func.attr) if cls is not None else None
            binding = module.imports.get(recv.id)
            if binding is not None:
                target = self._binding_target(binding, set())
                if isinstance(target, ModuleInfo):
                    return self._as_callable(self._lookup(target, func.attr))
            cls = self._resolve_class(module, self._local_type(module, fn, recv.id))
            return self._method(cls, func.attr) if cls is not None else None
        if (
            isinstance(recv, ast.Attribute)
            and isinstance(recv.value, ast.Name)
            and recv.value.id == "self"
        ):
            cls = self._enclosing_class(module, fn)
            if cls is None:
                return None
            names = cls.attr_types.get(recv.attr, set())
            resolved = {
                c
                for c in (self._resolve_class(cls.module, n) for n in names)
                if c is not None
            }
            if len(resolved) == 1:
                return self._method(resolved.pop(), func.attr)
        return None

    # ------------------------------------------------------------------
    # global fixpoints
    # ------------------------------------------------------------------
    def _edge_map(self) -> Dict[FunctionInfo, List[FunctionInfo]]:
        edges: Dict[FunctionInfo, List[FunctionInfo]] = {}
        for info in self.modules.values():
            for fn in info.flow.functions:
                outs: List[FunctionInfo] = []
                for site in fn.calls:
                    target = info.flow.resolved(site)
                    if target is None:
                        target = self._cross.get(id(site))
                    if target is not None:
                        outs.append(target)
                edges[fn] = outs
        return edges

    def _global_loops(self) -> Dict[FunctionInfo, bool]:
        loops = {fn: bool(fn.own_loops) for fn in self._edges}
        changed = True
        while changed:
            changed = False
            for fn, outs in self._edges.items():
                if loops[fn]:
                    continue
                if any(loops[t] for t in outs):
                    loops[fn] = True
                    changed = True
        return loops

    def _global_cycles(self) -> Set[FunctionInfo]:
        """Functions on a call cycle (Tarjan SCC, iterative)."""
        index: Dict[FunctionInfo, int] = {}
        low: Dict[FunctionInfo, int] = {}
        on_stack: Set[FunctionInfo] = set()
        stack: List[FunctionInfo] = []
        counter = 0
        cyclic: Set[FunctionInfo] = set()

        for root in self._edges:
            if root in index:
                continue
            work: List[Tuple[FunctionInfo, int]] = [(root, 0)]
            while work:
                fn, child_idx = work[-1]
                if child_idx == 0:
                    index[fn] = low[fn] = counter
                    counter += 1
                    stack.append(fn)
                    on_stack.add(fn)
                outs = self._edges[fn]
                advanced = False
                while child_idx < len(outs):
                    nxt = outs[child_idx]
                    child_idx += 1
                    if nxt not in index:
                        work[-1] = (fn, child_idx)
                        work.append((nxt, 0))
                        advanced = True
                        break
                    if nxt in on_stack:
                        low[fn] = min(low[fn], index[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[fn])
                if low[fn] == index[fn]:
                    component: List[FunctionInfo] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member is fn:
                            break
                    if len(component) > 1:
                        cyclic.update(component)
                    elif component and component[0] in self._edges[component[0]]:
                        cyclic.add(component[0])
        return cyclic

    def _global_checkpoints(self) -> Dict[FunctionInfo, bool]:
        cp: Dict[FunctionInfo, bool] = {}
        for info in self.modules.values():
            for fn in info.flow.functions:
                cp[fn] = bool(fn.checkpoint_nodes) or any(
                    info.flow.forwards_token(fn, site) for site in fn.calls
                )
        changed = True
        while changed:
            changed = False
            for fn, outs in self._edges.items():
                if cp[fn]:
                    continue
                if any(t is not fn and cp[t] for t in outs):
                    cp[fn] = True
                    changed = True
        return cp

    def _global_hot(self) -> Set[FunctionInfo]:
        hot: Set[FunctionInfo] = set()
        frontier: List[FunctionInfo] = []
        for fn, info in self.owner.items():
            seeded = fn.marked_hot or (
                info.module_path.startswith(_HOT_SEED_PREFIXES)
                and fn.name in SPINE_FUNCTIONS
            )
            if seeded:
                hot.add(fn)
                frontier.append(fn)
        while frontier:
            fn = frontier.pop()
            nexts = list(self._edges.get(fn, ())) + list(fn.children.values())
            for target in nexts:
                if target not in hot:
                    hot.add(target)
                    frontier.append(target)
        return hot

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def flow_for(self, path: str) -> Optional[FileFlow]:
        info = self.modules.get(path)
        return info.flow if info is not None else None

    def module_for(self, path: str) -> Optional[ModuleInfo]:
        return self.modules.get(path)

    def cross_resolved(self, site: CallSite) -> Optional[FunctionInfo]:
        """The cross-module target of an in-file-unresolved call."""
        return self._cross.get(id(site))

    def resolved(self, info: ModuleInfo, site: CallSite) -> Optional[FunctionInfo]:
        """In-file target if any, else the cross-module target."""
        target = info.flow.resolved(site)
        if target is not None:
            return target
        return self._cross.get(id(site))

    def loops_global(self, fn: FunctionInfo) -> bool:
        return self._gloops.get(fn, False) or fn in self._gcycles

    def checkpoints_global(self, fn: FunctionInfo) -> bool:
        return self._gcheckpoints.get(fn, False)

    def is_hot_global(self, fn: FunctionInfo) -> bool:
        return fn in self._ghot

    def external_info(self, site: CallSite) -> Optional[ExternalInfo]:
        """Surface view of a cross-module call (token-governed looping)."""
        target = self._cross.get(id(site))
        if target is None:
            return None
        accepts = bool(target.token_params)
        return ExternalInfo(
            accepts_token=accepts,
            loops=accepts and self.loops_global(target),
        )

    def functions(self) -> Iterable[Tuple[ModuleInfo, FunctionInfo]]:
        for info in self.modules.values():
            for fn in info.flow.functions:
                yield info, fn


def build_program(
    entries: Sequence[Tuple[str, str, Optional[ast.Module]]]
) -> ProgramModel:
    """Build a model from ``(path, source, tree)`` rows.

    Rows whose tree is None (unparseable files) are skipped — the lint
    driver reports those as REPRO001 separately.
    """
    parsed = [(p, s, t) for p, s, t in entries if t is not None]
    return ProgramModel(parsed)


def single_file_program(path: str, source: str, tree: ast.Module) -> ProgramModel:
    """A one-file model, for standalone ``lint_source`` runs (fixtures)."""
    return ProgramModel([(path, source, tree)])
