"""REPRO4xx — exception-flow, resource-safety and degradation-soundness rules.

The serving tier's headline contract is the degradation bracket
``matches ⊆ exact ⊆ matches ∪ unresolved``: a failed or timed-out shard
must surface as *unresolved universe*, never as a silently smaller
answer.  The flows that can break it — a swallowed shard exception, an
executor leaked on a raise path, a ``Future`` joined without a timeout,
a ``token=`` dropped at a file boundary — span multiple modules, so
these rules run on the whole-program model
(:mod:`repro.analysis.program`); standalone single-file lints fall back
to a one-file model so fixtures stay checkable.

* **REPRO401** — resource leak on exception edges: an executor, file,
  or lock acquired without ``with`` whose release is missing or sits on
  the fall-through path instead of a ``finally``.
* **REPRO402** — exception severs the degradation contract:
  ``ContractViolation`` caught without re-raise (it must *never* be
  degraded away), or a bare/overbroad ``except`` on the query spine
  that neither re-raises nor records the failure for a
  ``complete=False`` result.
* **REPRO403** — unsound failure path: a ``serving``/``core`` failure
  handler that returns a ``QueryResult`` without contributing the
  failed universe to ``unresolved`` or setting ``degraded_reason``
  (directly or through a one-level helper).
* **REPRO404** — cross-module token-forwarding drop: REPRO301
  generalized through the resolved call graph — a globally-hot function
  with an in-scope token calls a token-accepting, looping callee in
  another file without forwarding it.
* **REPRO405** — scatter hygiene: ``Future.result()`` with no timeout,
  or a timeout handler that abandons the future without ``cancel()``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.flow import FunctionInfo
from repro.analysis.program import (
    ModuleInfo,
    ProgramModel,
    single_file_program,
)
from repro.analysis.rules import FileContext, Rule, register

__all__ = [
    "ResourceLeakOnException",
    "ContractSeveredByException",
    "UnsoundFailurePath",
    "CrossModuleTokenDrop",
    "ScatterHygiene",
]

Finding = Tuple[str, ast.AST, str]

#: Constructors that acquire an owned resource when not used via ``with``.
#: ``mmap`` matches both ``mmap.mmap(...)`` and a bare ``mmap(...)`` —
#: the segment reader holds maps open across calls, so a map acquired
#: and then abandoned on an exception path is a real leak (address
#: space + file reference), same as an unreleased pool or handle.
_RESOURCE_CTORS = frozenset(
    {"ThreadPoolExecutor", "ProcessPoolExecutor", "open", "mmap"}
)
#: Calls that release such a resource.
_CLEANUP_ATTRS = frozenset({"shutdown", "close", "release", "terminate"})
#: Modules whose query spine carries the degradation contract.
_SPINE_PREFIXES: Tuple[str, ...] = ("repro/serving", "repro/core")
#: Overbroad handler types on the spine (REPRO402b).
_BROAD_EXCEPTS = frozenset({"Exception", "BaseException", "ReproError"})
#: Handler types that mark a failure-catching region (REPRO403).
_FAILURE_EXCEPTS = _BROAD_EXCEPTS | frozenset(
    {"TimeoutError", "FuturesTimeout", "BudgetExceeded", "OSError"}
)
_TIMEOUT_EXCEPTS = frozenset({"TimeoutError", "FuturesTimeout"})
_CONTRACT_EXC = "ContractViolation"
#: Handler statements that count as recording a failure for a later
#: degraded merge (mirrors REPRO302's conversion logic).
_RECORD_NODES = (
    ast.Raise,
    ast.Return,
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.Break,
    ast.Continue,
)
_MUTATOR_METHODS = frozenset(
    {"append", "add", "update", "extend", "insert", "setdefault", "discard"}
)


# ----------------------------------------------------------------------
# small AST helpers
# ----------------------------------------------------------------------
def _terminal_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _handler_names(handler: ast.ExceptHandler) -> List[str]:
    """Exception type names a handler catches; empty for a bare except."""
    exc = handler.type
    if exc is None:
        return []
    nodes = list(exc.elts) if isinstance(exc, ast.Tuple) else [exc]
    names: List[str] = []
    for node in nodes:
        name = _terminal_name(node)
        if name is not None:
            names.append(name)
    return names


def _has_raise(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(n, ast.Raise) for n in ast.walk(handler))


def _handler_records(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, _RECORD_NODES):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
            ):
                return True
    return False


def _names_under(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _finally_node_ids(fn: FunctionInfo) -> Set[int]:
    """ids of every node lexically inside a ``finally:`` block of ``fn``."""
    protected: Set[int] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Try) and node.finalbody:
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    protected.add(id(sub))
    return protected


def _unsound_ctor(node: ast.AST) -> Optional[ast.Call]:
    """The node itself, when it is a QueryResult(...) lacking soundness kwargs."""
    if (
        isinstance(node, ast.Call)
        and _terminal_name(node.func) == "QueryResult"
        and not _ctor_is_sound(node)
    ):
        return node
    return None


def _ctor_is_sound(call: ast.Call) -> bool:
    """Does a QueryResult(...) carry unresolved= or degraded_reason=?"""
    for kw in call.keywords:
        if kw.arg is None:  # **kwargs: can't see inside, assume sound
            return True
        if kw.arg in ("unresolved", "degraded_reason"):
            return True
    return False


# ----------------------------------------------------------------------
# REPRO401 — resource leak on exception edges
# ----------------------------------------------------------------------
def _resource_findings(
    info: ModuleInfo, fn: FunctionInfo, out: List[Finding]
) -> None:
    escaped: Set[str] = set()
    for node, _stack in fn.owned:
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = getattr(node, "value", None)
            if value is not None:
                escaped |= _names_under(value)
        elif (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Attribute)
        ):
            escaped |= _names_under(node.value)

    protected = _finally_node_ids(fn)

    def cleanups_on(name: str) -> List[ast.Call]:
        calls: List[ast.Call] = []
        for node, _stack in fn.owned:
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _CLEANUP_ATTRS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                calls.append(node)
        return calls

    for node, _stack in fn.owned:
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
        ):
            continue
        ctor = _terminal_name(node.value.func)
        if ctor not in _RESOURCE_CTORS:
            continue
        name = node.targets[0].id
        if name in escaped:
            continue  # ownership transferred (returned / stored on self)
        releases = cleanups_on(name)
        if not releases:
            out.append(
                (
                    "REPRO401",
                    node,
                    f"{ctor}() bound to {name!r} in {fn.qualname} is never "
                    "released on any path; use `with` or release it in a "
                    "finally block",
                )
            )
        elif not any(id(call) in protected for call in releases):
            out.append(
                (
                    "REPRO401",
                    node,
                    f"{ctor}() bound to {name!r} in {fn.qualname} is released "
                    "only on the fall-through path; an exception between "
                    "acquire and release leaks it — move the release into "
                    "finally (or use `with`)",
                )
            )

    # lock.acquire() whose matching release sits outside any finally
    acquires: List[Tuple[ast.Call, str]] = []
    releases_by_recv: Dict[str, List[ast.Call]] = {}
    for node, _stack in fn.owned:
        if not (
            isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
        ):
            continue
        recv = ast.unparse(node.func.value)
        if node.func.attr == "acquire":
            acquires.append((node, recv))
        elif node.func.attr == "release":
            releases_by_recv.setdefault(recv, []).append(node)
    for call, recv in acquires:
        matching = releases_by_recv.get(recv, [])
        if matching and not any(id(r) in protected for r in matching):
            out.append(
                (
                    "REPRO401",
                    call,
                    f"{recv}.acquire() in {fn.qualname} pairs with a release "
                    "outside any finally; an exception in between leaves the "
                    "lock held — use `with` or a try/finally",
                )
            )


# ----------------------------------------------------------------------
# REPRO402 — exception severs the degradation contract
# ----------------------------------------------------------------------
def _contract_findings(
    program: ProgramModel, info: ModuleInfo, fn: FunctionInfo, out: List[Finding]
) -> None:
    on_spine_module = info.module_path.startswith(_SPINE_PREFIXES)
    for node, _stack in fn.owned:
        if not isinstance(node, ast.ExceptHandler):
            continue
        names = _handler_names(node)
        if on_spine_module and _CONTRACT_EXC in names and not _has_raise(node):
            out.append(
                (
                    "REPRO402",
                    node,
                    f"{_CONTRACT_EXC} caught in {fn.qualname} without "
                    "re-raise; contract violations are correctness bugs and "
                    "must surface, never degrade into a partial answer",
                )
            )
            continue
        broad = node.type is None or any(n in _BROAD_EXCEPTS for n in names)
        if (
            broad
            and program.is_hot_global(fn)
            and not _has_raise(node)
            and not _handler_records(node)
        ):
            caught = ", ".join(names) if names else "everything (bare except)"
            out.append(
                (
                    "REPRO402",
                    node,
                    f"overbroad handler ({caught}) on query-spine function "
                    f"{fn.qualname} neither re-raises nor records the "
                    "failure; a swallowed shard/verify error silently "
                    "shrinks the answer instead of degrading it",
                )
            )


# ----------------------------------------------------------------------
# REPRO403 — unsound failure paths
# ----------------------------------------------------------------------
def _failure_handlers(fn: FunctionInfo) -> List[ast.ExceptHandler]:
    handlers: List[ast.ExceptHandler] = []
    for node, _stack in fn.owned:
        if not isinstance(node, ast.ExceptHandler):
            continue
        names = _handler_names(node)
        if node.type is None or any(n in _FAILURE_EXCEPTS for n in names):
            handlers.append(node)
    return handlers


def _fn_has_unsound_ctor(fn: FunctionInfo) -> bool:
    return any(_unsound_ctor(node) is not None for node, _stack in fn.owned)


def _unsound_findings(
    program: ProgramModel, info: ModuleInfo, fn: FunctionInfo, out: List[Finding]
) -> None:
    handlers = _failure_handlers(fn)
    if not handlers:
        return
    site_by_call = {id(site.node): site for site in fn.calls}
    for handler in handlers:
        for stmt in handler.body:
            for node in ast.walk(stmt):
                if _unsound_ctor(node) is not None:
                    out.append(
                        (
                            "REPRO403",
                            node,
                            f"failure handler in {fn.qualname} builds a "
                            "QueryResult without unresolved= or "
                            "degraded_reason=; the failed universe must be "
                            "contributed to unresolved so the bracket "
                            "invariant holds",
                        )
                    )
                elif isinstance(node, ast.Return) and isinstance(
                    node.value, ast.Call
                ):
                    site = site_by_call.get(id(node.value))
                    if site is None:
                        continue
                    target = program.resolved(info, site)
                    if target is not None and _fn_has_unsound_ctor(target):
                        out.append(
                            (
                                "REPRO403",
                                node,
                                f"failure handler in {fn.qualname} returns "
                                f"via {target.qualname}, which builds a "
                                "QueryResult without unresolved= or "
                                "degraded_reason=; the failed universe is "
                                "dropped",
                            )
                        )


# ----------------------------------------------------------------------
# REPRO404 — cross-module token-forwarding drops
# ----------------------------------------------------------------------
def _token_drop_findings(
    program: ProgramModel, info: ModuleInfo, fn: FunctionInfo, out: List[Finding]
) -> None:
    if not program.is_hot_global(fn) or not fn.token_names():
        return
    flow = info.flow
    for site in fn.calls:
        if flow.resolved(site) is not None:
            continue  # in-file edge: REPRO301 territory
        target = program.cross_resolved(site)
        if target is None or not target.token_params:
            continue
        if not program.loops_global(target):
            continue
        if flow.forwards_token(fn, site):
            continue
        if flow.is_hot(fn):
            # The per-file model (REPRO301, resolution-backed surface)
            # already reports this exact drop; 404 adds the functions
            # only the global hot set can see.
            continue
        owner = program.owner.get(target)
        where = owner.module_path if owner is not None else "another module"
        out.append(
            (
                "REPRO404",
                site.node,
                f"cross-module call from {fn.qualname} to looping callee "
                f"{target.qualname} ({where}) drops the in-scope "
                "cancellation token; pass token= across the file boundary "
                "so the callee's loops stay cancellable",
            )
        )


# ----------------------------------------------------------------------
# REPRO405 — scatter hygiene
# ----------------------------------------------------------------------
def _result_has_timeout(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg is None:
            return True
        if kw.arg == "timeout":
            return not (
                isinstance(kw.value, ast.Constant) and kw.value.value is None
            )
    if call.args:
        first = call.args[0]
        return not (isinstance(first, ast.Constant) and first.value is None)
    return False


def _scatter_findings(fn: FunctionInfo, out: List[Finding]) -> None:
    has_cancel = any(
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "cancel"
        for node, _stack in fn.owned
    )
    joins_future = any(
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "result"
        and "fut" in ast.unparse(node.func.value).lower()
        for node, _stack in fn.owned
    )
    for node, _stack in fn.owned:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "result"
            and "fut" in ast.unparse(node.func.value).lower()
            and not _result_has_timeout(node)
        ):
            out.append(
                (
                    "REPRO405",
                    node,
                    f"Future.result() without a timeout in {fn.qualname} "
                    "joins a shard unboundedly; a hung worker then stalls "
                    "the whole gather past its deadline",
                )
            )
        elif isinstance(node, ast.ExceptHandler) and joins_future:
            # Only meaningful where the function actually joins futures;
            # a timeout handler around ordinary work is not a scatter.
            names = _handler_names(node)
            if any(n in _TIMEOUT_EXCEPTS for n in names) and not has_cancel:
                out.append(
                    (
                        "REPRO405",
                        node,
                        f"timeout handler in {fn.qualname} abandons the "
                        "timed-out future without cancel(); queued work "
                        "keeps a pool thread busy after the deadline",
                    )
                )


# ----------------------------------------------------------------------
# shared per-program computation, cached on the model and the context
# ----------------------------------------------------------------------
def _program_findings(program: ProgramModel) -> Dict[str, List[Finding]]:
    cached = getattr(program, "_repro4_table", None)
    if cached is not None:
        return cached  # type: ignore[no-any-return]
    table: Dict[str, List[Finding]] = {path: [] for path in program.modules}
    for info, fn in program.functions():
        out = table[info.path]
        _resource_findings(info, fn, out)
        _contract_findings(program, info, fn, out)
        if info.module_path.startswith(_SPINE_PREFIXES):
            _unsound_findings(program, info, fn, out)
            _scatter_findings(fn, out)
        _token_drop_findings(program, info, fn, out)
    setattr(program, "_repro4_table", table)
    return table


def _soundness_findings(ctx: FileContext) -> List[Finding]:
    cached = getattr(ctx, "_repro4_findings", None)
    if cached is not None:
        return cached  # type: ignore[no-any-return]
    program = ctx.program
    if program is None:
        program = single_file_program(ctx.path, ctx.source, ctx.tree)
    findings = _program_findings(program).get(ctx.path, [])
    ctx._repro4_findings = findings  # type: ignore[attr-defined]
    return findings


# ----------------------------------------------------------------------
# rule classes (thin reporters over the shared findings)
# ----------------------------------------------------------------------
class _SoundnessRule(Rule):
    """Report the cached whole-program findings matching this rule."""

    def visit_Module(self, node: ast.Module) -> None:
        for rule_id, where, message in _soundness_findings(self.ctx):
            if rule_id == self.rule_id:
                self.report(where, message)


@register
class ResourceLeakOnException(_SoundnessRule):
    """REPRO401: resource acquired without with/finally on raise paths."""

    rule_id = "REPRO401"
    name = "resource-leak-on-exception"
    rationale = (
        "Executors, files and locks acquired outside `with` must be "
        "released in a finally: any exception between acquire and a "
        "fall-through release leaks threads, fds, or leaves a lock held "
        "— exactly the edges fault injection exercises on the scatter "
        "path."
    )


@register
class ContractSeveredByException(_SoundnessRule):
    """REPRO402: exception handling severs the degradation contract."""

    rule_id = "REPRO402"
    name = "contract-severed-by-exception"
    rationale = (
        "ContractViolation is a correctness signal and must re-raise "
        "through every layer; an overbroad except on the query spine "
        "that neither re-raises nor records the failure turns a shard "
        "error into a silently smaller answer, breaking the "
        "matches ⊆ exact ⊆ matches ∪ unresolved bracket."
    )


@register
class UnsoundFailurePath(_SoundnessRule):
    """REPRO403: failure path returns a result without unresolved."""

    rule_id = "REPRO403"
    name = "unsound-failure-path"
    rationale = (
        "A caught shard/verify failure must contribute the failed "
        "universe to unresolved (or set degraded_reason); returning a "
        "bare QueryResult from a failure handler claims completeness "
        "the engine no longer has."
    )


@register
class CrossModuleTokenDrop(_SoundnessRule):
    """REPRO404: token forwarding dropped across a file boundary."""

    rule_id = "REPRO404"
    name = "cross-module-token-drop"
    rationale = (
        "REPRO301 generalized through the resolved project call graph: "
        "serving-tier functions reached across files are hot too, and a "
        "token= dropped at a module boundary makes every loop below it "
        "uncancellable — invisible to per-file analysis."
    )


@register
class ScatterHygiene(_SoundnessRule):
    """REPRO405: unbounded Future joins / abandoned futures."""

    rule_id = "REPRO405"
    name = "scatter-hygiene"
    rationale = (
        "The scatter path must never block past deadline + grace: every "
        "Future.result() needs a timeout, and a timed-out future must "
        "be cancelled so queued shard work stops consuming pool threads "
        "after the answer has already degraded."
    )
