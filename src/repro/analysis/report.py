"""Rendering of lint reports for the CLI and CI logs."""

from __future__ import annotations

import json
from typing import List

from repro.analysis.engine import LintReport


def render_text(report: LintReport, statistics: bool = False) -> str:
    """flake8-style listing plus an optional per-rule summary."""
    lines: List[str] = [v.format() for v in report.violations]
    if statistics:
        for rule_id, count in report.counts_by_rule().items():
            lines.append(f"{count:5d}  {rule_id}")
    if report.ok:
        lines.append(
            f"OK: {report.files_checked} file(s) checked, 0 violations"
        )
    else:
        lines.append(
            f"FAIL: {report.files_checked} file(s) checked, "
            f"{len(report.violations)} violation(s)"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report for tooling."""
    payload = {
        "files_checked": report.files_checked,
        "violations": [v.to_dict() for v in report.violations],
        "counts_by_rule": report.counts_by_rule(),
        "ok": report.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
