"""Rendering of lint reports for the CLI and CI logs."""

from __future__ import annotations

import json
from typing import List

from repro.analysis.engine import LintReport


def render_text(report: LintReport, statistics: bool = False) -> str:
    """flake8-style listing plus an optional per-rule summary."""
    lines: List[str] = [v.format() for v in report.violations]
    if statistics:
        for rule_id, count in report.counts_by_rule().items():
            lines.append(f"{count:5d}  {rule_id}")
    if report.files_checked == 0:
        # An empty input set is not a pass by omission: say so explicitly
        # (and still exit 0 — nothing was checked, nothing failed).
        lines.append("OK: 0 files checked (no Python files found under the given paths)")
    elif report.ok:
        lines.append(
            f"OK: {report.files_checked} file(s) checked, 0 violations"
        )
    else:
        lines.append(
            f"FAIL: {report.files_checked} file(s) checked, "
            f"{len(report.violations)} violation(s)"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report, consumed as a CI artifact.

    Stable schema: top-level keys are sorted, record lists are ordered by
    (path, line, col, rule) — two runs over the same tree serialize
    byte-identically.  ``suppressed`` lists the hits silenced by ``noqa``
    so waived findings stay auditable.
    """
    payload = {
        "files_checked": report.files_checked,
        "violations": [v.to_dict() for v in report.violations],
        "suppressed": [v.to_dict() for v in report.suppressed_violations],
        "suppressed_count": report.suppressed,
        "counts_by_rule": report.counts_by_rule(),
        "ok": report.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
