"""Rendering of lint reports for the CLI and CI logs."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.engine import LintReport
from repro.analysis.violations import Violation

#: SARIF constants for GitHub code scanning uploads.
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _driver_version() -> str:
    """The installed distribution version, falling back to the package
    constant for source-tree (PYTHONPATH=src) runs."""
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - Python < 3.8
        pass
    else:
        try:
            return version("repro")
        except PackageNotFoundError:
            pass
    import repro

    return getattr(repro, "__version__", "0.0.0")


def render_text(report: LintReport, statistics: bool = False) -> str:
    """flake8-style listing plus an optional per-rule summary."""
    lines: List[str] = [v.format() for v in report.violations]
    if statistics:
        for rule_id, count in report.counts_by_rule().items():
            lines.append(f"{count:5d}  {rule_id}")
    baseline_note = (
        f" ({report.baselined} baselined)" if report.baseline_applied else ""
    )
    if report.files_checked == 0:
        # An empty input set is not a pass by omission: say so explicitly
        # (and still exit 0 — nothing was checked, nothing failed).
        lines.append("OK: 0 files checked (no Python files found under the given paths)")
    elif report.ok:
        lines.append(
            f"OK: {report.files_checked} file(s) checked, "
            f"0 violations{baseline_note}"
        )
    else:
        lines.append(
            f"FAIL: {report.files_checked} file(s) checked, "
            f"{len(report.violations)} violation(s){baseline_note}"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report, consumed as a CI artifact.

    Stable schema: top-level keys are sorted, record lists are ordered by
    (path, line, col, rule) — two runs over the same tree serialize
    byte-identically.  ``suppressed`` lists the hits silenced by ``noqa``
    so waived findings stay auditable.  The ``baselined`` /
    ``baselined_count`` keys appear only when a baseline file was
    applied, keeping the classic schema byte-stable for existing
    consumers.
    """
    payload = {
        "files_checked": report.files_checked,
        "violations": [v.to_dict() for v in report.violations],
        "suppressed": [v.to_dict() for v in report.suppressed_violations],
        "suppressed_count": report.suppressed,
        "counts_by_rule": report.counts_by_rule(),
        "ok": report.ok,
    }
    if report.baseline_applied:
        payload["baselined"] = [
            v.to_dict() for v in report.baselined_violations
        ]
        payload["baselined_count"] = report.baselined
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_result(violation: Violation, suppression: str = "") -> Dict:
    result: Dict = {
        "ruleId": violation.rule_id,
        "level": "error",
        "message": {"text": violation.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": violation.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": max(violation.line, 1),
                        "startColumn": max(violation.col, 1),
                    },
                }
            }
        ],
    }
    if suppression:
        result["suppressions"] = [{"kind": suppression}]
    return result


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 log for GitHub code scanning.

    One run, every registered rule in the driver metadata (so rule help
    renders even for rules with no findings this run), one result per
    violation.  ``noqa``-suppressed findings are emitted with an
    ``inSource`` suppression and baselined findings with an ``external``
    one — code scanning then shows them as suppressed instead of open.
    """
    from repro.analysis.rules import all_rules

    seen_rule_ids = set()
    rules = []
    for cls in all_rules():
        if cls.rule_id in seen_rule_ids:
            continue
        seen_rule_ids.add(cls.rule_id)
        rules.append(
            {
                "id": cls.rule_id,
                "name": cls.name,
                "shortDescription": {"text": cls.name},
                "fullDescription": {"text": cls.rationale},
                "defaultConfiguration": {"level": "error"},
            }
        )
    results = [_sarif_result(v) for v in report.violations]
    results.extend(
        _sarif_result(v, suppression="inSource")
        for v in report.suppressed_violations
    )
    results.extend(
        _sarif_result(v, suppression="external")
        for v in report.baselined_violations
    )
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "version": _driver_version(),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
