"""Committed suppression baselines for incremental rule adoption.

A new rule family lands against an existing tree: every pre-existing
finding would otherwise block CI until fixed, so (like flake8/ruff
``--baseline`` workflows) a committed JSON file records the findings
that were present when the gate was introduced.  ``lint --baseline
FILE`` subtracts them from the failure set — they are still reported
(``baselined`` in the JSON payload, ``suppressions`` in SARIF) but do
not fail the run.  ``--update-baseline`` regenerates the file from the
current findings.

Fingerprints are ``(path, rule, message)`` with a per-fingerprint
*count* — deliberately line-independent, so unrelated edits that shift
a waived finding up or down the file do not resurrect it, while a *new*
finding of the same rule in the same file (count exceeded) or any
finding in a new location still fails.  Entries are sorted, so the file
diffs cleanly and regenerating on an unchanged tree is a no-op.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.analysis.engine import LintReport
from repro.analysis.violations import Violation

#: Schema version of the baseline file.
BASELINE_VERSION = 1

Fingerprint = Tuple[str, str, str]


class BaselineError(ValueError):
    """The baseline file is missing, unreadable, or malformed."""


def _fingerprint(violation: Violation) -> Fingerprint:
    path = violation.path.replace("\\", "/")
    return (path, violation.rule_id, violation.message)


def _counts(violations: List[Violation]) -> Dict[Fingerprint, int]:
    counts: Dict[Fingerprint, int] = {}
    for v in violations:
        key = _fingerprint(v)
        counts[key] = counts.get(key, 0) + 1
    return counts


def load_baseline(path: Union[str, Path]) -> Dict[Fingerprint, int]:
    """Parse a baseline file into fingerprint counts."""
    p = Path(path)
    if not p.is_file():
        raise BaselineError(
            f"baseline file {p} does not exist "
            "(create it with --update-baseline)"
        )
    try:
        payload = json.loads(p.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline file {p} is not valid JSON: {exc}")
    if not isinstance(payload, dict) or "entries" not in payload:
        raise BaselineError(f"baseline file {p} has no 'entries' list")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise BaselineError(
            f"baseline file {p} has version {version!r}, "
            f"expected {BASELINE_VERSION}"
        )
    counts: Dict[Fingerprint, int] = {}
    for entry in payload["entries"]:
        if not isinstance(entry, dict):
            raise BaselineError(f"baseline file {p} has a non-object entry")
        try:
            key = (
                str(entry["path"]).replace("\\", "/"),
                str(entry["rule"]),
                str(entry["message"]),
            )
            count = int(entry.get("count", 1))
        except KeyError as exc:
            raise BaselineError(
                f"baseline entry in {p} is missing key {exc}"
            )
        counts[key] = counts.get(key, 0) + max(count, 1)
    return counts


def write_baseline(
    path: Union[str, Path], report: LintReport
) -> int:
    """Write the report's unsuppressed findings as the new baseline.

    Findings already moved to ``baselined_violations`` by a prior
    :func:`apply_baseline` call are folded back in, so updating against
    a stale file never silently drops still-present findings.
    Returns the number of distinct fingerprints written.
    """
    current = _counts(report.violations + report.baselined_violations)
    entries = [
        {"path": key[0], "rule": key[1], "message": key[2], "count": count}
        for key, count in sorted(current.items())
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(entries)


def apply_baseline(
    report: LintReport, baseline: Dict[Fingerprint, int]
) -> LintReport:
    """Move baselined findings out of the failure set, in place.

    Matching is by fingerprint, first occurrences first (violations are
    already sorted by location), each fingerprint consumed at most
    ``count`` times — a new violation with the same fingerprint beyond
    the recorded count still fails.  Returns the same report.
    """
    remaining = dict(baseline)
    kept: List[Violation] = []
    for v in report.violations:
        key = _fingerprint(v)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            report.baselined_violations.append(v)
        else:
            kept.append(v)
    report.violations[:] = kept
    report.baselined_violations.sort()
    report.baseline_applied = True
    return report
