"""Repo-specific lint rules for the TreePi reproduction.

Three families, numbered like a rule catalog:

* **REPRO10x — determinism.**  The index pipeline turns graphs into
  canonical strings, feature ids and ordered reports; any step that
  materializes *ordered* output from an *unordered* (or
  insertion-ordered) container ties results to discovery order or to
  ``PYTHONHASHSEED``.  These rules force such steps through ``sorted()``.
* **REPRO11x — RNG hygiene.**  All randomness must flow through an
  injected, seeded ``random.Random`` so builds and benchmarks reproduce;
  module-level ``random.*`` calls share hidden global state.
* **REPRO12x — API hygiene.**  Broad exception handlers, stray prints
  outside the CLI/bench layers, and mutation of graphs owned by a built
  index (indexes assume immutability; see ``TreePiIndex._oracles``).

Every rule carries ``rule_id``, ``name`` and ``rationale`` and is
registered in :data:`REGISTRY`; ``python -m repro.analysis rules`` prints
the catalog.  Suppress a single line with ``# noqa: REPRO1xx`` plus a
justification.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple, Type

from repro.analysis.violations import Violation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.program import ProgramModel

#: Packages whose dict-iteration order feeds canonical strings, feature
#: ids, or embedding bookkeeping (REPRO101 is scoped to these).
ORDER_SENSITIVE_PREFIXES: Tuple[str, ...] = (
    "repro/mining",
    "repro/core",
    "repro/trees",
    "repro/graphs",
)

#: Wrapping calls that erase iteration order, making an unordered source
#: harmless: ``sorted(x.values())`` etc.
ORDER_INSENSITIVE_WRAPPERS = frozenset(
    {"sorted", "set", "frozenset", "sum", "min", "max", "any", "all", "len"}
)

_DICT_VIEW_METHODS = frozenset({"values", "keys", "items"})
_GRAPH_MUTATORS = frozenset({"add_edge", "add_vertex"})
_DB_NAMES = frozenset({"db", "_db", "database", "_database", "_graphs"})

#: Modules allowed to ``print``: user-facing surfaces only.
_PRINT_ALLOWED_PREFIXES: Tuple[str, ...] = (
    "repro/cli",
    "repro/bench",
    "repro/analysis",
)


class FileContext:
    """Everything a rule needs to inspect one source file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        #: repo-relative module path, normalized to ``repro/...`` form so
        #: path-scoped rules work no matter where the repo is checked out.
        self.module_path = _module_path(path)
        #: shared whole-program model when linting a file set; None for
        #: standalone single-file lints (rules then fall back to
        #: per-file approximations).
        self.program: Optional["ProgramModel"] = None
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    def parent_call_name(self, node: ast.AST) -> Optional[str]:
        """Name of the function directly wrapping ``node`` as an argument."""
        parent = self.parents.get(node)
        if isinstance(parent, ast.Call) and node in parent.args:
            if isinstance(parent.func, ast.Name):
                return parent.func.id
            if isinstance(parent.func, ast.Attribute):
                return parent.func.attr
        return None


def _module_path(path: str) -> str:
    norm = path.replace("\\", "/")
    marker = "repro/"
    idx = norm.rfind("/" + marker)
    if idx >= 0:
        return norm[idx + 1 :]
    if norm.startswith(marker):
        return norm
    return norm


class Rule(ast.NodeVisitor):
    """Base class: one rule instance checks one file."""

    rule_id: str = ""
    name: str = ""
    rationale: str = ""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.violations: List[Violation] = []

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        """Override to scope a rule to particular modules."""
        return True

    def run(self) -> List[Violation]:
        self.visit(self.ctx.tree)
        return self.violations

    def report(self, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                path=self.ctx.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0) + 1,
                rule_id=self.rule_id,
                message=message,
            )
        )


REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if cls.rule_id in REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Every registered rule class, sorted by id."""
    return [REGISTRY[rid] for rid in sorted(REGISTRY)]


def rule_catalog() -> str:
    """Human-readable catalog for ``python -m repro.analysis rules``."""
    lines = []
    for cls in all_rules():
        lines.append(f"{cls.rule_id}  {cls.name}")
        lines.append(f"    {cls.rationale}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# helpers shared by the determinism rules
# ----------------------------------------------------------------------

def _is_dict_view_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _DICT_VIEW_METHODS
        and not node.args
        and not node.keywords
    )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _comp_over(
    node: ast.AST, predicate: Callable[[ast.AST], bool]
) -> Optional[ast.AST]:
    """The offending iterable when an *ordered* comprehension draws from it."""
    if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
        first = node.generators[0].iter
        if predicate(first):
            return first
    return None


# ----------------------------------------------------------------------
# REPRO10x — determinism
# ----------------------------------------------------------------------

@register
class DictOrderMaterialized(Rule):
    """REPRO101: raw dict-view iteration in order-sensitive modules."""

    rule_id = "REPRO101"
    name = "dict-order-materialized"
    rationale = (
        "In repro.mining/core/trees/graphs, dict iteration order is "
        "discovery order, not canonical order; loops and ordered "
        "comprehensions over .values()/.keys()/.items() tie feature ids, "
        "canonical strings and reports to it. Iterate sorted(d.items()) "
        "(canonical-key order) or suppress with a justified noqa."
    )

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return ctx.module_path.startswith(ORDER_SENSITIVE_PREFIXES)

    def visit_For(self, node: ast.For) -> None:
        if _is_dict_view_call(node.iter):
            method = node.iter.func.attr  # type: ignore[union-attr]
            self.report(
                node.iter,
                f"loop over .{method}() in an order-sensitive module; "
                "iterate sorted(...) in canonical-key order",
            )
        self.generic_visit(node)

    def _check_comp(self, node: ast.AST) -> None:
        offender = _comp_over(node, _is_dict_view_call)
        if offender is not None:
            wrapper = self.ctx.parent_call_name(node)
            if wrapper not in ORDER_INSENSITIVE_WRAPPERS:
                method = offender.func.attr  # type: ignore[union-attr]
                self.report(
                    offender,
                    f"ordered comprehension over .{method}(); wrap the "
                    "source in sorted(...) or the result in an "
                    "order-insensitive reduction",
                )
        self.generic_visit(node)

    visit_ListComp = _check_comp
    visit_GeneratorExp = _check_comp


@register
class SetIterationOrdered(Rule):
    """REPRO102: ordered output drawn directly from a set."""

    rule_id = "REPRO102"
    name = "set-iteration-ordered"
    rationale = (
        "Set iteration order depends on hashes — for str labels it varies "
        "per process under hash randomization. Any for-loop, ordered "
        "comprehension, or list()/tuple()/enumerate() over a set "
        "construction is run-to-run nondeterministic; sort it first."
    )

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self.report(
                node.iter,
                "loop over a set construction has nondeterministic order; "
                "use sorted(...)",
            )
        self.generic_visit(node)

    def _check_comp(self, node: ast.AST) -> None:
        offender = _comp_over(node, _is_set_expr)
        if offender is not None:
            wrapper = self.ctx.parent_call_name(node)
            if wrapper not in ORDER_INSENSITIVE_WRAPPERS:
                self.report(
                    offender,
                    "ordered comprehension over a set construction; "
                    "wrap it in sorted(...)",
                )
        self.generic_visit(node)

    visit_ListComp = _check_comp
    visit_GeneratorExp = _check_comp

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "enumerate")
            and node.args
            and _is_set_expr(node.args[0])
        ):
            self.report(
                node.args[0],
                f"{node.func.id}() over a set construction has "
                "nondeterministic order; use sorted(...)",
            )
        self.generic_visit(node)


@register
class NondeterministicSortKey(Rule):
    """REPRO103: sorting by id()/hash()."""

    rule_id = "REPRO103"
    name = "nondeterministic-sort-key"
    rationale = (
        "id() is an address (varies per run) and hash() of str is "
        "randomized; a sort keyed on either produces a different order "
        "every process. Sort by a canonical attribute (key string, size, "
        "support) instead."
    )

    _SORTERS = frozenset({"sorted", "min", "max"})

    def visit_Call(self, node: ast.Call) -> None:
        is_sorter = (
            isinstance(node.func, ast.Name) and node.func.id in self._SORTERS
        ) or (isinstance(node.func, ast.Attribute) and node.func.attr == "sort")
        if is_sorter:
            for kw in node.keywords:
                if kw.arg == "key" and self._bad_key(kw.value):
                    self.report(
                        kw.value,
                        "sort key based on id()/hash() is nondeterministic; "
                        "key on a canonical attribute",
                    )
        self.generic_visit(node)

    @staticmethod
    def _bad_key(value: ast.AST) -> bool:
        if isinstance(value, ast.Name) and value.id in ("id", "hash"):
            return True
        if isinstance(value, ast.Lambda):
            return any(
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Name)
                and n.func.id in ("id", "hash")
                for n in ast.walk(value.body)
            )
        return False


# ----------------------------------------------------------------------
# REPRO11x — RNG hygiene
# ----------------------------------------------------------------------

_RANDOM_ALLOWED_ATTRS = frozenset({"Random", "SystemRandom"})


@register
class ModuleRandomCall(Rule):
    """REPRO111: use of the module-level random state."""

    rule_id = "REPRO111"
    name = "module-random-call"
    rationale = (
        "random.shuffle/choice/seed/... share one hidden global generator: "
        "any other caller perturbs the stream and benchmark runs stop "
        "reproducing. Thread an explicit seeded random.Random through the "
        "public API instead (constructing random.Random is allowed)."
    )

    def run(self) -> List[Violation]:
        self._aliases = {
            alias.asname or alias.name
            for node in ast.walk(self.ctx.tree)
            if isinstance(node, ast.Import)
            for alias in node.names
            if alias.name == "random"
        }
        if self._aliases:
            self.visit(self.ctx.tree)
        return self.violations

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id in self._aliases
            and node.attr not in _RANDOM_ALLOWED_ATTRS
        ):
            self.report(
                node,
                f"module-level random.{node.attr} uses hidden global state; "
                "inject a seeded random.Random",
            )
        self.generic_visit(node)


@register
class RandomFunctionImport(Rule):
    """REPRO112: importing stateful functions from random."""

    rule_id = "REPRO112"
    name = "random-function-import"
    rationale = (
        "`from random import shuffle` binds the global generator under a "
        "local name, hiding the REPRO111 hazard from review. Import the "
        "module and construct random.Random(seed)."
    )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name not in _RANDOM_ALLOWED_ATTRS:
                    self.report(
                        node,
                        f"from random import {alias.name} aliases the global "
                        "generator; inject a seeded random.Random",
                    )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# REPRO12x — API hygiene
# ----------------------------------------------------------------------

@register
class BroadExcept(Rule):
    """REPRO121: bare/broad exception handlers that swallow."""

    rule_id = "REPRO121"
    name = "broad-except"
    rationale = (
        "A bare `except:` (or `except Exception`) that does not re-raise "
        "turns contract violations and real bugs into silent wrong answers "
        "— fatal in a filtering pipeline whose only promise is exactness. "
        "Catch the narrow ReproError subclass, or re-raise."
    )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self._is_broad(node.type) and not any(
            isinstance(n, ast.Raise) for b in node.body for n in ast.walk(b)
        ):
            what = "bare except" if node.type is None else "broad except"
            self.report(
                node,
                f"{what} without re-raise swallows errors; catch a narrow "
                "exception type",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_broad(htype: Optional[ast.AST]) -> bool:
        if htype is None:
            return True
        if isinstance(htype, ast.Name):
            return htype.id in ("Exception", "BaseException")
        if isinstance(htype, ast.Tuple):
            return any(BroadExcept._is_broad(e) for e in htype.elts)
        return False


@register
class StrayPrint(Rule):
    """REPRO122: print() outside user-facing surfaces."""

    rule_id = "REPRO122"
    name = "stray-print"
    rationale = (
        "print() inside library code pollutes stdout consumed by the CLI "
        "and benchmark reports. Only repro.cli, repro.bench, repro.analysis "
        "and __main__ modules may print; elsewhere return data or raise."
    )

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        mp = ctx.module_path
        if mp.endswith("__main__.py"):
            return False
        return not mp.startswith(_PRINT_ALLOWED_PREFIXES)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            self.report(
                node, "print() in library code; return data or use the CLI layer"
            )
        self.generic_visit(node)


@register
class IndexGraphMutation(Rule):
    """REPRO123: mutating a graph owned by a database/index."""

    rule_id = "REPRO123"
    name = "index-graph-mutation"
    rationale = (
        "Indexes cache per-graph state (support sets, center locations, "
        "distance oracles) computed at build time; calling "
        "add_edge/add_vertex on a graph fetched from a database container "
        "silently invalidates all of it. Copy the graph, or go through the "
        "index maintenance API (insert/delete)."
    )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _GRAPH_MUTATORS
            and self._receiver_is_owned(func.value)
        ):
            self.report(
                node,
                f"{func.attr}() on a graph owned by a database/index; copy "
                "it or use the maintenance API",
            )
        self.generic_visit(node)

    @staticmethod
    def _receiver_is_owned(receiver: ast.AST) -> bool:
        for n in ast.walk(receiver):
            if isinstance(n, ast.Subscript):
                base = n.value
                if isinstance(base, ast.Name) and base.id in _DB_NAMES:
                    return True
                if isinstance(base, ast.Attribute) and base.attr in _DB_NAMES:
                    return True
            if isinstance(n, ast.Attribute) and n.attr in ("database", "_database"):
                return True
        return False


def matches_rule_patterns(rule_id: str, patterns: Iterable[str]) -> bool:
    """True when ``rule_id`` matches any id *or prefix* in ``patterns``.

    Prefix matching lets CI select a whole family (``--select REPRO2``
    runs REPRO201..REPRO204) without enumerating members.
    """
    return any(rule_id == p or rule_id.startswith(p) for p in patterns)


def rules_for(ctx: FileContext, select: Optional[Iterable[str]] = None,
              ignore: Optional[Iterable[str]] = None) -> List[Rule]:
    """Instantiate every applicable rule for one file.

    ``select``/``ignore`` entries are exact rule ids or family prefixes
    (``REPRO2`` matches every REPRO2xx rule).
    """
    selected = list(select) if select else None
    ignored = list(ignore) if ignore else []
    out: List[Rule] = []
    for cls in all_rules():
        if selected is not None and not matches_rule_patterns(cls.rule_id, selected):
            continue
        if matches_rule_patterns(cls.rule_id, ignored):
            continue
        if cls.applies_to(ctx):
            out.append(cls(ctx))
    return out
