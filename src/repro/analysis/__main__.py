"""Command-line driver: ``python -m repro.analysis <command>``.

Commands
--------
``lint <paths...>``
    Run every rule over the given files/directories.  Exits 0 when
    clean, 1 when violations remain — this is the CI gate.
``rules``
    Print the rule catalog (id, name, rationale).
``contracts``
    Run the runtime-contract self-test against the production
    implementations; exits non-zero on any contract violation.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.contracts import ContractViolation, self_test
from repro.analysis.engine import PARSE_ERROR_RULE, lint_paths
from repro.analysis.report import render_json, render_sarif, render_text
from repro.analysis.rules import REGISTRY, rule_catalog


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis and runtime contracts for the TreePi repo",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="run the lint rules over paths")
    lint.add_argument("paths", nargs="+", help="files or directories to lint")
    lint.add_argument(
        "--select",
        help="comma-separated rule ids or family prefixes (REPRO2 = "
        "every REPRO2xx rule) to run exclusively",
    )
    lint.add_argument(
        "--ignore",
        help="comma-separated rule ids or family prefixes to skip",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text", dest="fmt"
    )
    lint.add_argument(
        "--statistics",
        action="store_true",
        help="append a per-rule violation count summary",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        help="subtract the findings recorded in this committed baseline "
        "file from the failure set (see docs/ANALYSIS.md)",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="regenerate the --baseline file from the current findings "
        "and exit 0",
    )
    lint.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=".repro-lint-cache",
        help="directory for the incremental lint cache "
        "(default: %(default)s)",
    )
    lint.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the incremental lint cache (always re-analyze)",
    )

    sub.add_parser("rules", help="print the rule catalog")
    sub.add_parser("contracts", help="run the runtime-contract self-test")
    return parser


def _split(csv: Optional[str]) -> Optional[List[str]]:
    if not csv:
        return None
    return [item.strip().upper() for item in csv.split(",") if item.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "lint":
        select, ignore = _split(args.select), _split(args.ignore)
        known = sorted(set(REGISTRY) | {PARSE_ERROR_RULE})
        unknown = [
            r
            for r in (select or []) + (ignore or [])
            if not any(rule_id == r or rule_id.startswith(r) for rule_id in known)
        ]
        if unknown:
            print(
                f"error: unknown rule id(s) {', '.join(unknown)} "
                f"(see `python -m repro.analysis rules`)",
                file=sys.stderr,
            )
            return 2
        if args.update_baseline and not args.baseline:
            print(
                "error: --update-baseline requires --baseline FILE",
                file=sys.stderr,
            )
            return 2
        try:
            report = lint_paths(
                args.paths,
                select=select,
                ignore=ignore,
                cache_dir=None if args.no_cache else args.cache_dir,
            )
        except OSError as exc:
            print(f"error: cannot read {exc.filename}: {exc.strerror}", file=sys.stderr)
            return 2
        if args.update_baseline:
            count = write_baseline(args.baseline, report)
            print(
                f"baseline: wrote {count} fingerprint(s) covering "
                f"{len(report.violations)} finding(s) to {args.baseline}"
            )
            return 0
        if args.baseline:
            try:
                apply_baseline(report, load_baseline(args.baseline))
            except BaselineError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        if args.fmt == "json":
            print(render_json(report))
        elif args.fmt == "sarif":
            print(render_sarif(report))
        else:
            print(render_text(report, statistics=args.statistics))
        return 0 if report.ok else 1

    if args.command == "rules":
        print(rule_catalog())
        return 0

    if args.command == "contracts":
        try:
            for line in self_test():
                print(line)
        except ContractViolation as exc:
            print(f"CONTRACT VIOLATION: {exc}", file=sys.stderr)
            return 2
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
