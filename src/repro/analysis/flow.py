"""Interprocedural flow model shared by the REPRO3xx hot-path rules.

The REPRO1xx/2xx families are lexical: they judge one statement (or one
class) at a time.  The budget discipline introduced with
:class:`~repro.core.budget.QueryBudget` cannot be checked that way — a
``CancellationToken`` is *threaded*: ``QueryEngine.query`` creates it,
forwards it through ``plan``/``center_prune``/``verify`` and down into
the enumerator loops of :mod:`repro.graphs.isomorphism`, where
``token.charge()`` finally runs every 64 backtracking steps.  Whether a
given loop is cancellable is a property of the *call graph*, not of any
single line.

This module builds that model for one file:

* a function table (module functions, methods, nested closures) with
  qualified names and lexical parent links;
* in-file call resolution — ``self.m()`` to the owning class's method,
  bare ``f()`` through the lexical scope chain (own nested defs, then
  enclosing functions' nested defs, then module level);
* cancellation-token bindings (parameters named/annotated as tokens,
  locals assigned from ``budget.start()``-style expressions, closure
  captures) and per-call forwarding detection (keyword ``token=`` or a
  positional token name);
* two fixpoints over resolved calls: *transitively loops* (has a
  ``for``/``while``, calls something that does, or recurses) and
  *transitively checkpoints* (touches ``token.poll/charge/...``,
  forwards the token, or calls an in-file function that does);
* the *hot set*: functions marked :func:`hot_path`, spine methods of
  the serving layer, everything reachable from them through resolved
  calls, and their nested closures.

Only in-file edges are resolved here; cross-file calls are answered by
a pluggable :class:`ExternalSurface`.  When a file is analyzed inside a
whole-program run (:mod:`repro.analysis.program`), the surface resolves
the call through the real project-wide call graph.  When a file is
analyzed standalone, the surface falls back to the legacy
:data:`TOKEN_CALLEES` name registry — kept only as a deprecation shim;
the registry approximates what real resolution now computes.

The :func:`hot_path` decorator is the runtime half: a zero-cost marker
that production code puts on its hot functions so the analyzer (and
human readers) know the REPRO304/305 complexity rules apply.
"""

from __future__ import annotations

import ast
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

_F = TypeVar("_F", bound=Callable[..., Any])

#: Serving-layer entry points and spine stages: any function with one of
#: these names defined under ``repro/core`` is hot by inference, without
#: needing the decorator.
SPINE_FUNCTIONS = frozenset(
    {
        "query",
        "query_batch",
        "plan",
        "verify",
        "_execute",
        "_execute_batch",
        "_verify_plans",
    }
)

#: .. deprecated:: whole-program analysis
#:    The hard-coded plan→prune→verify name registry.  It survives only
#:    as the *fallback* surface for standalone single-file analysis
#:    (fixtures, ``lint_source``); whole-program runs resolve cross-file
#:    calls for real via :mod:`repro.analysis.program`.  Every name here
#:    denotes an exported spine function that loops internally and
#:    accepts a ``token`` parameter.
TOKEN_CALLEES = frozenset(
    {
        "plan",
        "verify",
        "verify_candidate",
        "subgraph_monomorphisms",
        "is_subgraph_isomorphic",
        "count_embeddings",
        "are_isomorphic",
        "automorphisms",
        "center_prune",
        "check_center_constraints",
    }
)

#: Parameter names that bind a cancellation token.
TOKEN_PARAM_NAMES = frozenset({"token", "cancellation_token"})

#: Attribute accesses on a token that count as a checkpoint.
CHECKPOINT_ATTRS = frozenset({"poll", "charge", "expired_now", "expired"})

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)
_COMP_NODES = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def hot_path(fn: _F) -> _F:
    """Mark ``fn`` as hot-path code for the REPRO3xx analyzer.

    Runtime no-op (sets ``__repro_hot_path__`` and returns ``fn``
    unchanged — no wrapper, no call overhead).  The static analyzer
    matches the decorator lexically, so stacking under ``@staticmethod``
    or over ``@guarded_by`` both work; everything the marked function
    calls in the same file inherits hotness through the call graph.
    """
    setattr(fn, "__repro_hot_path__", True)
    return fn


def _decorator_name(dec: ast.expr) -> Optional[str]:
    target = dec.func if isinstance(dec, ast.Call) else dec
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


def _annotation_is_token(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return "CancellationToken" in annotation.value
    return "CancellationToken" in ast.unparse(annotation)


class ExternalInfo(NamedTuple):
    """What a surface knows about a call that escapes the current file.

    ``loops`` is scoped to the cancellation discipline: it reports
    *token-governed* looping (the callee both accepts a token and
    transitively loops), which is exactly what the legacy registry
    asserted for its members.  A cross-file callee that loops but cannot
    take a token is not a severed cancellation chain, so surfaces report
    it as non-looping here; the whole-program model still tracks its
    true looping status for the REPRO4xx family.
    """

    accepts_token: bool
    loops: bool


class ExternalSurface:
    """Answers "what does this unresolved (cross-file) call reach?".

    The default implementation knows nothing; see
    :class:`LegacyTokenRegistry` for the standalone fallback and
    ``repro.analysis.program.ResolvedSurface`` for real whole-program
    resolution.
    """

    def info(
        self,
        site: "CallSite",
        fn: Optional["FunctionInfo"],
        module_path: str,
    ) -> Optional[ExternalInfo]:
        return None


class LegacyTokenRegistry(ExternalSurface):
    """Deprecation shim: the old :data:`TOKEN_CALLEES` name registry.

    Used only when a file is analyzed without a whole-program model.
    Every registered name is assumed to accept a token and loop — the
    approximation real resolution replaces.
    """

    def __init__(self, names: Optional[Iterable[str]] = None) -> None:
        self._names = frozenset(TOKEN_CALLEES if names is None else names)

    def info(
        self,
        site: "CallSite",
        fn: Optional["FunctionInfo"],
        module_path: str,
    ) -> Optional[ExternalInfo]:
        if site.name in self._names:
            return ExternalInfo(accepts_token=True, loops=True)
        return None


class CallSite:
    """One call expression owned by a function, with its loop context."""

    __slots__ = ("node", "name", "is_self_method", "loop_stack")

    def __init__(
        self,
        node: ast.Call,
        name: Optional[str],
        is_self_method: bool,
        loop_stack: Tuple[ast.AST, ...],
    ) -> None:
        self.node = node
        self.name = name
        self.is_self_method = is_self_method
        self.loop_stack = loop_stack

    def statement_loops(self) -> Tuple[ast.AST, ...]:
        """Enclosing ``for``/``while`` statements (comprehensions excluded)."""
        return tuple(n for n in self.loop_stack if isinstance(n, _LOOP_NODES))


class FunctionInfo:
    """One function (module-level, method, or nested closure)."""

    def __init__(
        self,
        node: ast.AST,
        parent: Optional["FunctionInfo"],
        class_name: Optional[str],
    ) -> None:
        self.node = node
        self.name: str = node.name  # type: ignore[attr-defined]
        self.parent = parent
        self.class_name = class_name
        self.children: Dict[str, "FunctionInfo"] = {}
        self.params: List[str] = []
        self.token_params: Set[str] = set()
        self.local_tokens: Set[str] = set()
        self.shadow_nodes: List[Tuple[ast.AST, str]] = []
        self.calls: List[CallSite] = []
        self.own_loops: List[ast.AST] = []
        self.checkpoint_nodes: List[ast.AST] = []
        #: every owned node (nested defs excluded) with its loop stack
        self.owned: List[Tuple[ast.AST, Tuple[ast.AST, ...]]] = []
        #: single-name assignment origins: name -> set of kinds seen
        #: ("list", "set", "setcall", "dict", "str", "other")
        self.origins: Dict[str, Set[str]] = {}
        self.marked_hot = any(
            _decorator_name(d) == "hot_path"
            for d in node.decorator_list  # type: ignore[attr-defined]
        )
        self._collect_params()

    # ------------------------------------------------------------------
    def _collect_params(self) -> None:
        args = self.node.args  # type: ignore[attr-defined]
        all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for a in all_args:
            self.params.append(a.arg)
            if a.arg in TOKEN_PARAM_NAMES or _annotation_is_token(a.annotation):
                self.token_params.add(a.arg)
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                self.params.append(extra.arg)

    @property
    def qualname(self) -> str:
        parts: List[str] = [self.name]
        if self.class_name:
            parts.insert(0, self.class_name)
        anc = self.parent
        while anc is not None:
            parts.insert(0, anc.name)
            if anc.class_name:
                parts.insert(0, anc.class_name)
            anc = anc.parent
        return ".".join(parts)

    # ------------------------------------------------------------------
    # scope-chain lookups
    # ------------------------------------------------------------------
    def token_names(self) -> Set[str]:
        """Token bindings visible in this function (closures included)."""
        names = set(self.token_params) | set(self.local_tokens)
        if self.parent is not None:
            names |= self.parent.token_names()
        return names

    def origin_of(self, name: str) -> Optional[Set[str]]:
        """Assignment-origin kinds of ``name``, searching the closure chain."""
        fn: Optional[FunctionInfo] = self
        while fn is not None:
            if name in fn.origins:
                return fn.origins[name]
            if name in fn.params:
                return {"param"}
            fn = fn.parent
        return None

    def owned_of_type(
        self, *types: type
    ) -> Iterator[Tuple[ast.AST, Tuple[ast.AST, ...]]]:
        for node, stack in self.owned:
            if isinstance(node, types):
                yield node, stack


def _value_origin(value: ast.expr) -> str:
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return "str"
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        builtin = value.func.id
        if builtin in ("list", "sorted"):
            return "list"
        if builtin in ("set", "frozenset"):
            return "setcall"
        if builtin == "dict":
            return "dict"
    return "other"


class FileFlow:
    """The interprocedural model of one source file."""

    def __init__(
        self,
        tree: ast.Module,
        module_path: str,
        surface: Optional[ExternalSurface] = None,
    ) -> None:
        self.module_path = module_path
        self.functions: List[FunctionInfo] = []
        self.module_functions: Dict[str, FunctionInfo] = {}
        self.class_methods: Dict[str, Dict[str, FunctionInfo]] = {}
        self._collect(tree, parent=None, class_name=None)
        for fn in self.functions:
            self._scan(fn)
        self._resolved: Dict[int, Optional[FunctionInfo]] = {}
        self._site_owner: Dict[int, FunctionInfo] = {}
        for fn in self.functions:
            for site in fn.calls:
                self._resolved[id(site)] = self._resolve(fn, site)
                self._site_owner[id(site)] = fn
        self._surface = surface if surface is not None else LegacyTokenRegistry()
        self._surface_cache: Dict[int, Optional[ExternalInfo]] = {}
        # Fixpoints are lazy: a whole-program model builds every file's
        # flow first (local tables only), computes its global facts, and
        # only then do surface-dependent fixpoints run on demand.
        self._loops: Optional[Dict[FunctionInfo, bool]] = None
        self._cycles: Optional[Set[FunctionInfo]] = None
        self._checkpoints: Optional[Dict[FunctionInfo, bool]] = None
        self._hot: Optional[Set[FunctionInfo]] = None

    # ------------------------------------------------------------------
    # table construction
    # ------------------------------------------------------------------
    def _collect(
        self,
        node: ast.AST,
        parent: Optional[FunctionInfo],
        class_name: Optional[str],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNC_NODES):
                info = FunctionInfo(child, parent, class_name)
                self.functions.append(info)
                if class_name is not None:
                    self.class_methods.setdefault(class_name, {}).setdefault(
                        info.name, info
                    )
                elif parent is not None:
                    parent.children.setdefault(info.name, info)
                else:
                    self.module_functions.setdefault(info.name, info)
                self._collect(child, parent=info, class_name=None)
            elif isinstance(child, ast.ClassDef):
                self._collect(child, parent=parent, class_name=child.name)
            elif isinstance(child, ast.Lambda):
                continue
            else:
                self._collect(child, parent=parent, class_name=class_name)

    # ------------------------------------------------------------------
    # per-function scan (ownership stops at nested defs/lambdas/classes)
    # ------------------------------------------------------------------
    def _scan(self, fn: FunctionInfo) -> None:
        stack: List[ast.AST] = []

        def walk(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, _FUNC_NODES + (ast.Lambda, ast.ClassDef)):
                    continue
                fn.owned.append((child, tuple(stack)))
                self._note(fn, child, stack)
                if isinstance(child, _LOOP_NODES + _COMP_NODES):
                    stack.append(child)
                    walk(child)
                    stack.pop()
                else:
                    walk(child)

        for stmt in fn.node.body:  # type: ignore[attr-defined]
            fn.owned.append((stmt, ()))
            self._note(fn, stmt, stack)
            if isinstance(stmt, _LOOP_NODES):
                stack.append(stmt)
                walk(stmt)
                stack.pop()
            elif not isinstance(stmt, _FUNC_NODES + (ast.ClassDef,)):
                walk(stmt)

    def _note(self, fn: FunctionInfo, node: ast.AST, stack: List[ast.AST]) -> None:
        if isinstance(node, _LOOP_NODES):
            fn.own_loops.append(node)
        elif isinstance(node, ast.Call):
            func = node.func
            name: Optional[str] = None
            is_self = False
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
                is_self = isinstance(func.value, ast.Name) and func.value.id == "self"
            fn.calls.append(CallSite(node, name, is_self, tuple(stack)))
        elif isinstance(node, ast.Assign):
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                self._note_binding(fn, node, node.targets[0].id, node.value)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.value is not None:
                self._note_binding(fn, node, node.target.id, node.value)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                self._note_binding(fn, node, node.target.id, None)
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            if (
                node.attr in CHECKPOINT_ATTRS
                and isinstance(node.value, ast.Name)
                and node.value.id in TOKEN_PARAM_NAMES
            ):
                fn.checkpoint_nodes.append(node)

    def _note_binding(
        self,
        fn: FunctionInfo,
        node: ast.AST,
        name: str,
        value: Optional[ast.expr],
    ) -> None:
        if name in TOKEN_PARAM_NAMES:
            if name in fn.token_params:
                fn.shadow_nodes.append((node, name))
            else:
                fn.local_tokens.add(name)
        kind = _value_origin(value) if value is not None else "other"
        fn.origins.setdefault(name, set()).add(kind)

    # ------------------------------------------------------------------
    # call resolution
    # ------------------------------------------------------------------
    def _resolve(
        self, fn: FunctionInfo, site: CallSite
    ) -> Optional[FunctionInfo]:
        if site.name is None:
            return None
        if site.is_self_method:
            anc: Optional[FunctionInfo] = fn
            while anc is not None and anc.class_name is None:
                anc = anc.parent
            if anc is not None:
                return self.class_methods.get(anc.class_name, {}).get(site.name)
            return None
        if isinstance(site.node.func, ast.Attribute):
            return None  # non-self attribute receiver: out of scope
        scope: Optional[FunctionInfo] = fn
        while scope is not None:
            if site.name in scope.children:
                return scope.children[site.name]
            scope = scope.parent
        return self.module_functions.get(site.name)

    def resolved(self, site: CallSite) -> Optional[FunctionInfo]:
        return self._resolved.get(id(site))

    def external(self, site: CallSite) -> Optional[ExternalInfo]:
        """Surface knowledge about a call the in-file tables cannot see."""
        key = id(site)
        if key not in self._surface_cache:
            self._surface_cache[key] = self._surface.info(
                site, self._site_owner.get(key), self.module_path
            )
        return self._surface_cache[key]

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    def forwards_token(self, fn: FunctionInfo, site: CallSite) -> bool:
        """Does this call pass a token binding on (keyword or positional)?"""
        for kw in site.node.keywords:
            if kw.arg in TOKEN_PARAM_NAMES:
                return True
        names = fn.token_names()
        return any(
            isinstance(a, ast.Name) and a.id in names for a in site.node.args
        )

    def accepts_token(self, site: CallSite) -> bool:
        """Can the callee take a token (resolved signature or surface)?"""
        target = self.resolved(site)
        if target is not None:
            return bool(target.token_params)
        info = self.external(site)
        return info.accepts_token if info is not None else False

    # ------------------------------------------------------------------
    # fixpoints
    # ------------------------------------------------------------------
    def _loop_fixpoint(self) -> Dict[FunctionInfo, bool]:
        loops: Dict[FunctionInfo, bool] = {}
        for fn in self.functions:
            external_loop = False
            for site in fn.calls:
                if self.resolved(site) is not None:
                    continue
                info = self.external(site)
                if info is not None and info.loops:
                    external_loop = True
                    break
            loops[fn] = bool(fn.own_loops) or external_loop
        changed = True
        while changed:
            changed = False
            for fn in self.functions:
                if loops[fn]:
                    continue
                for site in fn.calls:
                    target = self.resolved(site)
                    if target is not None and loops[target]:
                        loops[fn] = True
                        changed = True
                        break
        return loops

    def _cycle_set(self) -> Set[FunctionInfo]:
        cyclic: Set[FunctionInfo] = set()
        for fn in self.functions:
            seen: Set[FunctionInfo] = set()
            frontier = [
                t
                for t in (self.resolved(s) for s in fn.calls)
                if t is not None
            ]
            while frontier:
                cur = frontier.pop()
                if cur is fn:
                    cyclic.add(fn)
                    break
                if cur in seen:
                    continue
                seen.add(cur)
                frontier.extend(
                    t
                    for t in (self.resolved(s) for s in cur.calls)
                    if t is not None
                )
        return cyclic

    def _checkpoint_fixpoint(self) -> Dict[FunctionInfo, bool]:
        cp: Dict[FunctionInfo, bool] = {}
        for fn in self.functions:
            cp[fn] = bool(fn.checkpoint_nodes) or any(
                self.forwards_token(fn, site) for site in fn.calls
            )
        changed = True
        while changed:
            changed = False
            for fn in self.functions:
                if cp[fn]:
                    continue
                for site in fn.calls:
                    target = self.resolved(site)
                    if target is not None and target is not fn and cp[target]:
                        cp[fn] = True
                        changed = True
                        break
        return cp

    def _hot_set(self) -> Set[FunctionInfo]:
        in_core = self.module_path.startswith("repro/core")
        hot: Set[FunctionInfo] = set()
        frontier: List[FunctionInfo] = []
        for fn in self.functions:
            if fn.marked_hot or (in_core and fn.name in SPINE_FUNCTIONS):
                hot.add(fn)
                frontier.append(fn)
        while frontier:
            fn = frontier.pop()
            nexts = [self.resolved(site) for site in fn.calls]
            nexts.extend(fn.children.values())
            for target in nexts:
                if target is not None and target not in hot:
                    hot.add(target)
                    frontier.append(target)
        return hot

    # ------------------------------------------------------------------
    # queries used by the rules
    # ------------------------------------------------------------------
    @property
    def hot(self) -> Set[FunctionInfo]:
        if self._hot is None:
            self._hot = self._hot_set()
        return self._hot

    def _loops_map(self) -> Dict[FunctionInfo, bool]:
        if self._loops is None:
            self._loops = self._loop_fixpoint()
        return self._loops

    def _cycles_set(self) -> Set[FunctionInfo]:
        if self._cycles is None:
            self._cycles = self._cycle_set()
        return self._cycles

    def _checkpoints_map(self) -> Dict[FunctionInfo, bool]:
        if self._checkpoints is None:
            self._checkpoints = self._checkpoint_fixpoint()
        return self._checkpoints

    def transitively_loops(self, fn: FunctionInfo) -> bool:
        return self._loops_map()[fn] or fn in self._cycles_set()

    def transitively_checkpoints(self, fn: FunctionInfo) -> bool:
        return self._checkpoints_map()[fn]

    def is_recursive(self, fn: FunctionInfo) -> bool:
        return fn in self._cycles_set()

    def is_hot(self, fn: FunctionInfo) -> bool:
        return fn in self.hot

    def call_loops(self, site: CallSite) -> bool:
        """Does the call target loop (resolved fixpoint or surface)?"""
        target = self.resolved(site)
        if target is not None:
            return self.transitively_loops(target)
        info = self.external(site)
        return info.loops if info is not None else False

    def subtree_checkpoints(self, fn: FunctionInfo, root: ast.AST) -> bool:
        """Is there a token checkpoint lexically inside ``root``?

        Counts direct ``token.poll/charge/...`` touches, token-forwarding
        calls, and calls to in-file functions that transitively
        checkpoint.  Nested function *definitions* inside ``root`` do
        not count (defining is not calling).
        """
        inside: Set[int] = set()

        def collect(node: ast.AST) -> None:
            inside.add(id(node))
            for child in ast.iter_child_nodes(node):
                if isinstance(child, _FUNC_NODES + (ast.Lambda,)):
                    continue
                collect(child)

        collect(root)
        for node in fn.checkpoint_nodes:
            if id(node) in inside:
                return True
        for site in fn.calls:
            if id(site.node) not in inside:
                continue
            if self.forwards_token(fn, site):
                return True
            target = self.resolved(site)
            if target is not None and target is not fn:
                if self.transitively_checkpoints(target):
                    return True
        return False
