"""Lint driver: walk files, run rules, honor ``noqa`` suppressions.

The engine is a pure library (no printing): :func:`lint_paths` returns a
:class:`LintReport` that the CLI/report layer renders.  Suppression
follows the flake8 convention —

* ``# noqa`` on a line suppresses every rule on that line,
* ``# noqa: REPRO101`` (comma-separated list allowed) suppresses only
  the named rules.

A file that fails to parse is itself a violation (``REPRO001``): the
gate must not silently skip unparseable code.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import repro.analysis.concurrency  # noqa: F401 - registers the REPRO2xx rule family
import repro.analysis.hotpath  # noqa: F401 - registers the REPRO3xx rule family
import repro.analysis.soundness  # noqa: F401 - registers the REPRO4xx rule family
from repro.analysis.cache import (
    LintCache,
    entry_key,
    file_digest,
    run_fingerprint,
)
from repro.analysis.program import ProgramModel, build_program
from repro.analysis.rules import FileContext, matches_rule_patterns, rules_for
from repro.analysis.violations import Violation

_NOQA_RE = re.compile(
    r"#\s*noqa(?P<codes>\s*:\s*[A-Z][A-Z0-9]*(?:\s*,\s*[A-Z][A-Z0-9]*)*)?",
    re.IGNORECASE,
)

#: Rule id reserved for files the engine itself rejects (syntax errors).
PARSE_ERROR_RULE = "REPRO001"


@dataclass
class LintReport:
    """Outcome of one lint run.

    ``suppressed_violations`` keeps the hits silenced by ``noqa`` so the
    JSON report (a CI artifact) can audit what was waived, not just what
    failed.  ``baselined_violations`` holds findings subtracted by a
    committed baseline file (:mod:`repro.analysis.baseline`);
    ``baseline_applied`` records that a baseline pass ran, so renderers
    know to include the extra fields.
    """

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    suppressed_violations: List[Violation] = field(default_factory=list)
    baselined_violations: List[Violation] = field(default_factory=list)
    baseline_applied: bool = False

    @property
    def suppressed(self) -> int:
        return len(self.suppressed_violations)

    @property
    def baselined(self) -> int:
        return len(self.baselined_violations)

    @property
    def ok(self) -> bool:
        return not self.violations

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for v in self.violations:
            counts[v.rule_id] = counts.get(v.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def _suppressed_codes(line: str) -> Optional[frozenset]:
    """Codes suppressed on ``line``; empty frozenset means *all* codes."""
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    codes = match.group("codes")
    if not codes:
        return frozenset()
    return frozenset(c.strip().upper() for c in codes.lstrip(" :").split(","))


def lint_source_full(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    tree: Optional[ast.Module] = None,
    program: Optional[ProgramModel] = None,
) -> Tuple[List[Violation], List[Violation]]:
    """Lint one source string; returns ``(kept, noqa_suppressed)`` lists.

    ``path`` matters: several rules scope themselves by module location
    (e.g. REPRO101 only fires inside order-sensitive packages, REPRO122
    exempts the CLI).  Both lists are sorted by location.

    ``tree`` lets the caller share one parse per file (the driver parses
    every file exactly once for the whole-program model); ``program``
    attaches that model so cross-module rules resolve real call targets
    instead of per-file approximations.
    """
    if tree is None:
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return (
                [
                    Violation(
                        path=path,
                        line=exc.lineno or 0,
                        col=(exc.offset or 0),
                        rule_id=PARSE_ERROR_RULE,
                        message=f"file does not parse: {exc.msg}",
                    )
                ],
                [],
            )
    ctx = FileContext(path, source, tree)
    ctx.program = program
    raw: List[Violation] = []
    for rule in rules_for(ctx, select=select, ignore=ignore):
        raw.extend(rule.run())

    lines = source.splitlines()
    kept: List[Violation] = []
    suppressed: List[Violation] = []
    for violation in raw:
        line_text = lines[violation.line - 1] if 0 < violation.line <= len(lines) else ""
        codes = _suppressed_codes(line_text)
        if codes is not None and (not codes or violation.rule_id in codes):
            suppressed.append(violation)
            continue
        kept.append(violation)
    return sorted(kept), sorted(suppressed)


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint one source string, returning only the unsuppressed violations."""
    kept, _ = lint_source_full(source, path, select=select, ignore=ignore)
    return kept


def lint_file(
    path: Union[str, Path],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint one file on disk."""
    p = Path(path)
    return lint_source(
        p.read_text(encoding="utf-8"), str(p), select=select, ignore=ignore
    )


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated file list."""
    seen: Dict[Path, None] = {}
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                seen.setdefault(f, None)
        else:
            seen.setdefault(p, None)
    return sorted(seen)


def _selected(
    rule_id: str,
    select: Optional[List[str]],
    ignore: Optional[List[str]],
) -> bool:
    """Mirror of :func:`rules_for`'s select/ignore semantics by rule id
    (REPRO001 parse errors are always reported, as in lint_source)."""
    if rule_id == PARSE_ERROR_RULE:
        return True
    if select is not None and not matches_rule_patterns(rule_id, select):
        return False
    if ignore and matches_rule_patterns(rule_id, ignore):
        return False
    return True


def _parse_or_none(source: str) -> Optional[ast.Module]:
    try:
        return ast.parse(source)
    except SyntaxError:
        return None


def lint_paths(
    paths: Sequence[Union[str, Path]],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    whole_program: bool = True,
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` and aggregate a report.

    Every file is parsed once; the shared trees feed a whole-program
    model (:mod:`repro.analysis.program`) so cross-module rules resolve
    real call targets.  ``whole_program=False`` keeps the legacy
    per-file mode (``TOKEN_CALLEES`` fallback surface) — used by the
    registry-vs-resolution differential test.

    With ``cache_dir`` set, per-file *full-rule* findings are cached by
    content hash (see :mod:`repro.analysis.cache`); ``select``/
    ``ignore`` filtering happens at read time so one entry serves every
    family selection.
    """
    report = LintReport()
    select = list(select) if select else None
    ignore = list(ignore) if ignore else None
    files = iter_python_files(paths)
    sources: List[Tuple[str, str]] = [
        (str(f), Path(f).read_text(encoding="utf-8")) for f in files
    ]

    if cache_dir is None:
        program: Optional[ProgramModel] = None
        trees: Dict[str, Optional[ast.Module]] = {
            path: _parse_or_none(src) for path, src in sources
        }
        if whole_program:
            program = build_program(
                [(path, src, trees[path]) for path, src in sources]
            )
        for path, src in sources:
            report.files_checked += 1
            kept, suppressed = lint_source_full(
                src,
                path,
                select=select,
                ignore=ignore,
                tree=trees[path],
                program=program,
            )
            report.violations.extend(kept)
            report.suppressed_violations.extend(suppressed)
    else:
        cache = LintCache(cache_dir)
        digests = {path: file_digest(src) for path, src in sources}
        fingerprint = run_fingerprint(digests.items())
        keys = {
            path: entry_key(path, digests[path], fingerprint)
            for path, _ in sources
        }
        results: Dict[str, Tuple[List[Violation], List[Violation]]] = {}
        missing: List[Tuple[str, str]] = []
        for path, src in sources:
            hit = cache.load(keys[path])
            if hit is None:
                missing.append((path, src))
            else:
                results[path] = hit
        if missing:
            trees = {path: _parse_or_none(src) for path, src in sources}
            shared = build_program(
                [(path, src, trees[path]) for path, src in sources]
            )
            for path, src in missing:
                kept, suppressed = lint_source_full(
                    src,
                    path,
                    select=None,
                    ignore=None,
                    tree=trees[path],
                    program=shared,
                )
                cache.store(keys[path], kept, suppressed)
                results[path] = (kept, suppressed)
        for path, _src in sources:
            report.files_checked += 1
            kept, suppressed = results[path]
            report.violations.extend(
                v for v in kept if _selected(v.rule_id, select, ignore)
            )
            report.suppressed_violations.extend(
                v for v in suppressed if _selected(v.rule_id, select, ignore)
            )

    report.violations.sort()
    report.suppressed_violations.sort()
    return report
