"""Incremental lint cache, content-hash keyed.

Four rule families now run in CI; re-parsing and re-analyzing an
unchanged tree four times (or on every push) is pure waste.  The cache
stores, per file, the *full-rule* finding set — keyed by the file's
content hash, its path, and a run fingerprint covering every file in
the lint set plus the analyzer's own sources.  ``--select``/``--ignore``
filtering happens at read time, so one cached entry serves every family
selection (the CI matrix shares a single analysis pass).

Keying on the whole-run fingerprint is deliberate: whole-program rules
(REPRO3xx via the resolved surface, all of REPRO4xx) depend on *other*
files, so any content change anywhere invalidates everything — correct
first, fast second.  The warm path (nothing changed) skips parsing
entirely.

Entries live under ``.repro-lint-cache/`` (one JSON file per key);
``--no-cache`` bypasses the cache, and a corrupt or mismatched entry is
treated as a miss, never an error.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.violations import Violation

__all__ = ["LintCache", "analyzer_signature", "file_digest", "run_fingerprint"]

#: Bump when the entry layout (not the rule set) changes.
_SCHEMA_VERSION = 1

_analyzer_signature: Optional[str] = None


def analyzer_signature() -> str:
    """Hash of the analysis package's own sources.

    Editing any rule, the flow model, or the program model must
    invalidate every cached finding; hashing the package sources is
    cheaper and more honest than a hand-maintained version counter.
    """
    global _analyzer_signature
    if _analyzer_signature is None:
        digest = hashlib.sha256()
        package_dir = Path(__file__).resolve().parent
        for source in sorted(package_dir.glob("*.py")):
            digest.update(source.name.encode("utf-8"))
            digest.update(source.read_bytes())
        _analyzer_signature = digest.hexdigest()
    return _analyzer_signature


def file_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def run_fingerprint(digests: Iterable[Tuple[str, str]]) -> str:
    """Fingerprint of the whole lint set: (path, content-hash) pairs
    plus the analyzer signature."""
    h = hashlib.sha256()
    h.update(analyzer_signature().encode("utf-8"))
    h.update(str(_SCHEMA_VERSION).encode("utf-8"))
    for path, digest in sorted(digests):
        h.update(path.encode("utf-8"))
        h.update(digest.encode("utf-8"))
    return h.hexdigest()


def entry_key(path: str, digest: str, fingerprint: str) -> str:
    h = hashlib.sha256()
    h.update(path.encode("utf-8"))
    h.update(digest.encode("utf-8"))
    h.update(fingerprint.encode("utf-8"))
    return h.hexdigest()


def _violation_from_dict(row: object) -> Violation:
    if not isinstance(row, dict):
        raise TypeError("violation row is not a mapping")
    return Violation(
        path=str(row["path"]),
        line=int(row["line"]),
        col=int(row["col"]),
        rule_id=str(row["rule"]),
        message=str(row["message"]),
    )


class LintCache:
    """One directory of per-file finding entries."""

    def __init__(self, root: Union[str, Path]) -> None:
        self._root = Path(root)

    def _entry_path(self, key: str) -> Path:
        return self._root / f"{key}.json"

    def load(
        self, key: str
    ) -> Optional[Tuple[List[Violation], List[Violation]]]:
        """The cached (kept, suppressed) full-rule findings, or None."""
        try:
            payload = json.loads(
                self._entry_path(key).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema") != _SCHEMA_VERSION:
            return None
        try:
            kept = [_violation_from_dict(r) for r in payload["violations"]]
            suppressed = [
                _violation_from_dict(r) for r in payload["suppressed"]
            ]
        except (KeyError, TypeError, ValueError):
            return None
        return kept, suppressed

    def store(
        self,
        key: str,
        kept: Sequence[Violation],
        suppressed: Sequence[Violation],
    ) -> None:
        payload = {
            "schema": _SCHEMA_VERSION,
            "violations": [v.to_dict() for v in kept],
            "suppressed": [v.to_dict() for v in suppressed],
        }
        try:
            self._root.mkdir(parents=True, exist_ok=True)
            self._entry_path(key).write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
        except OSError:
            # A read-only or full disk degrades to "no cache", not a
            # lint failure.
            return
