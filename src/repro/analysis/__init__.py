"""Static analysis and runtime contracts for the TreePi reproduction.

TreePi's correctness rests on invariants the test suite can only sample:

* canonical strings (Section 4.2.2) must be stable under vertex
  relabeling — any iteration-order or hash-order dependence silently
  corrupts the feature index;
* tree centers (Theorem 1) are unique up to one edge — a wrong center
  breaks both canonical rooting and the Center Distance Constraint;
* the size-increasing support threshold σ(s) (Eq. 1) must be monotone —
  otherwise level-wise mining is incomplete.

This package enforces those properties two ways:

1. :mod:`repro.analysis.rules` + :mod:`repro.analysis.engine` — an
   AST-based lint framework with repo-specific rules (determinism, RNG
   hygiene, API hygiene, REPRO2xx concurrency safety, and the REPRO3xx
   hot-path/budget family built on the :mod:`repro.analysis.flow`
   interprocedural model), runnable as
   ``python -m repro.analysis lint src/``.  Violations can be suppressed
   per line with ``# noqa: REPRO1xx``, or wholesale via a committed
   baseline file (:mod:`repro.analysis.baseline`).
2. :mod:`repro.analysis.contracts` — debug-toggleable runtime assertions
   wired into :mod:`repro.trees`, :mod:`repro.graphs.canonical` and
   :mod:`repro.mining.support` (enable with ``REPRO_CONTRACTS=1`` or
   :func:`enable_contracts`).

The lint gate is part of CI: it must exit 0 on the repository, so every
new violation is either fixed or explicitly justified with a ``noqa``.
"""

from __future__ import annotations

from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.contracts import (
    ContractViolation,
    contract_scope,
    contracts_enabled,
    disable_contracts,
    enable_contracts,
)
from repro.analysis.engine import (
    LintReport,
    lint_file,
    lint_paths,
    lint_source,
    lint_source_full,
)
from repro.analysis.flow import hot_path
from repro.analysis.guards import (
    TrackedLock,
    guarded_by,
    lock_is_held,
    lock_order_edges,
    note_acquire,
    note_release,
    reset_lock_order,
)
from repro.analysis.rules import Rule, all_rules, rule_catalog
from repro.analysis.violations import Violation

__all__ = [
    "ContractViolation",
    "LintReport",
    "Rule",
    "TrackedLock",
    "Violation",
    "all_rules",
    "apply_baseline",
    "contract_scope",
    "contracts_enabled",
    "disable_contracts",
    "enable_contracts",
    "guarded_by",
    "hot_path",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_source_full",
    "load_baseline",
    "lock_is_held",
    "lock_order_edges",
    "note_acquire",
    "note_release",
    "reset_lock_order",
    "rule_catalog",
    "write_baseline",
]
