"""Runtime contracts for the paper's structural theorems.

Debug-mode-toggleable assertions that re-verify, with independent
brute-force implementations, the three invariants the whole index stands
on:

* **Theorem 1 (center uniqueness):** the leaf-stripping center of a tree
  equals the set of eccentricity-minimizing vertices and is one vertex
  or one edge — checked by :func:`check_center` via plain BFS.
* **Canonical invariance (Section 4.2.2):** canonical strings/labels are
  unchanged under vertex relabeling — checked by recomputing on seeded
  random permutations (:func:`check_canonical_invariance`,
  :func:`check_graph_canonical_invariance`).
* **σ(s) monotonicity (Eq. 1):** the size-increasing support threshold
  is non-decreasing with σ(1) = 1, the premise of level-wise mining
  completeness — checked by :func:`check_support_monotone`.

Checks are **off by default** (they multiply the cost of hot functions);
enable them with ``REPRO_CONTRACTS=1`` in the environment, with
:func:`enable_contracts`, or scoped with the :func:`contract_scope`
context manager.  Production call sites in :mod:`repro.trees`,
:mod:`repro.graphs.canonical` and :mod:`repro.mining.support` consult
:func:`contracts_enabled` and call the matching check.

The ``verify_*`` helpers take the implementation under test as an
argument, so the test suite can demonstrate that a deliberately broken
center or canonical function is caught.
"""

from __future__ import annotations

import os
import random
import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Sequence, Tuple

from repro.exceptions import ReproError

if TYPE_CHECKING:
    from repro.graphs.graph import LabeledGraph

_RELABEL_SEED = 0x5EED


class ContractViolation(ReproError):
    """A runtime contract (paper invariant) failed."""


def _env_enabled() -> bool:
    return os.environ.get("REPRO_CONTRACTS", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


_state: Dict[str, bool] = {"enabled": _env_enabled()}

#: Re-entrancy guard for the checks themselves.  Thread-LOCAL on purpose:
#: a global flag would make contract gating flicker for *other* threads
#: whenever one thread is inside a check — e.g. a query thread running a
#: canonical re-check would silently disable lock tracking for a
#: concurrent mutator, whose later @guarded_by check then fails.
_local = threading.local()


def _thread_checking() -> bool:
    return getattr(_local, "checking", False)


def contracts_enabled() -> bool:
    """True when wired call sites should run their contract checks.

    Returns False while a check is already running on the *calling
    thread*: the checks recompute canonical forms through the public
    (wired) functions, and the guard keeps that from recursing.
    """
    return _state["enabled"] and not _thread_checking()


def enable_contracts() -> None:
    _state["enabled"] = True


def disable_contracts() -> None:
    _state["enabled"] = False


@contextmanager
def contract_scope(enabled: bool = True) -> Iterator[None]:
    """Scope contract checking: ``with contract_scope(): ...``."""
    previous = _state["enabled"]
    _state["enabled"] = enabled
    try:
        yield
    finally:
        _state["enabled"] = previous


@contextmanager
def _checking() -> Iterator[None]:
    previous = _thread_checking()
    _local.checking = True
    try:
        yield
    finally:
        _local.checking = previous


# ----------------------------------------------------------------------
# Theorem 1 — tree centers
# ----------------------------------------------------------------------

def _bfs_eccentricities(tree: "LabeledGraph") -> List[int]:
    n = tree.num_vertices
    ecc = [0] * n
    for source in range(n):
        dist = [-1] * n
        dist[source] = 0
        queue = [source]
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            for v in tree.neighbors(u):
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        if min(dist) < 0:
            raise ContractViolation("center contract: tree is not connected")
        ecc[source] = max(dist)
    return ecc


def check_center(tree: "LabeledGraph", center: Sequence[int]) -> None:
    """Verify ``center`` against brute-force eccentricities (Theorem 1)."""
    with _checking():
        if tree.num_vertices == 0:
            raise ContractViolation("center contract: empty tree has no center")
        ecc = _bfs_eccentricities(tree)
        best = min(ecc)
        expected = tuple(sorted(v for v in range(len(ecc)) if ecc[v] == best))
        got = tuple(sorted(center))
        if got != expected:
            raise ContractViolation(
                f"center contract: reported center {got} but eccentricity "
                f"minimizers are {expected}"
            )
        if len(expected) not in (1, 2):
            raise ContractViolation(
                f"center contract: Theorem 1 allows one vertex or one edge, "
                f"got {len(expected)} vertices {expected}"
            )
        if len(expected) == 2 and not tree.has_edge(expected[0], expected[1]):
            raise ContractViolation(
                f"center contract: two-vertex center {expected} is not an edge"
            )


def verify_center_function(
    center_fn: Callable[["LabeledGraph"], Sequence[int]],
    tree: "LabeledGraph",
) -> Tuple[int, ...]:
    """Run ``center_fn`` and validate its answer; returns the center."""
    center = tuple(center_fn(tree))
    check_center(tree, center)
    return center


# ----------------------------------------------------------------------
# Section 4.2.2 — canonical-form invariance under relabeling
# ----------------------------------------------------------------------

def _relabelings(
    graph: "LabeledGraph", rounds: int
) -> Iterator["LabeledGraph"]:
    rng = random.Random(_RELABEL_SEED)
    n = graph.num_vertices
    for _ in range(rounds):
        perm = list(range(n))
        rng.shuffle(perm)
        yield graph.relabeled(perm)


def verify_canonical_function(
    canonical_fn: Callable[["LabeledGraph"], str],
    graph: "LabeledGraph",
    rounds: int = 2,
) -> str:
    """Check that ``canonical_fn`` is invariant under vertex relabeling."""
    with _checking():
        base = canonical_fn(graph)
        for relabeled in _relabelings(graph, rounds):
            other = canonical_fn(relabeled)
            if other != base:
                raise ContractViolation(
                    "canonical contract: label changed under relabeling "
                    f"({base!r} != {other!r})"
                )
    return base


def check_canonical_invariance(
    tree: "LabeledGraph", label: str, rounds: int = 2
) -> None:
    """Wired check for :func:`repro.trees.canonical.tree_canonical_string`."""
    from repro.trees.canonical import tree_canonical_string

    with _checking():
        for relabeled in _relabelings(tree, rounds):
            other = tree_canonical_string(relabeled)
            if other != label:
                raise ContractViolation(
                    "canonical contract: tree canonical string changed under "
                    f"relabeling ({label!r} != {other!r})"
                )


def check_graph_canonical_invariance(
    graph: "LabeledGraph", label: str, rounds: int = 1
) -> None:
    """Wired check for :func:`repro.graphs.canonical.canonical_label`."""
    from repro.graphs.canonical import canonical_label

    with _checking():
        for relabeled in _relabelings(graph, rounds):
            other = canonical_label(relabeled)
            if other != label:
                raise ContractViolation(
                    "canonical contract: graph canonical label changed under "
                    f"relabeling ({label!r} != {other!r})"
                )


# ----------------------------------------------------------------------
# Eq. 1 — σ(s) monotonicity
# ----------------------------------------------------------------------

def check_support_monotone(
    support_fn: Callable[[int], float], max_size: int
) -> None:
    """σ(1) = 1 and σ non-decreasing on 1..max_size+1."""
    with _checking():
        first = support_fn(1)
        if first != 1:
            raise ContractViolation(
                f"support contract: σ(1) must be 1 (completeness floor), "
                f"got {first}"
            )
        previous = first
        for size in range(2, max_size + 2):
            value = support_fn(size)
            if value < previous:
                raise ContractViolation(
                    f"support contract: σ({size}) = {value} < "
                    f"σ({size - 1}) = {previous}; σ must be non-decreasing"
                )
            previous = value


def verify_support_function(
    support_fn: Callable[[int], float], max_size: int
) -> None:
    """Alias of :func:`check_support_monotone` for symmetry with verify_*."""
    check_support_monotone(support_fn, max_size)


# ----------------------------------------------------------------------
# self-test (CLI: python -m repro.analysis contracts)
# ----------------------------------------------------------------------

def self_test() -> List[str]:
    """Run every contract against the production implementations.

    Builds a handful of small trees/graphs, enables contracts, and runs
    the wired functions; returns a line per check for the CLI.  Raises
    :class:`ContractViolation` if anything fails.
    """
    from repro.graphs.builders import path_graph, star_graph
    from repro.graphs.canonical import canonical_label
    from repro.graphs.graph import LabeledGraph
    from repro.mining.support import SupportFunction
    from repro.trees.canonical import tree_canonical_string
    from repro.trees.center import tree_center

    samples = [
        path_graph(["a", "b"]),
        path_graph(["a", "b", "a", "c", "b"]),
        path_graph(["a", "a", "b", "b", "a", "a"]),
        star_graph("hub", ["x", "y", "z", "x"]),
        LabeledGraph(
            ["C", "C", "N", "O", "C"],
            [(0, 1, 1), (1, 2, 1), (1, 3, 2), (3, 4, 1)],
        ),
    ]
    lines: List[str] = []
    with contract_scope():
        for tree in samples:
            verify_center_function(tree_center, tree)
            verify_canonical_function(tree_canonical_string, tree)
            verify_canonical_function(canonical_label, tree)
        lines.append(f"center + canonical contracts OK on {len(samples)} trees")
        cyclic = LabeledGraph(
            ["C", "C", "C", "O"],
            [(0, 1, 1), (1, 2, 1), (2, 0, 1), (2, 3, 1)],
        )
        verify_canonical_function(canonical_label, cyclic)
        lines.append("graph canonical contract OK on a cyclic graph")
        sigma = SupportFunction(alpha=2, beta=1.5, eta=6)
        check_support_monotone(sigma, sigma.max_size)
        lines.append("support monotonicity contract OK (alpha=2 beta=1.5 eta=6)")
        lines.append(_lock_order_self_test())
    return lines


def _lock_order_self_test() -> str:
    """Demonstrate the lock-order tracker on a deliberate inversion.

    Acquires two tracked locks A→B, then B→A, and confirms the inverted
    acquisition raises *before* it could deadlock.  Runs inside
    :func:`self_test`'s contract scope; clears the demo edges afterwards.
    """
    # Local import: guards imports this module, so the dependency must
    # stay one-way at import time.
    from repro.analysis.guards import TrackedLock, reset_lock_order

    a = TrackedLock("self_test.A")
    b = TrackedLock("self_test.B")
    try:
        with a:
            with b:
                pass
        try:
            with b:
                with a:
                    pass
        except ContractViolation:
            return "lock-order contract OK (A->B then B->A inversion caught)"
        raise ContractViolation(
            "lock-order contract: inverted acquisition B->A after A->B "
            "was not detected"
        )
    finally:
        reset_lock_order()
