"""REPRO3xx — hot-path and budget-discipline rules.

Verification dominates hard TreePi queries, which is why the serving
layer threads a :class:`~repro.core.budget.CancellationToken` through
the plan→prune→verify spine and why the storage layer replaced
dict-of-frozensets supports with posting lists.  Nothing lexical keeps
those disciplines true: a refactor can drop the ``token=`` argument from
one call, quietly re-materialize a support set, or slip an f-string into
the 64-step checkpoint window, and every test still passes — the code is
just slower, or uncancellable.  These rules check the disciplines on the
interprocedural model built by :mod:`repro.analysis.flow`.

* **REPRO301** — a hot loop (or call into a looping callee) severs the
  cancellation chain: the token parameter is dropped, shadowed, or not
  forwarded, or a loop that drives a looping callee has no checkpoint.
* **REPRO302** — ``BudgetExceeded`` swallowed without conversion, or a
  result stored into a cache by a function that never looks at
  ``.complete`` (a degraded partial answer must not be cached as full).
* **REPRO303** — columnar-storage bypass in ``repro.core`` /
  ``repro.baselines``: the deprecated ``locations``/``to_mapping()``
  materializers, Python materializers over ``graph_ids()`` or a
  ``universe``, and per-element membership filtering where
  ``PostingList.intersect`` applies.
* **REPRO304** — accidental quadratics in hot functions: membership
  tests against lists in loops, repeated list/str concatenation,
  containers rebuilt per iteration, per-iteration slicing.
* **REPRO305** — allocation or logging/str-format work lexically inside
  a ``token.charge()`` loop, the enumerator's 64-step checkpoint window.

Hot functions are the ones marked :func:`~repro.analysis.flow.hot_path`,
the ``repro.core`` spine methods, and everything they reach through
in-file calls (nested closures included).  All five rules share one
cached model per file, mirroring the REPRO2xx family's design.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from repro.analysis.flow import (
    TOKEN_PARAM_NAMES,
    FileFlow,
    FunctionInfo,
)
from repro.analysis.rules import FileContext, Rule, register

__all__ = [
    "HotLoopUncancellable",
    "BudgetSwallowed",
    "ColumnarBypass",
    "HotPathQuadratic",
    "CheckpointWindowWork",
]

Finding = Tuple[str, ast.AST, str]

_LOOP_STMTS = (ast.For, ast.AsyncFor, ast.While)

#: Modules whose query path must stay columnar (REPRO303 scope).
_COLUMNAR_PREFIXES = ("repro/core", "repro/baselines")

_PY_MATERIALIZERS = frozenset({"set", "frozenset", "sorted", "list", "tuple"})
#: Materializers that fire over a ``universe`` argument.  ``frozenset``
#: is exempt: converting a universe into the (frozen) result type once
#: is sanctioned; per-element membership abuse of such a set is still
#: caught by the membership check.
_UNIVERSE_MATERIALIZERS = frozenset({"set", "sorted", "list", "tuple"})

_BUDGET_EXCEPTION = "BudgetExceeded"
_HANDLED_NODES = (
    ast.Raise,
    ast.Return,
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.Break,
    ast.Continue,
)
_MUTATOR_METHODS = frozenset(
    {"append", "add", "update", "extend", "insert", "setdefault", "discard"}
)
_RESULT_NAMES = frozenset({"result", "results", "res", "outcome"})
#: stored-value positional index per cache-store method
_CACHE_STORE_ARG = {"put": 1, "setdefault": 1, "insert": 1, "add": 0, "append": 0}

_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)


# ----------------------------------------------------------------------
# shared per-file analysis, cached on the FileContext
# ----------------------------------------------------------------------
def _file_findings(ctx: FileContext) -> List[Finding]:
    cached = getattr(ctx, "_repro3_findings", None)
    if cached is not None:
        return cached
    flow = None
    if ctx.program is not None:
        # Whole-program run: reuse the model's per-file flow, whose
        # external surface resolves cross-module calls for real instead
        # of consulting the legacy TOKEN_CALLEES registry.
        flow = ctx.program.flow_for(ctx.path)
    if flow is None:
        flow = FileFlow(ctx.tree, ctx.module_path)
    findings: List[Finding] = []
    _cancellation_findings(flow, findings)
    _budget_swallow_findings(ctx.tree, findings)
    if ctx.module_path.startswith("repro/core"):
        # The complete-flag contract belongs to the serving layer; memo
        # caches in the miner etc. hold no degradable results.
        _budget_cache_findings(flow, findings)
    if ctx.module_path.startswith(_COLUMNAR_PREFIXES):
        _columnar_findings(flow, findings)
    _quadratic_findings(flow, findings)
    _checkpoint_window_findings(flow, findings)
    ctx._repro3_findings = findings  # type: ignore[attr-defined]
    return findings


# ----------------------------------------------------------------------
# REPRO301 — cancellation flow
# ----------------------------------------------------------------------
def _cancellation_findings(flow: FileFlow, out: List[Finding]) -> None:
    for fn in flow.functions:
        if not flow.is_hot(fn):
            continue
        for node, name in fn.shadow_nodes:
            out.append(
                (
                    "REPRO301",
                    node,
                    f"cancellation token parameter {name!r} of {fn.qualname} "
                    "is reassigned; the caller's deadline is silently "
                    "discarded",
                )
            )
        if fn.token_params and flow.transitively_loops(fn):
            read = {
                n.id
                for n in ast.walk(fn.node)
                if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
            }
            for param in sorted(fn.token_params):
                if param not in read:
                    out.append(
                        (
                            "REPRO301",
                            fn.node,
                            f"{fn.qualname} loops but never reads its "
                            f"cancellation token parameter {param!r}; thread "
                            "it into the loops (poll/charge or forward it) "
                            "or drop the parameter",
                        )
                    )
        if not fn.token_names():
            continue
        for site in fn.calls:
            if (
                flow.accepts_token(site)
                and flow.call_loops(site)
                and not flow.forwards_token(fn, site)
            ):
                out.append(
                    (
                        "REPRO301",
                        site.node,
                        f"call to looping callee {site.name!r} from "
                        f"{fn.qualname} does not forward the in-scope "
                        "cancellation token; pass token= so the callee's "
                        "loops stay cancellable",
                    )
                )
        for loop in fn.own_loops:
            drives_looping_callee = any(
                any(enclosing is loop for enclosing in site.statement_loops())
                and flow.call_loops(site)
                for site in fn.calls
            )
            if drives_looping_callee and not flow.subtree_checkpoints(fn, loop):
                out.append(
                    (
                        "REPRO301",
                        loop,
                        f"loop in {fn.qualname} drives a looping callee with "
                        "no CancellationToken checkpoint on any path; "
                        "poll/charge the token in the loop or forward it "
                        "into the callee",
                    )
                )


# ----------------------------------------------------------------------
# REPRO302 — budget discipline
# ----------------------------------------------------------------------
def _catches_budget(handler: ast.ExceptHandler) -> bool:
    exc = handler.type
    if exc is None:
        return False
    candidates = list(exc.elts) if isinstance(exc, ast.Tuple) else [exc]
    for node in candidates:
        if isinstance(node, ast.Name) and node.id == _BUDGET_EXCEPTION:
            return True
        if isinstance(node, ast.Attribute) and node.attr == _BUDGET_EXCEPTION:
            return True
    return False


def _handler_converts(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, _HANDLED_NODES):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
            ):
                return True
    return False


def _budget_swallow_findings(tree: ast.Module, out: List[Finding]) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if _catches_budget(node) and not _handler_converts(node):
            out.append(
                (
                    "REPRO302",
                    node,
                    "BudgetExceeded caught and swallowed; re-raise it or "
                    "convert to a degraded (complete=False) result so the "
                    "caller can tell the answer is partial",
                )
            )


def _is_cache_receiver(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Name):
        return "cache" in expr.id.lower()
    if isinstance(expr, ast.Attribute):
        return "cache" in expr.attr.lower()
    return False


def _is_result_name(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Name) and (
        expr.id.lower() in _RESULT_NAMES or expr.id.lower().endswith("_result")
    )


def _budget_cache_findings(flow: FileFlow, out: List[Finding]) -> None:
    message = (
        "result stored into a cache by a function that never checks "
        ".complete; a degraded partial answer must not be cached as a "
        "full one"
    )
    for fn in flow.functions:
        reads_complete = any(
            isinstance(node, ast.Attribute) and node.attr == "complete"
            for node, _ in fn.owned
        )
        if reads_complete:
            continue
        for node, _ in fn.owned:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Subscript)
                and _is_cache_receiver(node.targets[0].value)
                and _is_result_name(node.value)
            ):
                out.append(("REPRO302", node, message))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _CACHE_STORE_ARG
                and _is_cache_receiver(node.func.value)
            ):
                idx = _CACHE_STORE_ARG[node.func.attr]
                if idx < len(node.args) and _is_result_name(node.args[idx]):
                    out.append(("REPRO302", node, message))


# ----------------------------------------------------------------------
# REPRO303 — columnar-storage bypass
# ----------------------------------------------------------------------
def _contains_graph_ids_call(args: List[ast.expr]) -> bool:
    for arg in args:
        for node in ast.walk(arg):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "graph_ids"
            ):
                return True
    return False


def _materializer_kind(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        if func.id in _PY_MATERIALIZERS:
            return "py"
        if func.id == "PostingList":
            return "posting"
    if isinstance(func, ast.Attribute) and func.attr == "from_sorted":
        return "posting"
    return None


def _columnar_findings(flow: FileFlow, out: List[Finding]) -> None:
    for fn in flow.functions:
        fired: List[Tuple[ast.Call, str]] = []
        for node, _ in fn.owned:
            if fn.name != "locations" and isinstance(node, ast.Attribute):
                if node.attr == "locations" and isinstance(node.ctx, ast.Load):
                    out.append(
                        (
                            "REPRO303",
                            node,
                            "the .locations compat property materializes the "
                            "whole occurrence table; use "
                            "store.graph_ids()/centers_in(gid) columnar reads",
                        )
                    )
            if fn.name != "locations" and isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "to_mapping"
                ):
                    out.append(
                        (
                            "REPRO303",
                            node,
                            "to_mapping() materializes the whole occurrence "
                            "table (debug/compat only); use columnar reads "
                            "on the hot path",
                        )
                    )
            if isinstance(node, ast.Call):
                kind = _materializer_kind(node)
                if kind is None:
                    continue
                if _contains_graph_ids_call(node.args):
                    fired.append(
                        (
                            node,
                            "materializing graph_ids() into a fresh "
                            "container; graph_ids() is already a sorted "
                            "zero-copy PostingList (use universe_posting() "
                            "for the whole database)",
                        )
                    )
                elif (
                    kind == "py"
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _UNIVERSE_MATERIALIZERS
                    and any(
                        isinstance(a, ast.Name) and a.id == "universe"
                        for a in node.args
                    )
                ):
                    fired.append(
                        (
                            node,
                            "seeding from set(universe)-style "
                            "materialization; intersect against a "
                            "PostingList(universe) column instead",
                        )
                    )
        # A wrapper chain like from_sorted(sorted(graph_ids())) is one
        # bypass, not two: keep only the outermost firing call.
        inner: Set[int] = set()
        for call, _ in fired:
            for arg in call.args:
                for sub in ast.walk(arg):
                    inner.add(id(sub))
        for call, msg in fired:
            if id(call) not in inner:
                out.append(("REPRO303", call, msg))
        _membership_findings(fn, out)


def _membership_findings(fn: FunctionInfo, out: List[Finding]) -> None:
    for node, _ in fn.owned:
        if not isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            continue
        for gen in node.generators:
            for cond in gen.ifs:
                for sub in ast.walk(cond):
                    if not isinstance(sub, ast.Compare):
                        continue
                    for op, comp in zip(sub.ops, sub.comparators):
                        if not isinstance(op, (ast.In, ast.NotIn)):
                            continue
                        if not isinstance(comp, ast.Name):
                            continue
                        kinds = fn.origin_of(comp.id)
                        if kinds is not None and "setcall" in kinds:
                            out.append(
                                (
                                    "REPRO303",
                                    sub,
                                    f"per-element membership against "
                                    f"materialized set {comp.id!r}; "
                                    "PostingList.intersect applies here",
                                )
                            )


# ----------------------------------------------------------------------
# REPRO304 — accidental quadratics in hot functions
# ----------------------------------------------------------------------
def _is_fresh_container(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp, ast.DictComp)):
        return True
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in ("set", "frozenset", "dict")
    )


def _quadratic_findings(flow: FileFlow, out: List[Finding]) -> None:
    for fn in flow.functions:
        if not flow.is_hot(fn):
            continue
        recursive = flow.is_recursive(fn)
        for node, stack in fn.owned:
            in_loop = bool(stack)
            if isinstance(node, ast.Compare) and in_loop:
                for op, comp in zip(node.ops, node.comparators):
                    if not isinstance(op, (ast.In, ast.NotIn)):
                        continue
                    if isinstance(comp, ast.Name):
                        if fn.origin_of(comp.id) == {"list"}:
                            out.append(
                                (
                                    "REPRO304",
                                    node,
                                    f"membership test against list "
                                    f"{comp.id!r} inside a loop of hot "
                                    f"function {fn.qualname} is O(n) per "
                                    "probe; use a set or a PostingList",
                                )
                            )
                    elif _is_fresh_container(comp):
                        out.append(
                            (
                                "REPRO304",
                                node,
                                f"container rebuilt per iteration for a "
                                f"membership test in hot function "
                                f"{fn.qualname}; hoist it out of the loop",
                            )
                        )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
                if (in_loop or recursive) and (
                    isinstance(node.left, ast.List)
                    or isinstance(node.right, ast.List)
                ):
                    where = (
                        "on a recursive path"
                        if recursive and not in_loop
                        else "inside a loop"
                    )
                    out.append(
                        (
                            "REPRO304",
                            node,
                            f"list concatenation {where} of hot function "
                            f"{fn.qualname} copies the whole list each "
                            "time; append/pop (or an explicit stack) is "
                            "O(1) amortized",
                        )
                    )
            elif (
                isinstance(node, ast.AugAssign)
                and isinstance(node.op, ast.Add)
                and in_loop
                and isinstance(node.target, ast.Name)
                and fn.origin_of(node.target.id) == {"str"}
            ):
                out.append(
                    (
                        "REPRO304",
                        node,
                        f"repeated str concatenation onto "
                        f"{node.target.id!r} inside a loop of hot function "
                        f"{fn.qualname}; collect parts and join once",
                    )
                )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                outer = [s for s in stack if isinstance(s, _LOOP_STMTS)]
                if (
                    outer
                    and isinstance(node.iter, ast.Subscript)
                    and isinstance(node.iter.value, ast.Name)
                    and isinstance(node.iter.slice, ast.Slice)
                ):
                    out.append(
                        (
                            "REPRO304",
                            node,
                            f"per-iteration slice of "
                            f"{node.iter.value.id!r} inside a nested loop "
                            f"of hot function {fn.qualname} copies the "
                            "prefix each pass; hoist the slice out of the "
                            "outer loop",
                        )
                    )


# ----------------------------------------------------------------------
# REPRO305 — work inside the checkpoint window
# ----------------------------------------------------------------------
def _receiver_is_logger(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Name):
        return "log" in expr.id.lower()
    if isinstance(expr, ast.Attribute):
        return "log" in expr.attr.lower()
    return False


def _window_work(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "print":
            return "print()"
        if isinstance(func, ast.Name) and func.id == "sorted":
            return "sorted()"
        if isinstance(func, ast.Attribute):
            if func.attr == "format":
                return "str.format()"
            if func.attr in _LOG_METHODS and _receiver_is_logger(func.value):
                return f"logging call .{func.attr}()"
    if isinstance(node, ast.JoinedStr):
        return "f-string formatting"
    if (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Mod)
        and isinstance(node.left, ast.Constant)
        and isinstance(node.left.value, str)
    ):
        return "%-formatting"
    return None


def _checkpoint_window_findings(flow: FileFlow, out: List[Finding]) -> None:
    for fn in flow.functions:
        if not flow.is_hot(fn):
            continue
        charge_loops: Set[int] = set()
        for node, stack in fn.owned:
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "charge"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in TOKEN_PARAM_NAMES
            ):
                for loop in stack:
                    if isinstance(loop, _LOOP_STMTS):
                        charge_loops.add(id(loop))
        if not charge_loops:
            continue
        for node, stack in fn.owned:
            if not any(id(loop) in charge_loops for loop in stack):
                continue
            work = _window_work(node)
            if work is not None:
                out.append(
                    (
                        "REPRO305",
                        node,
                        f"{work} inside the token.charge() checkpoint "
                        f"window of hot function {fn.qualname}; the "
                        "enumerator runs this every step — move it outside "
                        "the charging loop",
                    )
                )


# ----------------------------------------------------------------------
# rule classes (thin reporters over the shared findings)
# ----------------------------------------------------------------------
class _HotPathRule(Rule):
    """Report the cached findings matching this rule's id."""

    def visit_Module(self, node: ast.Module) -> None:
        for rule_id, where, message in _file_findings(self.ctx):
            if rule_id == self.rule_id:
                self.report(where, message)


@register
class HotLoopUncancellable(_HotPathRule):
    """REPRO301: a hot loop escapes the cancellation token."""

    rule_id = "REPRO301"
    name = "hot-loop-uncancellable"
    rationale = (
        "QueryBudget deadlines only work if every loop reachable from "
        "QueryEngine.query on the plan->prune->verify spine checkpoints "
        "the CancellationToken. A dropped, shadowed, or unforwarded "
        "token (or a loop driving a looping callee with no "
        "poll/charge on any path) makes the query uncancellable."
    )


@register
class BudgetSwallowed(_HotPathRule):
    """REPRO302: budget exhaustion loses its degraded-result contract."""

    rule_id = "REPRO302"
    name = "budget-swallowed"
    rationale = (
        "BudgetExceeded is the degradation signal: handlers must "
        "re-raise or convert it into a complete=False result, and "
        "partial results must never be cached as full answers. "
        "Swallowing either silently turns a timeout into a wrong answer."
    )


@register
class ColumnarBypass(_HotPathRule):
    """REPRO303: query-path code bypasses the columnar storage layer."""

    rule_id = "REPRO303"
    name = "columnar-bypass"
    rationale = (
        "The query path reads supports as zero-copy PostingList columns. "
        "Touching the deprecated locations/to_mapping() materializers, "
        "wrapping graph_ids() or a universe into fresh Python "
        "containers, or filtering by per-element membership rebuilds "
        "the dict-of-frozensets costs the columnar layer removed."
    )

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return ctx.module_path.startswith(_COLUMNAR_PREFIXES)


@register
class HotPathQuadratic(_HotPathRule):
    """REPRO304: accidental quadratic work in hot functions."""

    rule_id = "REPRO304"
    name = "hot-path-quadratic"
    rationale = (
        "Functions marked @hot_path (or reached from the engine spine) "
        "run per candidate graph inside the verification loops; an "
        "O(n) membership probe, a copying list/str concatenation, a "
        "container rebuilt per iteration, or a per-iteration slice "
        "turns them quadratic exactly where the paper's timings are "
        "measured."
    )


@register
class CheckpointWindowWork(_HotPathRule):
    """REPRO305: avoidable work inside the 64-step checkpoint window."""

    rule_id = "REPRO305"
    name = "checkpoint-window-work"
    rationale = (
        "Loops that call token.charge() are the enumerator's innermost "
        "window, entered every backtracking step between checkpoints. "
        "Logging, str-formatting, print or sorted() there multiplies "
        "the per-step constant the 64-step batching exists to shrink."
    )
