"""TreePi: frequent-subtree graph indexing (Zhang, Hu & Yang, ICDE 2007).

A full reproduction of the TreePi graph-indexing system: build an index
of frequent subtrees over a database of undirected labeled graphs, then
answer containment queries (find every database graph that contains the
query) through partition → filter → center-distance prune → reconstruct.

Quickstart::

    from repro import GraphDatabase, LabeledGraph, TreePiConfig, TreePiIndex
    from repro.mining import SupportFunction

    db = GraphDatabase([...])
    index = TreePiIndex.build(db, TreePiConfig(SupportFunction(2, 2.0, 6)))
    result = index.query(my_query_graph)
    print(result.matches)      # exact support set D_q
"""

from repro.core import (
    EngineStats,
    FeatureTree,
    IndexStats,
    QueryBudget,
    QueryEngine,
    QueryResult,
    TreePiConfig,
    TreePiIndex,
)
from repro.exceptions import (
    BudgetExceeded,
    ConfigError,
    GraphError,
    IndexError_,
    NotATreeError,
    ReproError,
    SerializationError,
)
from repro.approximate import RelaxedQueryEngine
from repro.graphs import GraphDatabase, LabeledGraph
from repro.mining import SupportFunction
from repro.persistence import load_index, save_index

__version__ = "1.0.0"

__all__ = [
    "EngineStats",
    "FeatureTree",
    "IndexStats",
    "QueryBudget",
    "QueryEngine",
    "QueryResult",
    "TreePiConfig",
    "TreePiIndex",
    "BudgetExceeded",
    "ConfigError",
    "GraphError",
    "IndexError_",
    "NotATreeError",
    "ReproError",
    "SerializationError",
    "GraphDatabase",
    "LabeledGraph",
    "SupportFunction",
    "RelaxedQueryEngine",
    "load_index",
    "save_index",
    "__version__",
]
