"""Tree substrate: centers, canonical forms, tree isomorphism."""

from repro.trees.center import (
    Center,
    center_of_embedding,
    is_edge_centered,
    tree_center,
)
from repro.trees.canonical import (
    rooted_canonical_string,
    tree_canonical_form,
    tree_canonical_string,
)
from repro.trees.isomorphism import is_subtree_of, trees_isomorphic

__all__ = [
    "Center",
    "center_of_embedding",
    "is_edge_centered",
    "tree_center",
    "rooted_canonical_string",
    "tree_canonical_form",
    "tree_canonical_string",
    "is_subtree_of",
    "trees_isomorphic",
]
