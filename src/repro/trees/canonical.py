"""Canonical forms and string representations of labeled trees.

Section 4.2.2: root the tree at its center, represent each node as a
2-tuple ``(Le, Lv)`` (incoming edge label, vertex label), order siblings
recursively, and emit a unique string.  We implement the classic AHU
scheme with labels:

* a rooted subtree encodes as ``(Le,Lv,child_1 child_2 ...)`` with the
  children's encodings sorted lexicographically,
* a vertex-centered tree encodes as ``V:<encoding rooted at the center>``,
* an edge-centered tree splits at the center edge into two halves and
  encodes as ``E[<edge label>]:<sorted half encodings>``.

Two labeled trees are isomorphic **iff** their canonical strings are equal
(AHU correctness + isomorphisms preserve centers), which is what lets
TreePi look up any query subtree in the feature index in polynomial time —
the key asymmetry versus gIndex's exponential graph canonization.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis import contracts as _contracts
from repro.exceptions import NotATreeError
from repro.graphs.graph import LabeledGraph
from repro.trees.center import Center, tree_center


def _encode_rooted(
    tree: LabeledGraph,
    root: int,
    parent: Optional[int],
    incoming_label: str,
) -> str:
    """AHU encoding of the subtree hanging below ``root`` (iterative DFS).

    The incoming edge label participates in the node 2-tuple exactly as in
    the paper's ``(Le, Lv)`` representation.
    """
    # Post-order without recursion: children encodings must be ready before
    # a node is encoded, so process an explicit stack twice.
    order: List[Tuple[int, Optional[int], str]] = []
    stack: List[Tuple[int, Optional[int], str]] = [(root, parent, incoming_label)]
    while stack:
        node, par, inc = stack.pop()
        order.append((node, par, inc))
        for child, elabel in tree.neighbor_items(node):
            if child != par:
                stack.append((child, node, repr(elabel)))

    encoded: Dict[int, str] = {}
    children: Dict[int, List[str]] = {node: [] for node, _, _ in order}
    for node, par, inc in reversed(order):
        kids = sorted(children[node])
        encoded[node] = f"({inc},{tree.vertex_label(node)!r}" + "".join(kids) + ")"
        if node != root:
            children[par].append(encoded[node])
    return encoded[root]


def rooted_canonical_string(tree: LabeledGraph, root: int) -> str:
    """Canonical string of ``tree`` regarded as rooted at ``root``."""
    if not tree.is_tree():
        raise NotATreeError("rooted_canonical_string requires a tree")
    return _encode_rooted(tree, root, None, "#")


def tree_canonical_string(tree: LabeledGraph) -> str:
    """The center-rooted canonical string — equal iff trees are isomorphic."""
    center = tree_center(tree)
    if len(center) == 1:
        encoded = "V:" + _encode_rooted(tree, center[0], None, "#")
    else:
        a, b = center
        elabel = tree.edge_label(a, b)
        half_a = _encode_rooted(tree, a, b, "#")
        half_b = _encode_rooted(tree, b, a, "#")
        first, second = sorted((half_a, half_b))
        encoded = f"E[{elabel!r}]:{first}|{second}"
    if _contracts.contracts_enabled():
        _contracts.check_canonical_invariance(tree, encoded)
    return encoded


def tree_canonical_form(tree: LabeledGraph) -> Tuple[str, Center]:
    """Canonical string together with the center it was rooted at."""
    return tree_canonical_string(tree), tree_center(tree)
