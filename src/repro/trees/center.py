"""Tree centers (Theorem 1): one vertex or one edge, found by leaf stripping.

The center is the structural anchor of the whole index: occurrences of a
feature tree inside database graphs are recorded by the position of their
center, and query pruning compares center-to-center distances.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis import contracts as _contracts
from repro.exceptions import NotATreeError
from repro.graphs.graph import LabeledGraph

Center = Tuple[int, ...]  # one vertex (v,) or one edge (u, v) with u < v


def tree_center(tree: LabeledGraph) -> Center:
    """Return the center of ``tree`` as a 1- or 2-tuple of vertex ids.

    Implements the O(n) peeling procedure of Section 4.2.2: repeatedly
    remove all current leaves until one vertex (vertex-centered) or two
    adjacent vertices (edge-centered) remain.
    """
    if not tree.is_tree():
        raise NotATreeError("tree_center requires a connected acyclic graph")
    n = tree.num_vertices
    if n == 1:
        return (0,)
    if n == 2:
        return (0, 1)

    degree: List[int] = [tree.degree(u) for u in tree.vertices()]
    removed = [False] * n
    layer = [u for u in tree.vertices() if degree[u] == 1]
    remaining = n
    while remaining > 2:
        next_layer: List[int] = []
        for leaf in layer:
            removed[leaf] = True
        remaining -= len(layer)
        for leaf in layer:
            for v in tree.neighbors(leaf):
                if not removed[v]:
                    degree[v] -= 1
                    if degree[v] == 1:
                        next_layer.append(v)
        layer = next_layer
    core = tuple(sorted(u for u in tree.vertices() if not removed[u]))
    if len(core) == 1 or (len(core) == 2 and tree.has_edge(core[0], core[1])):
        if _contracts.contracts_enabled():
            _contracts.check_center(tree, core)
        return core
    raise NotATreeError(f"leaf stripping left an invalid core {core}")


def is_edge_centered(tree: LabeledGraph) -> bool:
    """True when the center of ``tree`` is an edge (two adjacent vertices)."""
    return len(tree_center(tree)) == 2


def center_of_embedding(
    tree: LabeledGraph, mapping: Dict[int, int]
) -> Center:
    """Where an embedded copy of ``tree`` is centered inside the host graph.

    An isomorphism maps the center to the center, so the embedded subtree's
    center is simply the image of ``tree_center(tree)`` under ``mapping``.
    """
    center = tree_center(tree)
    image = tuple(sorted(mapping[v] for v in center))
    return image
