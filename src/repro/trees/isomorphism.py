"""Tree isomorphism and subtree tests built on canonical strings.

Tree isomorphism reduces to string equality of canonical forms (linear
time up to sorting), which is the efficiency argument at the heart of the
paper.  Subtree-of-tree containment additionally uses the generic matcher
— still far cheaper than general subgraph isomorphism because the matcher
degenerates gracefully on acyclic patterns.
"""

from __future__ import annotations

from repro.graphs.graph import LabeledGraph
from repro.graphs.isomorphism import is_subgraph_isomorphic
from repro.trees.canonical import tree_canonical_string


def trees_isomorphic(t1: LabeledGraph, t2: LabeledGraph) -> bool:
    """Labeled-tree isomorphism via canonical strings."""
    if t1.num_vertices != t2.num_vertices or t1.num_edges != t2.num_edges:
        return False
    return tree_canonical_string(t1) == tree_canonical_string(t2)


def is_subtree_of(small: LabeledGraph, big: LabeledGraph) -> bool:
    """Whether tree ``small`` embeds into tree ``big`` (edge-subgraph sense).

    A size check short-circuits; otherwise the generic monomorphism matcher
    runs, which on trees never needs the expensive cyclic consistency work.
    """
    if small.num_vertices > big.num_vertices or small.num_edges > big.num_edges:
        return False
    return is_subgraph_isomorphic(small, big)
