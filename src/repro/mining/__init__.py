"""Frequent-pattern mining: subtrees (TreePi) and subgraphs (gIndex baseline)."""

from repro.mining.patterns import Embedding, MinedPattern, translate_embedding
from repro.mining.shrink import ShrinkReport, leaf_removed_subtrees, shrink_feature_set
from repro.mining.subgraph_miner import FrequentSubgraphMiner, gindex_psi
from repro.mining.subtree_miner import (
    FrequentSubtreeMiner,
    MiningResult,
    MiningStats,
)
from repro.mining.support import PAPER_AIDS_SUPPORT, SupportFunction

__all__ = [
    "Embedding",
    "MinedPattern",
    "translate_embedding",
    "ShrinkReport",
    "leaf_removed_subtrees",
    "shrink_feature_set",
    "FrequentSubgraphMiner",
    "gindex_psi",
    "FrequentSubtreeMiner",
    "MiningResult",
    "MiningStats",
    "PAPER_AIDS_SUPPORT",
    "SupportFunction",
]
