"""The size-increasing support threshold function σ(s) (Section 4.1.1, Eq. 1).

.. math::

    \\sigma(s) = \\begin{cases}
        1                       & s \\le \\alpha \\\\
        1 + \\beta s - \\alpha\\beta & \\alpha < s \\le \\eta \\\\
        +\\infty                & s > \\eta
    \\end{cases}

``σ(1) = 1`` guarantees every single-edge tree appearing anywhere in the
database is a feature, which makes Feature-Tree-Partitions always exist
(Section 5.1's worst case).  ``σ(s) = ∞`` beyond ``η`` stops mining: large
low-support trees carry no extra filtering power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis import contracts as _contracts
from repro.exceptions import ConfigError


@dataclass(frozen=True)
class SupportFunction:
    """Eq. 1 with parameters ``alpha``, ``beta``, ``eta``.

    Parameters (all positive; ``eta >= alpha``):

    * ``alpha`` — largest tree size indexed unconditionally (threshold 1),
    * ``beta``  — slope of the threshold beyond ``alpha``,
    * ``eta``   — maximum feature-tree edge size.
    """

    alpha: int
    beta: float
    eta: int

    def __post_init__(self) -> None:
        if self.alpha < 1 or self.beta <= 0 or self.eta < 1:
            raise ConfigError(
                f"alpha, beta, eta must be positive (got {self.alpha}, "
                f"{self.beta}, {self.eta})"
            )
        if self.eta < self.alpha:
            raise ConfigError(f"eta ({self.eta}) must be >= alpha ({self.alpha})")
        if _contracts.contracts_enabled():
            _contracts.check_support_monotone(self, self.eta)

    def __call__(self, size: int) -> float:
        """Minimum support for a tree with ``size`` edges."""
        if size < 1:
            raise ConfigError(f"tree size must be >= 1 (got {size})")
        if size <= self.alpha:
            return 1
        if size <= self.eta:
            return 1 + self.beta * size - self.alpha * self.beta
        return math.inf

    @property
    def max_size(self) -> int:
        """Largest indexable feature size (``η``)."""
        return self.eta

    @classmethod
    def paper_heuristic(
        cls,
        avg_query_size: float,
        avg_database_size: float,
        beta: float = 2.0,
    ) -> "SupportFunction":
        """Section 4.1.3 heuristics: ``α ∈ [s̄_q/4, s̄_q/2]`` (we take the
        midpoint ``3 s̄_q / 8``), ``η = min(s̄_q, s̄_D)``.
        """
        alpha = max(1, round(3 * avg_query_size / 8))
        eta = max(alpha, round(min(avg_query_size, avg_database_size)))
        return cls(alpha=alpha, beta=beta, eta=eta)


#: The exact configuration the paper uses on the AIDS antiviral dataset.
PAPER_AIDS_SUPPORT = SupportFunction(alpha=5, beta=2.0, eta=10)
