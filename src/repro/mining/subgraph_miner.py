"""Frequent *subgraph* mining (gSpan-style) — substrate for the gIndex baseline.

TreePi's comparator indexes arbitrary frequent subgraphs, so reproducing
the comparison requires a frequent subgraph miner.  The structure mirrors
:class:`repro.mining.subtree_miner.FrequentSubtreeMiner` — level-wise
edge growth with exact embedding tracking — with two differences:

* **backward extensions** close cycles between already-mapped vertices,
* isomorphism classes are keyed by the *minimum DFS code* canonical label
  (exponential worst case), not the polynomial tree canonical string.

That canonical-label asymmetry is precisely the index-construction cost
gap Figures 12(a)/13(a) measure.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

from repro.graphs.canonical import canonical_label
from repro.graphs.graph import GraphDatabase, LabeledGraph
from repro.graphs.isomorphism import subgraph_monomorphisms
from repro.mining.patterns import Embedding, MinedPattern, translate_embedding
from repro.mining.subtree_miner import MiningResult, MiningStats

# forward: ("f", anchor_vertex, edge_label, new_vertex_label)
# backward: ("b", vertex_a, vertex_b, edge_label) with a < b
Descriptor = Tuple


class FrequentSubgraphMiner:
    """Mine all ψ(l)-frequent connected subgraphs up to ``max_size`` edges.

    ``support`` is any non-decreasing threshold function of the edge count
    (gIndex's ψ(l)); non-decreasing is what makes level-wise growth
    complete.
    """

    def __init__(
        self,
        database: GraphDatabase,
        support: Callable[[int], float],
        max_size: int,
        max_embeddings_per_graph: Optional[int] = None,
    ) -> None:
        self._db = database
        self._support = support
        self._max_size = max_size
        self._cap = max_embeddings_per_graph

    def mine(self) -> MiningResult:
        start = time.perf_counter()
        stats = MiningStats()

        current = self._mine_single_edges()
        threshold = self._support(1)
        current = {k: p for k, p in sorted(current.items()) if p.support >= threshold}
        all_frequent: Dict[str, MinedPattern] = dict(current)
        stats.patterns_per_level[1] = len(current)

        size = 1
        while current and size < self._max_size:
            size += 1
            threshold = self._support(size)
            candidates = self._extend_level(current)
            stats.candidates_per_level[size] = len(candidates)
            current = {
                key: pat
                for key, pat in sorted(candidates.items())
                if pat.support >= threshold
            }
            stats.patterns_per_level[size] = len(current)
            all_frequent.update(current)

        stats.elapsed_seconds = time.perf_counter() - start
        return MiningResult(patterns=all_frequent, stats=stats)

    # ------------------------------------------------------------------
    def _mine_single_edges(self) -> Dict[str, MinedPattern]:
        patterns: Dict[str, MinedPattern] = {}
        for graph in self._db:
            gid = graph.graph_id
            for u, v, elabel in graph.edges():
                lu, lv = graph.vertex_label(u), graph.vertex_label(v)
                if repr(lu) <= repr(lv):
                    labels, oriented = (lu, lv), [(u, v)]
                else:
                    labels, oriented = (lv, lu), [(v, u)]
                if lu == lv:
                    oriented = [(u, v), (v, u)]
                pattern_graph = LabeledGraph(labels, [(0, 1, elabel)])
                key = canonical_label(pattern_graph)
                pattern = patterns.get(key)
                if pattern is None:
                    pattern = MinedPattern(pattern_graph, key)
                    patterns[key] = pattern
                for a, b in oriented:
                    self._store(pattern, gid, (a, b))
        return patterns

    def _store(self, pattern: MinedPattern, gid: int, embedding: Embedding) -> None:
        if self._cap is not None:
            bucket = pattern.embeddings.get(gid)
            if bucket is not None and len(bucket) >= self._cap:
                return
        pattern.add_embedding(gid, embedding)

    # ------------------------------------------------------------------
    def _extend_level(
        self, current: Dict[str, MinedPattern]
    ) -> Dict[str, MinedPattern]:
        candidates: Dict[str, MinedPattern] = {}
        for _, pattern in sorted(current.items()):
            ext_cache: Dict[Descriptor, Tuple[str, Optional[Dict[int, int]]]] = {}
            pat_graph = pattern.graph
            for gid, embeddings in sorted(pattern.embeddings.items()):
                graph = self._db[gid]
                for emb in sorted(embeddings):
                    image_index = {gv: pv for pv, gv in enumerate(emb)}
                    for pv, gv in enumerate(emb):
                        for w, elabel in graph.neighbor_items(gv):
                            pw = image_index.get(w)
                            if pw is None:
                                # Forward: attach a brand-new vertex.
                                descriptor: Descriptor = (
                                    "f", pv, elabel, graph.vertex_label(w),
                                )
                                key, tr = self._resolve(
                                    pattern, descriptor, ext_cache, candidates
                                )
                                new_emb = emb + (w,)
                            else:
                                # Backward: close a cycle between mapped
                                # vertices (each undirected edge once).
                                if pw < pv or pat_graph.has_edge(pv, pw):
                                    continue
                                descriptor = ("b", pv, pw, elabel)
                                key, tr = self._resolve(
                                    pattern, descriptor, ext_cache, candidates
                                )
                                new_emb = emb
                            if tr is not None:
                                new_emb = translate_embedding(new_emb, tr)
                            self._store(candidates[key], gid, new_emb)
        return candidates

    def _resolve(
        self,
        pattern: MinedPattern,
        descriptor: Descriptor,
        ext_cache: Dict[Descriptor, Tuple[str, Optional[Dict[int, int]]]],
        candidates: Dict[str, MinedPattern],
    ) -> Tuple[str, Optional[Dict[int, int]]]:
        cached = ext_cache.get(descriptor)
        if cached is not None:
            return cached

        cand = pattern.graph.copy()
        if descriptor[0] == "f":
            _, anchor, elabel, vlabel = descriptor
            new_vertex = cand.add_vertex(vlabel)
            cand.add_edge(anchor, new_vertex, elabel)
        else:
            _, a, b, elabel = descriptor
            cand.add_edge(a, b, elabel)
        key = canonical_label(cand)

        representative = candidates.get(key)
        translation: Optional[Dict[int, int]] = None
        if representative is None:
            candidates[key] = MinedPattern(cand, key)
        else:
            translation = next(
                subgraph_monomorphisms(cand, representative.graph, limit=1)
            )
            if all(translation[v] == v for v in translation):
                translation = None
        result = (key, translation)
        ext_cache[descriptor] = result
        return result


def gindex_psi(
    max_size: int, theta: float, database_size: int
) -> Callable[[int], float]:
    """The gIndex size-increasing support function used in Section 6.1.

    ψ(l) = 1 for l < 4; beyond that it ramps like ``sqrt(l / maxL) · Θ·N``
    (gIndex's published interpolation), capped at ``Θ·N``.
    """
    ceiling = theta * database_size

    def psi(size: int) -> float:
        if size < 4:
            return 1
        return min(ceiling, max(1.0, (size / max_size) ** 0.5 * ceiling))

    return psi
