"""Mined-pattern record shared by the subtree and subgraph miners.

A :class:`MinedPattern` couples a representative pattern graph with every
embedding found in every database graph.  Embeddings are stored as flat
tuples ``(image_of_vertex_0, image_of_vertex_1, ...)`` in the
representative's vertex order — compact, hashable, and directly reusable
for center-location extraction in the TreePi index build.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro.graphs.graph import LabeledGraph

Embedding = Tuple[int, ...]


class MinedPattern:
    """A pattern plus its exact embedding sets per database graph."""

    __slots__ = ("graph", "key", "embeddings")

    def __init__(self, graph: LabeledGraph, key: str) -> None:
        self.graph = graph
        #: canonical string identifying the isomorphism class
        self.key = key
        #: graph id -> set of embeddings (tuples over pattern vertex order)
        self.embeddings: Dict[int, Set[Embedding]] = {}

    @property
    def size(self) -> int:
        """Edge count of the pattern (the paper's ``s``)."""
        return self.graph.num_edges

    @property
    def support(self) -> int:
        """Number of database graphs containing the pattern (``|D_t|``)."""
        return len(self.embeddings)

    def support_set(self) -> frozenset:
        """The support set ``D_t`` as a frozenset of graph ids."""
        return frozenset(self.embeddings)

    def add_embedding(self, graph_id: int, embedding: Embedding) -> bool:
        """Record an embedding; returns False if it was already known."""
        bucket = self.embeddings.setdefault(graph_id, set())
        if embedding in bucket:
            return False
        bucket.add(embedding)
        return True

    def iter_embeddings(self, graph_id: int) -> Iterator[Embedding]:
        return iter(self.embeddings.get(graph_id, ()))

    def total_embeddings(self) -> int:
        return sum(len(b) for b in self.embeddings.values())

    def __repr__(self) -> str:
        return (
            f"<MinedPattern size={self.size} support={self.support} "
            f"key={self.key[:40]!r}>"
        )


def translate_embedding(
    embedding: Embedding, iso_to_representative: Dict[int, int]
) -> Embedding:
    """Re-express an embedding of a duplicate pattern in representative order.

    ``iso_to_representative`` maps duplicate-pattern vertices onto
    representative-pattern vertices; the translated tuple satisfies
    ``translated[iso[v]] == embedding[v]``.
    """
    out: List[int] = [0] * len(embedding)
    # Writes land at fixed indices, so iteration order cannot matter.
    for dup_vertex, rep_vertex in iso_to_representative.items():  # noqa: REPRO101 - builds a dict keyed by entries; order-free
        out[rep_vertex] = embedding[dup_vertex]
    return tuple(out)
