"""Level-wise frequent subtree mining with embedding tracking (Section 4.1).

The miner grows trees one edge at a time, exactly the "level wise
edge-increasing" scheme the paper prescribes, with the size-increasing
threshold σ(s) applied at each level.  Because σ is non-decreasing and
support is anti-monotone, every σ(s+1)-frequent tree extends some
σ(s)-frequent tree, so extending only the survivors of each level is
complete.

Unlike classic miners that keep only support counts, we retain *every
embedding* of every pattern (a set of vertex tuples per database graph).
That is what enables TreePi's signature trick: the center location of each
occurrence falls out of the stored embeddings for free, giving the index
its per-graph center bits (Section 4.2.1) without a second scan.

Embeddings may optionally be capped per (pattern, graph) to bound memory —
the memory pressure Section 4.1 discusses.  With a cap the mine becomes
approximate (a graph whose retained embeddings all miss an extension can
be undercounted at the next level); the default is exact.

Each level is split into two phases so the expensive part parallelizes:

1. **Site enumeration** (:func:`_extension_sites_chunk`) walks the stored
   embeddings of one database graph and records, per pattern, every
   one-edge extension *descriptor* together with the raw extended
   embeddings.  This is a pure function of ``(graph, embeddings)`` — with
   ``workers > 1`` chunks of graphs are fanned out over a
   :class:`~concurrent.futures.ProcessPoolExecutor`.
2. **Deterministic merge** (:meth:`FrequentSubtreeMiner._merge_level`)
   folds the per-graph sites into candidate patterns in sorted
   (pattern-key, descriptor, graph-id, embedding) order.  Representatives
   and embedding translations are a function of that canonical order, not
   of discovery order, so the mined result — and everything downstream,
   feature ids included — is identical for every worker count.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.graphs.graph import GraphDatabase, LabeledGraph
from repro.graphs.isomorphism import subgraph_monomorphisms
from repro.mining.patterns import Embedding, MinedPattern, translate_embedding
from repro.mining.support import SupportFunction
from repro.trees.canonical import tree_canonical_string

# An extension descriptor: attach a new vertex labeled `vertex_label` to
# pattern vertex `anchor` through an edge labeled `edge_label`.
Descriptor = Tuple[int, Hashable, Hashable]

# Phase-1 output for one graph: pattern key -> descriptor -> raw extended
# embeddings (still in "parent pattern + appended vertex" coordinates).
ExtensionSites = Dict[str, Dict[Descriptor, Set[Embedding]]]

# Phase-1 output of the single-edge scan for one graph: canonical key ->
# (ordered vertex labels, edge label, oriented embeddings).
SingleEdgeSites = Dict[str, Tuple[Tuple[Hashable, Hashable], Hashable, Set[Embedding]]]


def _descriptor_sort_key(descriptor: Descriptor) -> Tuple[int, str, str]:
    """Total order over descriptors (labels compared via ``repr``)."""
    anchor, elabel, vlabel = descriptor
    return (anchor, repr(elabel), repr(vlabel))


def _single_edge_sites(graph: LabeledGraph) -> SingleEdgeSites:
    """Every distinct labeled edge of one graph with its oriented embeddings."""
    sites: SingleEdgeSites = {}
    for u, v, elabel in graph.edges():
        lu, lv = graph.vertex_label(u), graph.vertex_label(v)
        # Deterministic representative orientation via repr order.
        if repr(lu) <= repr(lv):
            labels, oriented = (lu, lv), [(u, v)]
        else:
            labels, oriented = (lv, lu), [(v, u)]
        if lu == lv:
            oriented = [(u, v), (v, u)]
        tree = LabeledGraph(labels, [(0, 1, elabel)])
        key = tree_canonical_string(tree)
        entry = sites.get(key)
        if entry is None:
            entry = (labels, elabel, set())
            sites[key] = entry
        entry[2].update(oriented)
    return sites


def _single_edges_chunk(
    graphs: List[LabeledGraph],
) -> List[Tuple[int, SingleEdgeSites]]:
    """Phase 1 of level 1 for a chunk of graphs (process-pool task)."""
    out: List[Tuple[int, SingleEdgeSites]] = []
    for graph in graphs:
        gid = graph.graph_id
        if gid is None:
            raise ValueError("database graphs must carry a graph_id")
        out.append((gid, _single_edge_sites(graph)))
    return out


def _extension_sites(
    graph: LabeledGraph, embeddings_by_key: Dict[str, List[Embedding]]
) -> ExtensionSites:
    """Enumerate every one-edge extension of every embedding in one graph."""
    sites: ExtensionSites = {}
    for key, embeddings in sorted(embeddings_by_key.items()):
        per_descriptor = sites.setdefault(key, {})
        for emb in embeddings:
            image = set(emb)
            for pv, gv in enumerate(emb):
                for w, elabel in graph.neighbor_items(gv):
                    if w in image:
                        continue
                    descriptor: Descriptor = (pv, elabel, graph.vertex_label(w))
                    per_descriptor.setdefault(descriptor, set()).add(emb + (w,))
    return sites


def _extension_sites_chunk(
    items: List[Tuple[LabeledGraph, Dict[str, List[Embedding]]]],
) -> List[Tuple[int, ExtensionSites]]:
    """Phase 1 of one extension level for a chunk of graphs (pool task)."""
    out: List[Tuple[int, ExtensionSites]] = []
    for graph, embeddings_by_key in items:
        gid = graph.graph_id
        if gid is None:
            raise ValueError("database graphs must carry a graph_id")
        out.append((gid, _extension_sites(graph, embeddings_by_key)))
    return out


def _chunk(items: List, chunks: int) -> List[List]:
    """Split ``items`` into at most ``chunks`` contiguous, balanced runs."""
    n = len(items)
    chunks = max(1, min(chunks, n))
    size, extra = divmod(n, chunks)
    out: List[List] = []
    start = 0
    for i in range(chunks):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return out


@dataclass
class MiningStats:
    """Per-level accounting of one mining run."""

    patterns_per_level: Dict[int, int] = field(default_factory=dict)
    candidates_per_level: Dict[int, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def total_patterns(self) -> int:
        return sum(self.patterns_per_level.values())


@dataclass
class MiningResult:
    """All σ-frequent trees keyed by canonical string, plus statistics."""

    patterns: Dict[str, MinedPattern]
    stats: MiningStats

    def by_size(self, size: int) -> List[MinedPattern]:
        """Patterns of one edge size, in canonical-key order."""
        return [p for _, p in sorted(self.patterns.items()) if p.size == size]

    def max_size(self) -> int:
        return max((p.size for p in self.patterns.values()), default=0)

    def maximal_patterns(self) -> List[MinedPattern]:
        """Patterns with no frequent one-edge extension (SPIN's notion).

        A pattern is maximal when none of the frequent patterns one size
        up contains it.  Useful for compact summaries of what the miner
        found; containment is checked with the generic matcher, which is
        cheap at feature-tree sizes.
        """
        from repro.graphs.isomorphism import is_subgraph_isomorphic

        by_size: Dict[int, List[MinedPattern]] = {}
        for _, pattern in sorted(self.patterns.items()):
            by_size.setdefault(pattern.size, []).append(pattern)
        maximal: List[MinedPattern] = []
        for size, group in sorted(by_size.items()):
            parents = by_size.get(size + 1, [])
            for pattern in group:
                if not any(
                    is_subgraph_isomorphic(pattern.graph, parent.graph)
                    for parent in parents
                ):
                    maximal.append(pattern)
        return maximal


class FrequentSubtreeMiner:
    """Mine all σ(s)-frequent subtrees of a graph database.

    Parameters
    ----------
    database:
        The graph database to mine.
    support:
        The σ(s) threshold function (Eq. 1).
    max_embeddings_per_graph:
        Optional cap on stored embeddings per (pattern, graph); ``None``
        (default) keeps mining exact.
    workers:
        Process-pool width for the per-graph embedding enumeration.  The
        merge order is canonical, so the mined patterns — embeddings,
        supports, representatives — are identical for every value.
    """

    def __init__(
        self,
        database: GraphDatabase,
        support: SupportFunction,
        max_embeddings_per_graph: Optional[int] = None,
        workers: int = 1,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._db = database
        self._support = support
        self._cap = max_embeddings_per_graph
        self._workers = workers

    # ------------------------------------------------------------------
    def mine(self) -> MiningResult:
        """Run the level-wise mine and return every frequent pattern."""
        start = time.perf_counter()
        stats = MiningStats()

        pool: Optional[ProcessPoolExecutor] = None
        if self._workers > 1 and len(self._db) > 1:
            pool = ProcessPoolExecutor(max_workers=self._workers)
        try:
            current = self._mine_single_edges(pool)
            threshold = self._support(1)
            # Canonical-key order throughout: every level's pattern dict is
            # sorted, so feature ids and reports never depend on discovery
            # order.
            current = {
                k: p for k, p in sorted(current.items()) if p.support >= threshold
            }
            all_frequent: Dict[str, MinedPattern] = dict(current)
            stats.patterns_per_level[1] = len(current)

            size = 1
            while current and size < self._support.max_size:
                size += 1
                threshold = self._support(size)
                candidates = self._extend_level(current, pool)
                stats.candidates_per_level[size] = len(candidates)
                current = {
                    key: pat
                    for key, pat in sorted(candidates.items())
                    if pat.support >= threshold
                }
                stats.patterns_per_level[size] = len(current)
                all_frequent.update(current)
        finally:
            if pool is not None:
                pool.shutdown()

        stats.elapsed_seconds = time.perf_counter() - start
        return MiningResult(patterns=all_frequent, stats=stats)

    # ------------------------------------------------------------------
    def _graphs_sorted(self) -> List[LabeledGraph]:
        return [self._db[gid] for gid in self._db.graph_ids()]

    def _mine_single_edges(
        self, pool: Optional[ProcessPoolExecutor]
    ) -> Dict[str, MinedPattern]:
        """Level 1: every distinct labeled edge, with all its occurrences."""
        chunks = _chunk(self._graphs_sorted(), self._workers)
        if pool is None:
            chunk_results = [_single_edges_chunk(c) for c in chunks]
        else:
            chunk_results = list(pool.map(_single_edges_chunk, chunks))

        sites_by_gid: Dict[int, SingleEdgeSites] = {}
        for chunk_result in chunk_results:
            for gid, sites in chunk_result:
                sites_by_gid[gid] = sites

        patterns: Dict[str, MinedPattern] = {}
        for gid in sorted(sites_by_gid):
            for key, (labels, elabel, embeddings) in sorted(
                sites_by_gid[gid].items()
            ):
                pattern = patterns.get(key)
                if pattern is None:
                    # The representative is derived from the labels alone,
                    # so every graph producing this key builds the same one.
                    tree = LabeledGraph(labels, [(0, 1, elabel)])
                    pattern = MinedPattern(tree, key)
                    patterns[key] = pattern
                for emb in sorted(embeddings):
                    self._store(pattern, gid, emb)
        return patterns

    def _store(self, pattern: MinedPattern, gid: int, embedding: Embedding) -> None:
        if self._cap is not None:
            bucket = pattern.embeddings.get(gid)
            if bucket is not None and len(bucket) >= self._cap:
                return
        pattern.add_embedding(gid, embedding)

    # ------------------------------------------------------------------
    def _extend_level(
        self,
        current: Dict[str, MinedPattern],
        pool: Optional[ProcessPoolExecutor],
    ) -> Dict[str, MinedPattern]:
        """Grow every pattern of the current level by one edge."""
        # Phase 1: per-graph extension sites, optionally fanned out.
        work: List[Tuple[LabeledGraph, Dict[str, List[Embedding]]]] = []
        for graph in self._graphs_sorted():
            gid = graph.graph_id
            embeddings_by_key: Dict[str, List[Embedding]] = {}
            for key, pattern in sorted(current.items()):
                bucket = pattern.embeddings.get(gid)
                if bucket:
                    embeddings_by_key[key] = sorted(bucket)
            if embeddings_by_key:
                work.append((graph, embeddings_by_key))

        chunks = _chunk(work, self._workers)
        if pool is None:
            chunk_results = [_extension_sites_chunk(c) for c in chunks]
        else:
            chunk_results = list(pool.map(_extension_sites_chunk, chunks))

        sites_by_gid: Dict[int, ExtensionSites] = {}
        for chunk_result in chunk_results:
            for gid, sites in chunk_result:
                sites_by_gid[gid] = sites

        # Phase 2: canonical-order merge (independent of worker count).
        return self._merge_level(current, sites_by_gid)

    def _merge_level(
        self,
        current: Dict[str, MinedPattern],
        sites_by_gid: Dict[int, ExtensionSites],
    ) -> Dict[str, MinedPattern]:
        """Fold per-graph extension sites into candidate patterns.

        Iteration is fully sorted — parent pattern key, then descriptor,
        then graph id, then embedding — so the representative of each
        candidate isomorphism class, the translation onto it, and the
        stored embedding sets are a function of the sites alone.
        """
        ordered_gids = sorted(sites_by_gid)
        candidates: Dict[str, MinedPattern] = {}
        for parent_key, pattern in sorted(current.items()):
            descriptors: Set[Descriptor] = set()
            for gid in ordered_gids:
                per_descriptor = sites_by_gid[gid].get(parent_key)
                if per_descriptor:
                    descriptors.update(per_descriptor)
            for descriptor in sorted(descriptors, key=_descriptor_sort_key):
                key, translation, representative = self._resolve_extension(
                    pattern, descriptor, candidates
                )
                for gid in ordered_gids:
                    per_descriptor = sites_by_gid[gid].get(parent_key)
                    if not per_descriptor:
                        continue
                    raw = per_descriptor.get(descriptor)
                    if not raw:
                        continue
                    for emb in sorted(raw):
                        if translation is not None:
                            emb = translate_embedding(emb, translation)
                        self._store(representative, gid, emb)
        return candidates

    def _resolve_extension(
        self,
        pattern: MinedPattern,
        descriptor: Descriptor,
        candidates: Dict[str, MinedPattern],
    ) -> Tuple[str, Optional[Dict[int, int]], MinedPattern]:
        """Map an extension descriptor to its canonical candidate pattern.

        The candidate tree is built in "parent + appended vertex"
        coordinates; the first (in canonical order) descriptor to produce a
        key becomes the representative of the isomorphism class, and later
        descriptors are aligned onto it with one isomorphism computation.
        """
        anchor, elabel, vlabel = descriptor
        cand = pattern.graph.copy()
        new_vertex = cand.add_vertex(vlabel)
        cand.add_edge(anchor, new_vertex, elabel)
        key = tree_canonical_string(cand)

        representative = candidates.get(key)
        translation: Optional[Dict[int, int]] = None
        if representative is None:
            representative = MinedPattern(cand, key)
            candidates[key] = representative
        else:
            translation = next(
                subgraph_monomorphisms(cand, representative.graph, limit=1)
            )
            if all(translation[v] == v for v in translation):
                translation = None
        return key, translation, representative
