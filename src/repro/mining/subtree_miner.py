"""Level-wise frequent subtree mining with embedding tracking (Section 4.1).

The miner grows trees one edge at a time, exactly the "level wise
edge-increasing" scheme the paper prescribes, with the size-increasing
threshold σ(s) applied at each level.  Because σ is non-decreasing and
support is anti-monotone, every σ(s+1)-frequent tree extends some
σ(s)-frequent tree, so extending only the survivors of each level is
complete.

Unlike classic miners that keep only support counts, we retain *every
embedding* of every pattern (a set of vertex tuples per database graph).
That is what enables TreePi's signature trick: the center location of each
occurrence falls out of the stored embeddings for free, giving the index
its per-graph center bits (Section 4.2.1) without a second scan.

Embeddings may optionally be capped per (pattern, graph) to bound memory —
the memory pressure Section 4.1 discusses.  With a cap the mine becomes
approximate (a graph whose retained embeddings all miss an extension can
be undercounted at the next level); the default is exact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.graphs.graph import GraphDatabase, LabeledGraph
from repro.graphs.isomorphism import subgraph_monomorphisms
from repro.mining.patterns import Embedding, MinedPattern, translate_embedding
from repro.mining.support import SupportFunction
from repro.trees.canonical import tree_canonical_string

# An extension descriptor: attach a new vertex labeled `vertex_label` to
# pattern vertex `anchor` through an edge labeled `edge_label`.
Descriptor = Tuple[int, Hashable, Hashable]


@dataclass
class MiningStats:
    """Per-level accounting of one mining run."""

    patterns_per_level: Dict[int, int] = field(default_factory=dict)
    candidates_per_level: Dict[int, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def total_patterns(self) -> int:
        return sum(self.patterns_per_level.values())


@dataclass
class MiningResult:
    """All σ-frequent trees keyed by canonical string, plus statistics."""

    patterns: Dict[str, MinedPattern]
    stats: MiningStats

    def by_size(self, size: int) -> List[MinedPattern]:
        """Patterns of one edge size, in canonical-key order."""
        return [p for _, p in sorted(self.patterns.items()) if p.size == size]

    def max_size(self) -> int:
        return max((p.size for p in self.patterns.values()), default=0)

    def maximal_patterns(self) -> List[MinedPattern]:
        """Patterns with no frequent one-edge extension (SPIN's notion).

        A pattern is maximal when none of the frequent patterns one size
        up contains it.  Useful for compact summaries of what the miner
        found; containment is checked with the generic matcher, which is
        cheap at feature-tree sizes.
        """
        from repro.graphs.isomorphism import is_subgraph_isomorphic

        by_size: Dict[int, List[MinedPattern]] = {}
        for _, pattern in sorted(self.patterns.items()):
            by_size.setdefault(pattern.size, []).append(pattern)
        maximal: List[MinedPattern] = []
        for size, group in sorted(by_size.items()):
            parents = by_size.get(size + 1, [])
            for pattern in group:
                if not any(
                    is_subgraph_isomorphic(pattern.graph, parent.graph)
                    for parent in parents
                ):
                    maximal.append(pattern)
        return maximal


class FrequentSubtreeMiner:
    """Mine all σ(s)-frequent subtrees of a graph database.

    Parameters
    ----------
    database:
        The graph database to mine.
    support:
        The σ(s) threshold function (Eq. 1).
    max_embeddings_per_graph:
        Optional cap on stored embeddings per (pattern, graph); ``None``
        (default) keeps mining exact.
    """

    def __init__(
        self,
        database: GraphDatabase,
        support: SupportFunction,
        max_embeddings_per_graph: Optional[int] = None,
    ) -> None:
        self._db = database
        self._support = support
        self._cap = max_embeddings_per_graph

    # ------------------------------------------------------------------
    def mine(self) -> MiningResult:
        """Run the level-wise mine and return every frequent pattern."""
        start = time.perf_counter()
        stats = MiningStats()

        current = self._mine_single_edges()
        threshold = self._support(1)
        # Canonical-key order throughout: every level's pattern dict is
        # sorted, so feature ids and reports never depend on discovery order.
        current = {k: p for k, p in sorted(current.items()) if p.support >= threshold}
        all_frequent: Dict[str, MinedPattern] = dict(current)
        stats.patterns_per_level[1] = len(current)

        size = 1
        while current and size < self._support.max_size:
            size += 1
            threshold = self._support(size)
            candidates = self._extend_level(current)
            stats.candidates_per_level[size] = len(candidates)
            current = {
                key: pat
                for key, pat in sorted(candidates.items())
                if pat.support >= threshold
            }
            stats.patterns_per_level[size] = len(current)
            all_frequent.update(current)

        stats.elapsed_seconds = time.perf_counter() - start
        return MiningResult(patterns=all_frequent, stats=stats)

    # ------------------------------------------------------------------
    def _mine_single_edges(self) -> Dict[str, MinedPattern]:
        """Level 1: every distinct labeled edge, with all its occurrences."""
        patterns: Dict[str, MinedPattern] = {}
        for graph in self._db:
            gid = graph.graph_id
            for u, v, elabel in graph.edges():
                lu, lv = graph.vertex_label(u), graph.vertex_label(v)
                # Deterministic representative orientation via repr order.
                if repr(lu) <= repr(lv):
                    labels, oriented = (lu, lv), [(u, v)]
                else:
                    labels, oriented = (lv, lu), [(v, u)]
                if lu == lv:
                    oriented = [(u, v), (v, u)]
                tree = LabeledGraph(labels, [(0, 1, elabel)])
                key = tree_canonical_string(tree)
                pattern = patterns.get(key)
                if pattern is None:
                    pattern = MinedPattern(tree, key)
                    patterns[key] = pattern
                for a, b in oriented:
                    self._store(pattern, gid, (a, b))
        return patterns

    def _store(self, pattern: MinedPattern, gid: int, embedding: Embedding) -> None:
        if self._cap is not None:
            bucket = pattern.embeddings.get(gid)
            if bucket is not None and len(bucket) >= self._cap:
                return
        pattern.add_embedding(gid, embedding)

    # ------------------------------------------------------------------
    def _extend_level(
        self, current: Dict[str, MinedPattern]
    ) -> Dict[str, MinedPattern]:
        """Grow every pattern of the current level by one edge."""
        candidates: Dict[str, MinedPattern] = {}
        for _, pattern in sorted(current.items()):
            # (descriptor) -> (candidate key, translation to representative)
            ext_cache: Dict[Descriptor, Tuple[str, Optional[Dict[int, int]]]] = {}
            for gid, embeddings in sorted(pattern.embeddings.items()):
                graph = self._db[gid]
                for emb in sorted(embeddings):
                    image = set(emb)
                    for pv, gv in enumerate(emb):
                        for w, elabel in graph.neighbor_items(gv):
                            if w in image:
                                continue
                            descriptor: Descriptor = (
                                pv,
                                elabel,
                                graph.vertex_label(w),
                            )
                            key, translation = self._resolve_extension(
                                pattern, descriptor, ext_cache, candidates
                            )
                            new_emb: Embedding = emb + (w,)
                            if translation is not None:
                                new_emb = translate_embedding(new_emb, translation)
                            self._store(candidates[key], gid, new_emb)
        return candidates

    def _resolve_extension(
        self,
        pattern: MinedPattern,
        descriptor: Descriptor,
        ext_cache: Dict[Descriptor, Tuple[str, Optional[Dict[int, int]]]],
        candidates: Dict[str, MinedPattern],
    ) -> Tuple[str, Optional[Dict[int, int]]]:
        """Map an extension descriptor to its canonical candidate pattern.

        The first time a descriptor is seen, the candidate tree is built and
        either becomes the representative of a new isomorphism class or is
        aligned (one isomorphism computation) onto the existing one.
        """
        cached = ext_cache.get(descriptor)
        if cached is not None:
            return cached

        anchor, elabel, vlabel = descriptor
        cand = pattern.graph.copy()
        new_vertex = cand.add_vertex(vlabel)
        cand.add_edge(anchor, new_vertex, elabel)
        key = tree_canonical_string(cand)

        representative = candidates.get(key)
        translation: Optional[Dict[int, int]] = None
        if representative is None:
            candidates[key] = MinedPattern(cand, key)
        else:
            translation = next(
                subgraph_monomorphisms(cand, representative.graph, limit=1)
            )
            if all(translation[v] == v for v in translation):
                translation = None
        result = (key, translation)
        ext_cache[descriptor] = result
        return result
