"""Feature-set shrinking by the redundancy ratio γ (Section 4.1.2).

For a frequent tree ``r`` with proper subtrees ``r_1..r_n``, anti-monotone
support gives ``|⋂ D_{r_i}| >= |D_r|``.  When the ratio
``|⋂ D_{r_i}| / |D_r|`` is close to 1, the subtrees alone already pin
down ``r``'s support set and ``r`` adds no filtering power, so it is
dropped from the feature set.  The intersection over *all* proper subtrees
equals the intersection over the maximal ones (every subtree contains some
maximal proper subtree's support set), so only leaf-removals are examined.

Single-edge trees are never shrunk: they are the completeness floor of the
whole index (any query can be partitioned into single edges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.graphs.graph import LabeledGraph
from repro.mining.patterns import MinedPattern
from repro.trees.canonical import tree_canonical_string


def leaf_removed_subtrees(tree: LabeledGraph) -> List[Tuple[str, LabeledGraph]]:
    """The maximal proper subtrees of ``tree`` (one per leaf), deduplicated.

    Returns ``(canonical_key, subtree)`` pairs; isomorphic removals collapse
    to a single entry.
    """
    if tree.num_edges < 2:
        return []
    out: Dict[str, LabeledGraph] = {}
    for leaf in tree.vertices():
        if tree.degree(leaf) != 1:
            continue
        keep = [
            (u, v) for u, v, _ in tree.edges() if leaf not in (u, v)
        ]
        sub, _ = tree.subgraph_from_edges(keep)
        out.setdefault(tree_canonical_string(sub), sub)
    return list(out.items())


@dataclass
class ShrinkReport:
    """What shrinking did: which canonical keys were removed and why."""

    kept: Dict[str, MinedPattern]
    removed: Dict[str, float]  # canonical key -> redundancy ratio

    @property
    def removed_count(self) -> int:
        return len(self.removed)


def shrink_feature_set(
    frequent: Dict[str, MinedPattern], gamma: float
) -> ShrinkReport:
    """Apply the γ-shrinking rule to a mined frequent-tree set.

    ``frequent`` maps canonical keys to mined patterns (with exact support
    sets).  A pattern ``r`` with ``size >= 2`` is removed when
    ``|⋂ D_{r_i}| / |D_r| <= gamma``; subtree supports are always taken
    from the *full* pre-shrink set so removal order cannot matter.
    """
    kept: Dict[str, MinedPattern] = {}
    removed: Dict[str, float] = {}
    # Canonical-key order: feature ids are assigned by enumerating `kept`,
    # so its insertion order must not depend on mining discovery order.
    for key, pattern in sorted(frequent.items()):
        if pattern.size < 2 or pattern.support == 0:
            kept[key] = pattern
            continue
        subtrees = leaf_removed_subtrees(pattern.graph)
        intersection: Set[int] = None  # type: ignore[assignment]
        complete = True
        for sub_key, _ in subtrees:
            sub_pattern = frequent.get(sub_key)
            if sub_pattern is None:
                # A parent missing from the frequent set means support
                # bookkeeping is approximate here; keep r conservatively.
                complete = False
                break
            support = sub_pattern.support_set()
            intersection = (
                set(support) if intersection is None else intersection & support
            )
        if not complete or intersection is None:
            kept[key] = pattern
            continue
        ratio = len(intersection) / pattern.support
        if ratio <= gamma:
            removed[key] = ratio
        else:
            kept[key] = pattern
    return ShrinkReport(kept=kept, removed=removed)
