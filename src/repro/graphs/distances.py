"""Shortest-path machinery (unweighted BFS) over :class:`LabeledGraph`.

Center Distance Constraints (Section 5.2.2) compare hop distances between
feature-tree centers inside the query and inside each candidate graph, so
the index needs fast repeated single-source BFS.  :class:`DistanceOracle`
memoizes BFS levels per source vertex for one graph.

A tree center may be a single vertex or an edge (two adjacent vertices,
Theorem 1); distances between centers are therefore defined between small
vertex *sets*, taking the minimum over endpoint pairs.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from repro.graphs.graph import LabeledGraph

INFINITY = float("inf")


def bfs_distances(graph: LabeledGraph, source: int) -> List[float]:
    """Hop distances from ``source`` to every vertex (``inf`` if unreachable)."""
    dist: List[float] = [INFINITY] * graph.num_vertices
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in graph.neighbors(u):
            if dist[v] is INFINITY or dist[v] > du + 1:
                dist[v] = du + 1
                queue.append(v)
    return dist


def shortest_path_length(graph: LabeledGraph, u: int, v: int) -> float:
    """Hop distance between two vertices (``inf`` if disconnected)."""
    return bfs_distances(graph, u)[v]


def eccentricity(graph: LabeledGraph, u: int) -> float:
    """Largest hop distance from ``u`` (``inf`` on disconnected graphs)."""
    dist = bfs_distances(graph, u)
    return max(dist) if dist else 0


def diameter(graph: LabeledGraph) -> float:
    """Largest pairwise hop distance (``inf`` on disconnected graphs)."""
    if graph.num_vertices == 0:
        return 0
    return max(eccentricity(graph, u) for u in graph.vertices())


class DistanceOracle:
    """Lazy all-pairs distances for one graph, one BFS per queried source.

    Query pruning probes many vertex pairs in the same candidate graph; the
    oracle runs BFS only for sources it actually sees and caches the levels.
    """

    def __init__(self, graph: LabeledGraph) -> None:
        self._graph = graph
        self._levels: Dict[int, List[float]] = {}

    def distance(self, u: int, v: int) -> float:
        if u == v:
            return 0
        # Reuse whichever endpoint already has levels cached.
        if v in self._levels and u not in self._levels:
            u, v = v, u
        levels = self._levels.get(u)
        if levels is None:
            levels = bfs_distances(self._graph, u)
            self._levels[u] = levels
        return levels[v]

    def set_distance(self, a: Iterable[int], b: Iterable[int]) -> float:
        """Minimum distance between two vertex sets (centers may be edges)."""
        a = tuple(a)
        b = tuple(b)
        best = INFINITY
        for u in a:
            for v in b:
                d = self.distance(u, v)
                if d < best:
                    best = d
                    if best == 0:
                        return 0
        return best


def center_distance(
    graph: LabeledGraph,
    center_a: Tuple[int, ...],
    center_b: Tuple[int, ...],
    oracle: Optional[DistanceOracle] = None,
) -> float:
    """Distance between two tree centers embedded in ``graph``.

    Centers are tuples of one vertex (vertex-centered tree) or two adjacent
    vertices (edge-centered tree); the distance is the minimum over endpoint
    pairs, which is what the pruning inequality of Section 5.2.2 needs.
    """
    if oracle is None:
        oracle = DistanceOracle(graph)
    return oracle.set_distance(center_a, center_b)
