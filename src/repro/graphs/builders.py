"""Convenience constructors and (optional) networkx interop.

networkx is not a runtime dependency of the library; it is imported lazily
so test suites can cross-check our matcher against
``networkx.algorithms.isomorphism.GraphMatcher``.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence, Tuple

from repro.exceptions import GraphError
from repro.graphs.graph import EdgeLabel, LabeledGraph, VertexLabel


def graph_from_edgelist(
    vertex_labels: Sequence[VertexLabel],
    edges: Iterable[Tuple[int, int, EdgeLabel]],
    graph_id: Optional[int] = None,
) -> LabeledGraph:
    """Build a graph from labels and ``(u, v, label)`` triples."""
    return LabeledGraph(vertex_labels, edges, graph_id=graph_id)


def path_graph(vertex_labels: Sequence[VertexLabel], edge_label: EdgeLabel = 1) -> LabeledGraph:
    """A simple path ``0 - 1 - ... - n-1`` with one uniform edge label."""
    g = LabeledGraph(vertex_labels)
    for u in range(len(vertex_labels) - 1):
        g.add_edge(u, u + 1, edge_label)
    return g


def star_graph(
    center_label: VertexLabel,
    leaf_labels: Sequence[VertexLabel],
    edge_label: EdgeLabel = 1,
) -> LabeledGraph:
    """A star: vertex 0 is the hub, vertices ``1..k`` are leaves."""
    g = LabeledGraph([center_label, *leaf_labels])
    for leaf in range(1, len(leaf_labels) + 1):
        g.add_edge(0, leaf, edge_label)
    return g


def cycle_graph(vertex_labels: Sequence[VertexLabel], edge_label: EdgeLabel = 1) -> LabeledGraph:
    """A simple cycle over ``len(vertex_labels) >= 3`` vertices."""
    n = len(vertex_labels)
    if n < 3:
        raise GraphError("cycle_graph needs at least 3 vertices")
    g = path_graph(vertex_labels, edge_label)
    g.add_edge(n - 1, 0, edge_label)
    return g


def to_networkx(graph: LabeledGraph) -> Any:
    """Convert to an ``networkx.Graph`` with ``label`` node/edge attributes."""
    import networkx as nx

    nxg = nx.Graph()
    for u in graph.vertices():
        nxg.add_node(u, label=graph.vertex_label(u))
    for u, v, label in graph.edges():
        nxg.add_edge(u, v, label=label)
    return nxg


def from_networkx(nxg: Any, graph_id: Optional[int] = None) -> LabeledGraph:
    """Convert from an ``networkx.Graph`` carrying ``label`` attributes.

    Nodes are renumbered ``0..n-1`` in sorted node order; missing labels
    default to ``None`` (vertices) and ``1`` (edges).
    """
    nodes = sorted(nxg.nodes())
    remap = {node: i for i, node in enumerate(nodes)}
    g = LabeledGraph(
        [nxg.nodes[node].get("label") for node in nodes], graph_id=graph_id
    )
    for u, v, data in nxg.edges(data=True):
        g.add_edge(remap[u], remap[v], data.get("label", 1))
    return g
