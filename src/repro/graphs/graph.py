"""Undirected labeled graphs — the base data structure of the library.

The paper (Definition 1) models data as undirected labeled graphs
``G = (V, E, Sigma_V, Sigma_E, l)``.  :class:`LabeledGraph` realizes that
definition with integer vertices ``0..n-1``, hashable vertex labels, and
hashable edge labels.  The structure is deliberately simple and fully
deterministic: adjacency is a list of per-vertex dictionaries, edges are
stored once under a sorted ``(u, v)`` key.

Vertex and edge labels may be any hashable values; the chemical datasets
use short strings (``"C"``, ``"N"``, bond orders ``1``/``2``) and the
synthetic generator uses small integers.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.exceptions import GraphError
from repro.storage.posting import PostingList, id_array

if TYPE_CHECKING:  # imported lazily at runtime to avoid a module cycle
    from repro.graphs.matcher_index import MatcherIndex

VertexLabel = Hashable
EdgeLabel = Hashable
Edge = Tuple[int, int]


def edge_key(u: int, v: int) -> Edge:
    """Return the canonical storage key for the undirected edge ``{u, v}``."""
    if u == v:
        raise GraphError(f"self-loops are not supported (vertex {u})")
    return (u, v) if u < v else (v, u)


class LabeledGraph:
    """An undirected labeled graph with integer vertices ``0..n-1``.

    Parameters
    ----------
    vertex_labels:
        Labels for vertices ``0..len(vertex_labels)-1``.
    edges:
        Optional iterable of ``(u, v, label)`` triples.
    graph_id:
        Optional identifier used by database containers and support sets.
    """

    __slots__ = ("_vlabels", "_adj", "_num_edges", "graph_id", "_matcher_cache")

    def __init__(
        self,
        vertex_labels: Sequence[VertexLabel] = (),
        edges: Iterable[Tuple[int, int, EdgeLabel]] = (),
        graph_id: Optional[int] = None,
    ) -> None:
        self._vlabels: List[VertexLabel] = list(vertex_labels)
        self._adj: List[Dict[int, EdgeLabel]] = [{} for _ in self._vlabels]
        self._num_edges = 0
        self.graph_id = graph_id
        self._matcher_cache: Optional["MatcherIndex"] = None
        for u, v, label in edges:
            self.add_edge(u, v, label)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, label: VertexLabel) -> int:
        """Append a vertex with ``label`` and return its id."""
        self._vlabels.append(label)
        self._adj.append({})
        self._matcher_cache = None
        return len(self._vlabels) - 1

    def add_edge(self, u: int, v: int, label: EdgeLabel) -> None:
        """Add the undirected edge ``{u, v}`` carrying ``label``."""
        key = edge_key(u, v)
        self._check_vertex(u)
        self._check_vertex(v)
        if v in self._adj[u]:
            raise GraphError(f"duplicate edge ({key[0]}, {key[1]})")
        self._adj[u][v] = label
        self._adj[v][u] = label
        self._num_edges += 1
        self._matcher_cache = None

    # ------------------------------------------------------------------
    # matcher acceleration (see repro.graphs.matcher_index)
    # ------------------------------------------------------------------
    def matcher_index(self) -> "MatcherIndex":
        """The graph's cached :class:`~repro.graphs.matcher_index.MatcherIndex`.

        Built lazily on first use and dropped by every structural
        mutation (``add_vertex``/``add_edge`` — vertices and edges are
        never removed in place; database-level removal discards the
        whole graph object).  Derived state only: it is never persisted
        (v1/v2/v3 loaders reconstruct graphs from columns, so a loaded
        graph rebuilds its index lazily) and never pickled (see
        ``__getstate__``).
        """
        if self._matcher_cache is None:
            from repro.graphs.matcher_index import MatcherIndex

            self._matcher_cache = MatcherIndex(self)
        return self._matcher_cache

    # ------------------------------------------------------------------
    # pickling (process-pool builds ship graphs to workers)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Tuple:
        # The matcher cache is derived state — cheap to rebuild and big
        # enough (parity matrices) that shipping it to pool workers would
        # only slow the byte-identical parallel build down.
        return (self._vlabels, self._adj, self._num_edges, self.graph_id)

    def __setstate__(self, state: Tuple) -> None:
        self._vlabels, self._adj, self._num_edges, self.graph_id = state
        self._matcher_cache = None

    def _check_vertex(self, u: int) -> None:
        if not 0 <= u < len(self._vlabels):
            raise GraphError(f"unknown vertex {u} (graph has {len(self._vlabels)} vertices)")

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._vlabels)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> range:
        return range(len(self._vlabels))

    def vertex_label(self, u: int) -> VertexLabel:
        self._check_vertex(u)
        return self._vlabels[u]

    def vertex_labels(self) -> Tuple[VertexLabel, ...]:
        return tuple(self._vlabels)

    def has_edge(self, u: int, v: int) -> bool:
        if not (0 <= u < len(self._vlabels) and 0 <= v < len(self._vlabels)):
            return False
        return v in self._adj[u]

    def edge_label(self, u: int, v: int) -> EdgeLabel:
        self._check_vertex(u)
        try:
            return self._adj[u][v]
        except KeyError:
            raise GraphError(f"no edge between {u} and {v}") from None

    def neighbors(self, u: int) -> Iterator[int]:
        self._check_vertex(u)
        return iter(self._adj[u])

    def neighbor_items(self, u: int) -> Iterator[Tuple[int, EdgeLabel]]:
        """Iterate ``(neighbor, edge_label)`` pairs of ``u``."""
        self._check_vertex(u)
        return iter(self._adj[u].items())

    def degree(self, u: int) -> int:
        self._check_vertex(u)
        return len(self._adj[u])

    def edges(self) -> Iterator[Tuple[int, int, EdgeLabel]]:
        """Iterate each undirected edge exactly once as ``(u, v, label)``, u < v."""
        for u, nbrs in enumerate(self._adj):
            # Adjacency dicts are insertion-ordered by construction sequence,
            # which is part of this class's determinism guarantee.
            for v, label in nbrs.items():  # noqa: REPRO101 - feeds a sorted() aggregate; order-free
                if u < v:
                    yield (u, v, label)

    def edge_set(self) -> frozenset:
        """The set of edge keys ``(u, v)`` with ``u < v`` (labels excluded)."""
        return frozenset((u, v) for u, v, _ in self.edges())

    # ------------------------------------------------------------------
    # structure predicates
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """True for the empty graph and for any graph with one BFS component."""
        n = len(self._vlabels)
        if n == 0:
            return True
        seen = [False] * n
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == n

    def is_tree(self) -> bool:
        """True iff the graph is connected and has exactly ``n - 1`` edges."""
        n = len(self._vlabels)
        if n == 0:
            return False
        return self._num_edges == n - 1 and self.is_connected()

    def connected_components(self) -> List[List[int]]:
        """Vertex lists of the connected components, each sorted ascending."""
        n = len(self._vlabels)
        seen = [False] * n
        components: List[List[int]] = []
        for start in range(n):
            if seen[start]:
                continue
            comp = [start]
            seen[start] = True
            stack = [start]
            while stack:
                u = stack.pop()
                for v in self._adj[u]:
                    if not seen[v]:
                        seen[v] = True
                        comp.append(v)
                        stack.append(v)
            comp.sort()
            components.append(comp)
        return components

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self, graph_id: Optional[int] = None) -> "LabeledGraph":
        g = LabeledGraph(self._vlabels, graph_id=self.graph_id if graph_id is None else graph_id)
        for u, v, label in self.edges():
            g.add_edge(u, v, label)
        return g

    def subgraph_from_edges(
        self, edge_keys: Iterable[Edge], graph_id: Optional[int] = None
    ) -> Tuple["LabeledGraph", Dict[int, int]]:
        """Build the edge-induced subgraph over ``edge_keys``.

        Returns the new graph (vertices renumbered ``0..k-1``) and the mapping
        ``old_vertex -> new_vertex``.  Vertex order in the new graph follows
        ascending old-vertex ids, making the operation deterministic.
        """
        keys = sorted(edge_key(u, v) for u, v in edge_keys)
        old_vertices = sorted({u for k in keys for u in k})
        remap = {old: new for new, old in enumerate(old_vertices)}
        sub = LabeledGraph([self._vlabels[u] for u in old_vertices], graph_id=graph_id)
        for u, v in keys:
            sub.add_edge(remap[u], remap[v], self.edge_label(u, v))
        return sub, remap

    def relabeled(self, permutation: Sequence[int]) -> "LabeledGraph":
        """Return an isomorphic copy where old vertex ``u`` becomes ``permutation[u]``.

        ``permutation`` must be a permutation of ``0..n-1``.
        """
        n = len(self._vlabels)
        if sorted(permutation) != list(range(n)):
            raise GraphError("relabeled() requires a permutation of all vertices")
        labels: List[VertexLabel] = [None] * n
        for old, new in enumerate(permutation):
            labels[new] = self._vlabels[old]
        g = LabeledGraph(labels, graph_id=self.graph_id)
        for u, v, label in self.edges():
            g.add_edge(permutation[u], permutation[v], label)
        return g

    # ------------------------------------------------------------------
    # equality / fingerprints
    # ------------------------------------------------------------------
    def structure_equal(self, other: "LabeledGraph") -> bool:
        """Exact equality of vertex ids, labels and edges (not isomorphism)."""
        if self._vlabels != other._vlabels or self._num_edges != other._num_edges:
            return False
        return all(
            other.has_edge(u, v) and other.edge_label(u, v) == label
            for u, v, label in self.edges()
        )

    def label_multiset_signature(self) -> Tuple[Tuple, Tuple]:
        """A cheap isomorphism-invariant: sorted vertex labels and edge triples.

        Two isomorphic graphs always share this signature; unequal signatures
        prove non-isomorphism quickly.
        """
        vsig = tuple(sorted(map(repr, self._vlabels)))
        esig = tuple(
            sorted(
                (min(repr(self._vlabels[u]), repr(self._vlabels[v])),
                 max(repr(self._vlabels[u]), repr(self._vlabels[v])),
                 repr(label))
                for u, v, label in self.edges()
            )
        )
        return (vsig, esig)

    def __repr__(self) -> str:
        gid = f" id={self.graph_id}" if self.graph_id is not None else ""
        return f"<LabeledGraph{gid} |V|={self.num_vertices} |E|={self.num_edges}>"


class GraphDatabase:
    """An ordered collection of :class:`LabeledGraph` with stable integer ids.

    Graphs keep the id they were added under even after deletions, matching
    the insert/delete maintenance discussion of Section 7.1.
    """

    def __init__(self, graphs: Iterable[LabeledGraph] = ()) -> None:
        self._graphs: Dict[int, LabeledGraph] = {}
        self._next_id = 0
        self._universe: Optional[PostingList] = None
        for g in graphs:
            self.add(g)

    def add(self, graph: LabeledGraph, graph_id: Optional[int] = None) -> int:
        """Add ``graph`` and return its database id (stamped onto ``graph_id``).

        ``graph_id`` may pin a specific unused id (wrappers aligning two
        databases use this); the auto-assign counter advances past it.
        """
        if graph_id is None:
            gid = self._next_id
        else:
            if graph_id in self._graphs:
                raise GraphError(f"graph id {graph_id} already in use")
            gid = graph_id
        self._next_id = max(self._next_id, gid + 1)
        graph.graph_id = gid
        self._graphs[gid] = graph
        self._universe = None
        return gid

    def remove(self, graph_id: int) -> LabeledGraph:
        try:
            removed = self._graphs.pop(graph_id)
        except KeyError:
            raise GraphError(f"no graph with id {graph_id}") from None
        self._universe = None
        return removed

    def __len__(self) -> int:
        return len(self._graphs)

    def __iter__(self) -> Iterator[LabeledGraph]:
        return iter(self._graphs.values())

    def __contains__(self, graph_id: int) -> bool:
        return graph_id in self._graphs

    def __getitem__(self, graph_id: int) -> LabeledGraph:
        try:
            return self._graphs[graph_id]
        except KeyError:
            raise GraphError(f"no graph with id {graph_id}") from None

    def graph_ids(self) -> List[int]:
        return sorted(self._graphs)

    def universe_posting(self) -> PostingList:
        """All graph ids as a cached zero-copy posting-list snapshot.

        This is the ``P_q ← D`` initializer of Algorithm 1: the stage-1
        filter and the baselines seed their candidate sets from it on
        every query, so the sorted id column is built once and shared
        until :meth:`add`/:meth:`remove` invalidate it.  Handed-out
        snapshots stay consistent — the backing array is replaced on
        invalidation, never mutated.
        """
        if self._universe is None:
            self._universe = PostingList._wrap(id_array(sorted(self._graphs)))
        return self._universe

    def average_edge_count(self) -> float:
        """Mean edge count, the paper's ``s̄_D`` used to pick eta."""
        if not self._graphs:
            return 0.0
        return sum(g.num_edges for g in self._graphs.values()) / len(self._graphs)
