"""Labeled-graph substrate: structures, isomorphism, distances, canonical labels."""

from repro.graphs.graph import Edge, GraphDatabase, LabeledGraph, edge_key
from repro.graphs.builders import (
    cycle_graph,
    from_networkx,
    graph_from_edgelist,
    path_graph,
    star_graph,
    to_networkx,
)
from repro.graphs.canonical import canonical_label, minimum_dfs_code
from repro.graphs.distances import (
    DistanceOracle,
    bfs_distances,
    center_distance,
    diameter,
    eccentricity,
    shortest_path_length,
)
from repro.graphs.metrics import (
    DatabaseProfile,
    cyclomatic_number,
    degree_histogram,
    graph_density,
    label_entropy,
    profile_database,
)
from repro.graphs.isomorphism import (
    are_isomorphic,
    automorphisms,
    count_embeddings,
    is_subgraph_isomorphic,
    subgraph_monomorphisms,
)
from repro.graphs.random_subgraph import (
    random_connected_edge_subset,
    random_connected_subgraph,
    random_spanning_tree_edges,
)
from repro.graphs.serialization import (
    dump_graph,
    dumps_database,
    iter_graphs,
    load_database,
    loads_database,
    save_database,
)

__all__ = [
    "Edge",
    "GraphDatabase",
    "LabeledGraph",
    "edge_key",
    "graph_from_edgelist",
    "path_graph",
    "star_graph",
    "cycle_graph",
    "to_networkx",
    "from_networkx",
    "canonical_label",
    "minimum_dfs_code",
    "DistanceOracle",
    "bfs_distances",
    "center_distance",
    "diameter",
    "eccentricity",
    "shortest_path_length",
    "DatabaseProfile",
    "cyclomatic_number",
    "degree_histogram",
    "graph_density",
    "label_entropy",
    "profile_database",
    "are_isomorphic",
    "automorphisms",
    "count_embeddings",
    "is_subgraph_isomorphic",
    "subgraph_monomorphisms",
    "random_connected_edge_subset",
    "random_connected_subgraph",
    "random_spanning_tree_edges",
    "dump_graph",
    "dumps_database",
    "iter_graphs",
    "load_database",
    "loads_database",
    "save_database",
]
