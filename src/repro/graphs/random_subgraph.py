"""Random connected subgraph extraction.

Section 6 builds query workloads ``Q_m`` by extracting a random connected
``m``-edge subgraph from randomly chosen database graphs; Section 5.1's
randomized partition also needs random connected edge splits.  Both live
here so they share the same growth procedure.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set, Tuple

from repro.exceptions import GraphError
from repro.graphs.graph import Edge, LabeledGraph, edge_key


def random_connected_edge_subset(
    graph: LabeledGraph,
    num_edges: int,
    rng: random.Random,
    start_edge: Optional[Edge] = None,
) -> List[Edge]:
    """Grow a random connected set of ``num_edges`` edge keys in ``graph``.

    Growth starts from ``start_edge`` (or a uniformly random edge) and
    repeatedly adds a random frontier edge incident to the current vertex
    set.  Raises :class:`GraphError` when the component containing the start
    edge has fewer than ``num_edges`` edges.
    """
    all_edges = list(graph.edges())
    if num_edges < 1:
        raise GraphError("num_edges must be >= 1")
    if not all_edges:
        raise GraphError("graph has no edges")

    if start_edge is None:
        u, v, _ = rng.choice(all_edges)
        start_edge = edge_key(u, v)
    chosen: Set[Edge] = {start_edge}
    touched: Set[int] = set(start_edge)

    while len(chosen) < num_edges:
        frontier: List[Edge] = []
        for u in touched:
            for v in graph.neighbors(u):
                key = edge_key(u, v)
                if key not in chosen:
                    frontier.append(key)
        if not frontier:
            raise GraphError(
                f"component has only {len(chosen)} edges, need {num_edges}"
            )
        key = rng.choice(frontier)
        chosen.add(key)
        touched.update(key)
    return sorted(chosen)


def random_connected_subgraph(
    graph: LabeledGraph, num_edges: int, rng: random.Random
) -> LabeledGraph:
    """A random connected ``num_edges``-edge subgraph, vertices renumbered."""
    keys = random_connected_edge_subset(graph, num_edges, rng)
    sub, _ = graph.subgraph_from_edges(keys)
    return sub


def random_spanning_tree_edges(graph: LabeledGraph, rng: random.Random) -> List[Edge]:
    """Edge keys of a uniform-ish random spanning tree (random BFS/DFS growth).

    Used by tests and the dataset generators; requires a connected graph.
    """
    n = graph.num_vertices
    if n == 0:
        return []
    if not graph.is_connected():
        raise GraphError("random_spanning_tree_edges requires a connected graph")
    start = rng.randrange(n)
    in_tree = {start}
    edges: List[Edge] = []
    frontier: List[Tuple[int, int]] = [(start, v) for v in graph.neighbors(start)]
    while len(in_tree) < n:
        idx = rng.randrange(len(frontier))
        u, v = frontier.pop(idx)
        if v in in_tree:
            continue
        in_tree.add(v)
        edges.append(edge_key(u, v))
        frontier.extend((v, w) for w in graph.neighbors(v) if w not in in_tree)
    return sorted(edges)
