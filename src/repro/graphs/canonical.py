"""Canonical labels for arbitrary labeled graphs (minimum DFS code).

TreePi only ever canonicalizes *trees* (cheap, see :mod:`repro.trees`), but
the gIndex baseline it is compared against indexes arbitrary frequent
subgraphs, which require a canonical form for general graphs — the very
cost the paper argues against.  We implement gSpan-style minimum DFS
codes: enumerate all valid depth-first traversals of the graph, encode
each as a sequence of edge entries, and keep the lexicographically
smallest sequence.

Entries ``(i, j, label_i, label_edge, label_j)`` are compared in gSpan's
DFS-code order: backward edges before forward edges, backward edges by
ascending destination, forward edges by *descending* origin depth (extend
from the rightmost vertex first), then labels.  We keep, per growth step,
only the states that realize the minimal next entry; with gSpan's order
the greedy prefix always extends to a complete traversal, so the
construction is exact without enumerating every traversal in full.

Worst-case cost is exponential (graph canonization has no known polynomial
algorithm) — exactly the asymmetry between TreePi and gIndex that Section
6 measures.  Patterns handled here are small (≤ ~10 edges).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis import contracts as _contracts
from repro.graphs.graph import LabeledGraph

# One DFS-code entry: (i, j, vertex_label_i, edge_label, vertex_label_j)
# with i, j discovery indices; forward edges have j == i + ... > i, backward
# edges have j < i.  Labels are repr()-ed so heterogeneous labels compare.
Entry = Tuple[int, int, str, str, str]


class _State:
    """A partial DFS traversal: discovery order plus the rightmost path."""

    __slots__ = ("vertex_at", "index_of", "rightmost_path", "used_edges")

    def __init__(
        self,
        vertex_at: List[int],
        index_of: Dict[int, int],
        rightmost_path: List[int],
        used_edges: frozenset,
    ) -> None:
        self.vertex_at = vertex_at          # dfs index -> graph vertex
        self.index_of = index_of            # graph vertex -> dfs index
        self.rightmost_path = rightmost_path  # dfs indices, root..rightmost
        self.used_edges = used_edges        # frozenset of (u, v) graph keys, u < v


def _ekey(u: int, v: int) -> Tuple[int, int]:
    return (u, v) if u < v else (v, u)


def _entry_sort_key(entry: Entry) -> Tuple:
    """gSpan DFS-code order as a sortable key.

    All entries compared during growth extend states with the *same* code
    prefix, hence the same index structure, which makes this key agree with
    gSpan's pairwise ≺ relation: backward edges sort before forward edges,
    backward edges by ascending destination index, forward edges by
    descending origin depth (the rightmost vertex extends first), and ties
    break on labels.
    """
    i, j, li, le, lj = entry
    if i < j or i == j:  # forward edge (or single-vertex sentinel)
        return (1, j, -i, li, le, lj)
    return (0, i, j, li, le, lj)


def _extensions(graph: LabeledGraph, state: _State) -> List[Tuple[Entry, _State]]:
    """All valid one-edge DFS extensions of ``state`` with their entries."""
    out: List[Tuple[Entry, _State]] = []
    rindex = state.rightmost_path[-1]
    rvertex = state.vertex_at[rindex]

    # Backward edges: from the rightmost vertex to an earlier vertex on the
    # rightmost path (skipping its DFS parent, whose edge is already used).
    for pidx in state.rightmost_path[:-1]:
        pvertex = state.vertex_at[pidx]
        if not graph.has_edge(rvertex, pvertex):
            continue
        key = _ekey(rvertex, pvertex)
        if key in state.used_edges:
            continue
        entry: Entry = (
            rindex,
            pidx,
            repr(graph.vertex_label(rvertex)),
            repr(graph.edge_label(rvertex, pvertex)),
            repr(graph.vertex_label(pvertex)),
        )
        nxt = _State(
            state.vertex_at,
            state.index_of,
            state.rightmost_path,
            state.used_edges | {key},
        )
        out.append((entry, nxt))

    # Forward edges: from any vertex on the rightmost path to a new vertex.
    new_index = len(state.vertex_at)
    for pos, fidx in enumerate(state.rightmost_path):
        fvertex = state.vertex_at[fidx]
        for nbr, elabel in graph.neighbor_items(fvertex):
            if nbr in state.index_of:
                continue
            entry = (
                fidx,
                new_index,
                repr(graph.vertex_label(fvertex)),
                repr(elabel),
                repr(graph.vertex_label(nbr)),
            )
            nxt = _State(
                state.vertex_at + [nbr],
                {**state.index_of, nbr: new_index},
                state.rightmost_path[: pos + 1] + [new_index],
                state.used_edges | {_ekey(fvertex, nbr)},
            )
            out.append((entry, nxt))
    return out


def minimum_dfs_code(graph: LabeledGraph) -> Tuple[Entry, ...]:
    """The lexicographically minimal DFS code of a connected graph.

    Single-vertex graphs get a sentinel one-entry code carrying the vertex
    label; the empty graph gets an empty code.
    """
    if graph.num_vertices == 0:
        return ()
    if graph.num_edges == 0:
        if graph.num_vertices > 1:
            raise ValueError("minimum_dfs_code requires a connected graph")
        return ((0, 0, repr(graph.vertex_label(0)), "", ""),)

    # Seed states: every directed edge realizing the minimal first entry.
    best_first: Optional[Entry] = None
    seeds: List[_State] = []
    for u, v, elabel in graph.edges():
        for a, b in ((u, v), (v, u)):
            entry: Entry = (
                0,
                1,
                repr(graph.vertex_label(a)),
                repr(elabel),
                repr(graph.vertex_label(b)),
            )
            if best_first is None or _entry_sort_key(entry) < _entry_sort_key(best_first):
                best_first = entry
                seeds = []
            if entry == best_first:
                seeds.append(
                    _State([a, b], {a: 0, b: 1}, [0, 1], frozenset({_ekey(a, b)}))
                )

    code: List[Entry] = [best_first]  # type: ignore[list-item]
    states = seeds
    for _ in range(graph.num_edges - 1):
        best_entry: Optional[Entry] = None
        survivors: List[_State] = []
        for st in states:
            for entry, nxt in _extensions(graph, st):
                if best_entry is None or _entry_sort_key(entry) < _entry_sort_key(best_entry):
                    best_entry = entry
                    survivors = [nxt]
                elif entry == best_entry:
                    survivors.append(nxt)
        if best_entry is None:
            raise ValueError("minimum_dfs_code requires a connected graph")
        code.append(best_entry)
        states = survivors
    return tuple(code)


def canonical_label(graph: LabeledGraph) -> str:
    """A string canonical label: equal iff the graphs are isomorphic."""
    label = "|".join(
        f"{i},{j},{li},{le},{lj}" for (i, j, li, le, lj) in minimum_dfs_code(graph)
    )
    if _contracts.contracts_enabled():
        _contracts.check_graph_canonical_invariance(graph, label)
    return label
