"""Descriptive statistics for graphs and graph databases.

Dataset characterization drives every tuning decision in this library
(σ thresholds, γ, η are all chosen against database shape — Section
4.1.3's heuristics need ``s̄_D``, label diversity drives Figure 13's
difficulty).  This module computes those shape numbers once, uniformly,
for generators, the CLI's ``info`` command, and tests.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.graphs.graph import GraphDatabase, LabeledGraph


def label_entropy(counts: Counter) -> float:
    """Shannon entropy (bits) of a label multiset; 0 for uniform/empty."""
    total = sum(counts.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    # Sorted so the float accumulation order (and thus the last ulp) never
    # depends on Counter insertion order.
    for count in sorted(counts.values()):
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def degree_histogram(graph: LabeledGraph) -> Dict[int, int]:
    """``degree -> vertex count`` for one graph."""
    hist: Dict[int, int] = {}
    for v in graph.vertices():
        d = graph.degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist


def graph_density(graph: LabeledGraph) -> float:
    """``|E| / C(|V|, 2)`` — 0 for graphs with fewer than two vertices."""
    n = graph.num_vertices
    if n < 2:
        return 0.0
    return graph.num_edges / (n * (n - 1) / 2)


def cyclomatic_number(graph: LabeledGraph) -> int:
    """``|E| - |V| + #components`` — 0 exactly for forests."""
    components = len(graph.connected_components())
    return graph.num_edges - graph.num_vertices + components


@dataclass
class DatabaseProfile:
    """Shape summary of one graph database."""

    num_graphs: int
    total_vertices: int
    total_edges: int
    avg_vertices: float
    avg_edges: float
    max_degree: int
    avg_density: float
    tree_fraction: float            # graphs that are trees
    vertex_label_counts: Counter
    edge_label_counts: Counter

    @property
    def num_vertex_labels(self) -> int:
        return len(self.vertex_label_counts)

    @property
    def num_edge_labels(self) -> int:
        return len(self.edge_label_counts)

    @property
    def vertex_label_entropy(self) -> float:
        return label_entropy(self.vertex_label_counts)

    @property
    def edge_label_entropy(self) -> float:
        return label_entropy(self.edge_label_counts)

    def dominant_vertex_labels(self, k: int = 3) -> List[Tuple[object, int]]:
        return self.vertex_label_counts.most_common(k)

    def describe(self) -> str:
        """A compact multi-line human-readable summary."""
        lines = [
            f"{self.num_graphs} graphs, avg {self.avg_vertices:.1f} vertices /"
            f" {self.avg_edges:.1f} edges",
            f"labels: {self.num_vertex_labels} vertex"
            f" (entropy {self.vertex_label_entropy:.2f} bits),"
            f" {self.num_edge_labels} edge"
            f" (entropy {self.edge_label_entropy:.2f} bits)",
            f"max degree {self.max_degree}, avg density {self.avg_density:.3f},"
            f" {self.tree_fraction:.0%} trees",
        ]
        return "\n".join(lines)


def profile_database(db: GraphDatabase) -> DatabaseProfile:
    """Compute the :class:`DatabaseProfile` of ``db`` in one pass."""
    vertex_labels: Counter = Counter()
    edge_labels: Counter = Counter()
    total_vertices = total_edges = 0
    max_degree = 0
    density_sum = 0.0
    trees = 0
    n = 0
    for graph in db:
        n += 1
        total_vertices += graph.num_vertices
        total_edges += graph.num_edges
        vertex_labels.update(graph.vertex_labels())
        edge_labels.update(label for _, _, label in graph.edges())
        if graph.num_vertices:
            max_degree = max(
                max_degree, max(graph.degree(v) for v in graph.vertices())
            )
        density_sum += graph_density(graph)
        trees += graph.is_tree()
    return DatabaseProfile(
        num_graphs=n,
        total_vertices=total_vertices,
        total_edges=total_edges,
        avg_vertices=total_vertices / n if n else 0.0,
        avg_edges=total_edges / n if n else 0.0,
        max_degree=max_degree,
        avg_density=density_sum / n if n else 0.0,
        tree_fraction=trees / n if n else 0.0,
        vertex_label_counts=vertex_labels,
        edge_label_counts=edge_labels,
    )
