"""Text serialization of graph databases.

The format mirrors the line-oriented layout used by gSpan-era tools
(the paper's datasets ship in exactly this style):

.. code-block:: text

    t # 0          # graph header with id
    v 0 C          # vertex <id> <label>
    v 1 N
    e 0 1 1        # edge <u> <v> <label>
    t # 1
    ...

Labels are stored as strings; integer-looking labels are parsed back to
``int`` so round-tripping the synthetic datasets is lossless.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterator, List, TextIO, Union

from repro.exceptions import SerializationError
from repro.graphs.graph import GraphDatabase, LabeledGraph


def _parse_label(token: str) -> object:
    try:
        return int(token)
    except ValueError:
        return token


def dump_graph(graph: LabeledGraph, out: TextIO) -> None:
    """Write one graph in gSpan text format."""
    gid = graph.graph_id if graph.graph_id is not None else 0
    out.write(f"t # {gid}\n")
    for u in graph.vertices():
        out.write(f"v {u} {graph.vertex_label(u)}\n")
    for u, v, label in graph.edges():
        out.write(f"e {u} {v} {label}\n")


def dumps_database(db: GraphDatabase) -> str:
    """Serialize a whole database to one gSpan-format string."""
    buf = io.StringIO()
    for graph in db:
        dump_graph(graph, buf)
    return buf.getvalue()


def save_database(db: GraphDatabase, path: Union[str, Path]) -> None:
    """Write a database to ``path`` in gSpan text format."""
    with open(path, "w") as f:
        f.write(dumps_database(db))


def iter_graphs(lines: Iterator[str]) -> Iterator[LabeledGraph]:
    """Parse graphs from an iterator of lines, yielding them in file order."""
    current: List[str] = []
    gid = None
    graph: LabeledGraph = None  # type: ignore[assignment]

    def finish() -> Iterator[LabeledGraph]:
        if graph is not None:
            yield graph

    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        kind = parts[0]
        if kind == "t":
            yield from finish()
            try:
                gid = int(parts[-1])
            except ValueError:
                raise SerializationError(f"line {lineno}: bad graph header {line!r}")
            graph = LabeledGraph(graph_id=gid)
        elif kind == "v":
            if graph is None:
                raise SerializationError(f"line {lineno}: vertex before graph header")
            if len(parts) < 3:
                raise SerializationError(f"line {lineno}: bad vertex line {line!r}")
            vid = int(parts[1])
            if vid != graph.num_vertices:
                raise SerializationError(
                    f"line {lineno}: vertex ids must be consecutive (got {vid})"
                )
            graph.add_vertex(_parse_label(" ".join(parts[2:])))
        elif kind == "e":
            if graph is None:
                raise SerializationError(f"line {lineno}: edge before graph header")
            if len(parts) < 4:
                raise SerializationError(f"line {lineno}: bad edge line {line!r}")
            graph.add_edge(int(parts[1]), int(parts[2]), _parse_label(" ".join(parts[3:])))
        else:
            raise SerializationError(f"line {lineno}: unknown record {kind!r}")
    yield from finish()


def loads_database(text: str) -> GraphDatabase:
    """Parse a gSpan-format string into a fresh database."""
    db = GraphDatabase()
    for graph in iter_graphs(iter(text.splitlines())):
        db.add(graph)
    return db


def load_database(path: Union[str, Path]) -> GraphDatabase:
    """Read a gSpan-format database file from disk."""
    with open(path) as f:
        return loads_database(f.read())
