"""Per-graph matcher acceleration structures (l2Match / CNI style).

The subgraph matcher in :mod:`repro.graphs.isomorphism` spends almost
all of its time expanding candidate vertices that a cheap invariant
could have refuted up front.  This module precomputes three such
invariants per graph, cached on :class:`~repro.graphs.graph.
LabeledGraph` (see ``LabeledGraph.matcher_index``) and invalidated by
``add_vertex``/``add_edge``:

* **Label-pair edge index** (l2Match's label-pair filter) —
  ``pair_counts[(l(u), l(uv), l(v))]`` counts directed incidences of
  each (vertex label, edge label, vertex label) triple.  A monomorphism
  maps every pattern incidence onto a distinct target incidence with the
  same triple, so a pattern whose pair multiset is not contained in the
  target's cannot embed at all; the matcher also uses the counts to pick
  the *rarest* label pair as each level's primary anchor.

* **Neighboring-label bitset signatures** (l2Match's NLI / the Compact
  Neighborhood Index) — ``nbr_vsig[v]`` / ``nbr_esig[v]`` are bitsets
  over the graph's own dense label alphabets (``vlabel_bits`` /
  ``elabel_bits``) recording which vertex and edge labels appear on
  ``v``'s incident edges.  A target vertex can host a pattern vertex
  only if its signatures are supersets of the pattern vertex's
  requirements — one AND plus compare refutes a candidate before any
  adjacency walk.

* **Walk-parity distance matrices** — ``parity_rows()`` returns two
  flat ``n*n`` bytearrays holding, for every ordered vertex pair, the
  minimum length of a connecting walk of even and of odd length
  (``255`` = none of length <= 254).  Monomorphisms map walks onto
  equal-length walks, so for every pattern pair with a finite parity-p
  walk bound the images must satisfy the same bound in the target.
  This is the invariant that collapses the classic adversarial
  instance — an odd cycle against a bipartite grid — at search depth 1
  instead of after an exponential path enumeration: adjacent odd-cycle
  vertices need both an odd walk (length 1) and an *even* walk (around
  the cycle) between their images, and no bipartite graph has both.

All three are *necessary* conditions on (partial) monomorphisms, so
using them to refute candidates never changes an answer set — the
30-corpus differential suites pin that.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Tuple

if TYPE_CHECKING:  # structural typing avoids a module cycle with graph.py
    from repro.graphs.graph import LabeledGraph

#: Walk-parity matrices cost ``2 * n**2`` bytes plus one BFS per vertex;
#: above this vertex count :meth:`MatcherIndex.parity_rows` returns
#: ``None`` and the matcher simply skips parity pruning (the label-pair
#: and signature filters still apply).  Database graphs in the paper's
#: workloads are 1-2 orders of magnitude below the gate.
PARITY_MAX_VERTICES = 512

#: Stored parity distance meaning "no walk of length <= 254 with this
#: parity".  Clamping is sound on both sides: a pattern bound of 255 is
#: treated as *no constraint*, and a target value of 255 only ever fails
#: bounds below 255 — which a real walk could not satisfy either.
PARITY_INF = 255


class MatcherIndex:
    """Cached matcher-side invariants of one :class:`LabeledGraph`.

    Built once per graph (lazily, via ``graph.matcher_index()``) and
    shared by every subsequent matcher call against that graph.  The
    structure holds a reference to the graph's adjacency only to build
    the parity matrices on first use; the owning graph drops the whole
    index on mutation, so a live ``MatcherIndex`` always describes the
    current structure.
    """

    __slots__ = (
        "num_vertices",
        "vlabel_bits",
        "elabel_bits",
        "nbr_vsig",
        "nbr_esig",
        "pair_counts",
        "_adj",
        "_parity",
    )

    def __init__(self, graph: "LabeledGraph") -> None:
        adj = graph._adj
        vlabels = graph._vlabels
        n = len(vlabels)
        self.num_vertices = n
        self._adj = adj
        self._parity: Optional[Tuple[bytearray, bytearray]] = None

        vbits: Dict[Hashable, int] = {}
        for lbl in vlabels:
            if lbl not in vbits:
                vbits[lbl] = 1 << len(vbits)
        ebits: Dict[Hashable, int] = {}
        nbr_vsig = [0] * n
        nbr_esig = [0] * n
        pair_counts: Dict[Tuple[Hashable, Hashable, Hashable], int] = {}
        for u in range(n):
            lu = vlabels[u]
            sv = se = 0
            # Bitwise ORs and counts commute — iteration order is free.
            for v, el in adj[u].items():  # noqa: REPRO101 - commutative aggregation; order-free
                eb = ebits.get(el)
                if eb is None:
                    eb = 1 << len(ebits)
                    ebits[el] = eb
                sv |= vbits[vlabels[v]]
                se |= eb
                key = (lu, el, vlabels[v])
                pair_counts[key] = pair_counts.get(key, 0) + 1
            nbr_vsig[u] = sv
            nbr_esig[u] = se
        self.vlabel_bits = vbits
        self.elabel_bits = ebits
        self.nbr_vsig = nbr_vsig
        self.nbr_esig = nbr_esig
        self.pair_counts = pair_counts

    # ------------------------------------------------------------------
    # walk-parity distances (lazy; size-gated)
    # ------------------------------------------------------------------
    def parity_rows(self) -> Optional[Tuple[bytearray, bytearray]]:
        """``(even, odd)`` flat ``n*n`` min-walk-length matrices, or ``None``.

        ``even[s * n + t]`` is the minimum length of an even-length walk
        from ``s`` to ``t`` (0 for ``s == t``), ``odd`` likewise for odd
        walks; :data:`PARITY_INF` marks pairs with no such walk of
        length <= 254.  Built on first call with one BFS over
        ``(vertex, parity)`` states per source; graphs above
        :data:`PARITY_MAX_VERTICES` return ``None`` (callers skip
        parity pruning).
        """
        n = self.num_vertices
        if n > PARITY_MAX_VERTICES:
            return None
        if self._parity is None:
            self._parity = self._build_parity()
        return self._parity

    def _build_parity(self) -> Tuple[bytearray, bytearray]:
        n = self.num_vertices
        adj = self._adj
        even = bytearray(b"\xff" * (n * n))
        odd = bytearray(b"\xff" * (n * n))
        for s in range(n):
            base = s * n
            even[base + s] = 0
            queue = deque([(s, 0)])
            while queue:
                v, p = queue.popleft()
                row = even if p == 0 else odd
                d = row[base + v] + 1
                if d > 254:
                    continue  # deeper layers stay clamped at PARITY_INF
                nrow = odd if p == 0 else even
                for w in adj[v]:
                    idx = base + w
                    if nrow[idx] == PARITY_INF:
                        nrow[idx] = d
                        queue.append((w, p ^ 1))
        return even, odd


def pair_subsumed(pattern_index: MatcherIndex, target_index: MatcherIndex) -> bool:
    """Is the pattern's label-pair incidence multiset contained in the target's?

    ``False`` *proves* the pattern cannot embed (each pattern incidence
    needs a distinct same-triple target incidence); ``True`` says
    nothing.  O(distinct pattern triples) dictionary probes — the cheap
    whole-graph refutation center pruning and verification run before
    touching the backtracking matcher.
    """
    tcounts = target_index.pair_counts
    for key, cnt in pattern_index.pair_counts.items():  # noqa: REPRO101 - universally-quantified check; order-free
        if tcounts.get(key, 0) < cnt:
            return False
    return True
