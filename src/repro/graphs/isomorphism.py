"""Labeled (sub)graph isomorphism via VF2-style backtracking.

The paper's containment relation (Definition 3) is edge-subgraph
isomorphism: ``q ⊆ g`` iff some subgraph of ``g`` is isomorphic to ``q``.
Operationally that is a *monomorphism*: an injective map of query vertices
into graph vertices that preserves vertex labels and maps every query edge
onto a graph edge with the same label (extra graph edges are allowed).

This module provides

* :func:`subgraph_monomorphisms` — generate all monomorphisms, optionally
  seeded with a partial assignment (used by center-anchored verification),
* :func:`is_subgraph_isomorphic` / :func:`count_embeddings`,
* :func:`are_isomorphic` and :func:`automorphisms` (Section 5.3.1 builds
  canonical reconstruction forms from automorphism groups).

The matcher orders pattern vertices connectivity-first (each vertex after
the first is adjacent to an earlier one whenever the pattern is connected)
so candidates can be drawn from neighborhoods of already-matched images
instead of the whole graph.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.analysis.flow import hot_path
from repro.graphs.graph import LabeledGraph

if TYPE_CHECKING:  # runtime use is duck-typed to avoid a core<->graphs cycle
    from repro.core.budget import CancellationToken


def _matching_order(pattern: LabeledGraph, seeded: Tuple[int, ...]) -> List[int]:
    """Order pattern vertices so each one touches the already-ordered prefix.

    Seeded vertices come first; ties are broken toward higher degree, which
    tends to fail early on non-matching graphs.
    """
    n = pattern.num_vertices
    order: List[int] = list(seeded)
    placed = set(order)
    while len(order) < n:
        frontier = [
            v
            for v in pattern.vertices()
            if v not in placed and any(w in placed for w in pattern.neighbors(v))
        ]
        pool = frontier or [v for v in pattern.vertices() if v not in placed]
        nxt = max(pool, key=lambda v: (pattern.degree(v), -v))
        order.append(nxt)
        placed.add(nxt)
    return order


@hot_path
def subgraph_monomorphisms(
    pattern: LabeledGraph,
    target: LabeledGraph,
    seed: Optional[Dict[int, int]] = None,
    limit: Optional[int] = None,
    token: Optional["CancellationToken"] = None,
) -> Iterator[Dict[int, int]]:
    """Yield injective label-preserving maps of ``pattern`` into ``target``.

    Parameters
    ----------
    seed:
        Partial assignment ``pattern_vertex -> target_vertex`` that every
        yielded mapping must extend (center anchoring in verification).
    limit:
        Stop after this many embeddings.
    token:
        Optional :class:`~repro.core.budget.CancellationToken`.  The
        backtracking search charges one work unit per candidate vertex
        expansion (batched to ``token.CHECK_INTERVAL`` locked updates)
        and unwinds with :class:`~repro.exceptions.BudgetExceeded` when
        the budget runs out — the cooperative-cancellation hook that
        bounds this otherwise NP-complete search.  ``None`` (the
        default) leaves the search unbounded and the hot loop untouched.

    Yields fresh dictionaries; callers may keep or mutate them freely.
    """
    pn = pattern.num_vertices
    if pn == 0 or pn > target.num_vertices or pattern.num_edges > target.num_edges:
        return
    seed = seed or {}

    # Validate the seed up front: labels, degrees and internal edges.
    # (Pure checks over every entry — iteration order cannot change the
    # outcome, hence the REPRO101 suppressions.)
    used_targets = set()
    for pv, tv in seed.items():  # noqa: REPRO101 - validation visits every entry; order-free
        if pattern.vertex_label(pv) != target.vertex_label(tv):
            return
        if pattern.degree(pv) > target.degree(tv):
            return
        if tv in used_targets:
            return
        used_targets.add(tv)
    for pv, tv in seed.items():  # noqa: REPRO101 - edge-consistency scan; order-free
        for pw, tw in seed.items():  # noqa: REPRO101 - pairwise check over all entries; order-free
            if pv < pw and pattern.has_edge(pv, pw):
                if not target.has_edge(tv, tw):
                    return
                if pattern.edge_label(pv, pw) != target.edge_label(tv, tw):
                    return

    order = _matching_order(pattern, tuple(seed))

    # Direct views of the internal adjacency/label structures: this is the
    # hottest loop in the library, and the accessor methods' bounds checks
    # dominate it otherwise.  Read-only use.
    t_adj = target._adj
    t_labels = target._vlabels
    p_labels = pattern._vlabels

    # Pre-bucket target vertices by label for unseeded, unconnected starts.
    label_buckets: Dict[object, List[int]] = {}
    for tv, lbl in enumerate(t_labels):
        label_buckets.setdefault(lbl, []).append(tv)

    mapping: Dict[int, int] = dict(seed)
    used = set(seed.values())
    emitted = 0

    # Pattern adjacency restricted to already-ordered earlier vertices.
    earlier_nbrs: List[List[Tuple[int, object]]] = []
    position = {v: i for i, v in enumerate(order)}
    for i, v in enumerate(order):
        earlier_nbrs.append(
            # Adjacency insertion order is deterministic (see LabeledGraph);
            # sorting the hottest-loop setup would only slow the matcher.
            [(w, lbl) for w, lbl in pattern._adj[v].items() if position[w] < i]  # noqa: REPRO101 - all back-edges collected; order-free
        )
    want_labels = [p_labels[v] for v in order]
    want_degrees = [len(pattern._adj[v]) for v in order]

    def candidates(i: int) -> Iterator[int]:
        want_label = want_labels[i]
        want_degree = want_degrees[i]
        anchors = earlier_nbrs[i]
        if anchors:
            # Draw from the image neighborhood of one matched anchor.
            aw, albl = anchors[0]
            # Hottest loop in the library; adjacency order is deterministic.
            for tv, tlbl in t_adj[mapping[aw]].items():  # noqa: REPRO101 - candidates re-sorted by the caller's loop order
                if (
                    tv not in used
                    and tlbl == albl
                    and t_labels[tv] == want_label
                    and len(t_adj[tv]) >= want_degree
                ):
                    yield tv
        else:
            for tv in label_buckets.get(want_label, ()):
                if tv not in used and len(t_adj[tv]) >= want_degree:
                    yield tv

    missing = object()  # sentinel: None is a legal edge label

    def feasible(i: int, tv: int) -> bool:
        row = t_adj[tv]
        for pw, lbl in earlier_nbrs[i]:
            if row.get(mapping[pw], missing) != lbl:
                return False
        return True

    start = len(seed)
    check_interval = token.CHECK_INTERVAL if token is not None else 0
    pending_steps = 0

    def backtrack(i: int) -> Iterator[Dict[int, int]]:
        nonlocal emitted, pending_steps
        if i == pn:
            emitted += 1
            yield dict(mapping)
            return
        pv = order[i]
        for tv in candidates(i):
            if token is not None:
                pending_steps += 1
                if pending_steps >= check_interval:
                    token.charge(pending_steps)  # raises BudgetExceeded
                    pending_steps = 0
            if not feasible(i, tv):
                continue
            mapping[pv] = tv
            used.add(tv)
            yield from backtrack(i + 1)
            used.discard(tv)
            del mapping[pv]
            if limit is not None and emitted >= limit:
                return

    yield from backtrack(start)


@hot_path
def is_subgraph_isomorphic(
    pattern: LabeledGraph,
    target: LabeledGraph,
    token: Optional["CancellationToken"] = None,
) -> bool:
    """``pattern ⊆ target`` in the sense of Definition 3.

    ``token`` bounds the search (see :func:`subgraph_monomorphisms`);
    expiry raises :class:`~repro.exceptions.BudgetExceeded` rather than
    guessing an answer.
    """
    for _ in subgraph_monomorphisms(pattern, target, limit=1, token=token):
        return True
    return False


def count_embeddings(
    pattern: LabeledGraph, target: LabeledGraph, limit: Optional[int] = None
) -> int:
    """Number of monomorphisms of ``pattern`` into ``target`` (capped by ``limit``)."""
    return sum(1 for _ in subgraph_monomorphisms(pattern, target, limit=limit))


def are_isomorphic(g1: LabeledGraph, g2: LabeledGraph) -> bool:
    """Exact isomorphism test (Definition 2).

    With equal vertex and edge counts, any monomorphism is bijective and
    must hit every edge of ``g2``, so it is a full isomorphism.
    """
    if g1.num_vertices != g2.num_vertices or g1.num_edges != g2.num_edges:
        return False
    if g1.label_multiset_signature() != g2.label_multiset_signature():
        return False
    return is_subgraph_isomorphic(g1, g2)


def automorphisms(graph: LabeledGraph) -> List[Dict[int, int]]:
    """All label-preserving automorphisms of ``graph``.

    The identity is always included (for a non-empty graph).  Feature trees
    are small, so full enumeration is cheap; Section 5.3.1 uses these to
    minimize over symmetric renamings when building reconstruction forms.
    """
    return list(subgraph_monomorphisms(graph, graph))
