"""Labeled (sub)graph isomorphism via prefiltered, backjumping search.

The paper's containment relation (Definition 3) is edge-subgraph
isomorphism: ``q ⊆ g`` iff some subgraph of ``g`` is isomorphic to ``q``.
Operationally that is a *monomorphism*: an injective map of query vertices
into graph vertices that preserves vertex labels and maps every query edge
onto a graph edge with the same label (extra graph edges are allowed).

This module provides

* :func:`subgraph_monomorphisms` — generate all monomorphisms, optionally
  seeded with a partial assignment (used by center-anchored verification),
* :func:`is_subgraph_isomorphic` / :func:`count_embeddings`,
* :func:`are_isomorphic` and :func:`automorphisms` (Section 5.3.1 builds
  canonical reconstruction forms from automorphism groups).

The matcher orders pattern vertices connectivity-first (component by
component for disconnected patterns) so candidates can be drawn from
neighborhoods of already-matched images instead of the whole graph, and
— following l2Match's label-pair/NLI filters and the Compact
Neighborhood Index — refutes candidates against the cached per-graph
:class:`~repro.graphs.matcher_index.MatcherIndex` before any adjacency
walk:

* a pattern whose (vertex-label, edge-label, vertex-label) incidence
  multiset is not contained in the target's is rejected wholesale;
* each level draws candidates from the image neighborhood of its
  *rarest-label-pair* matched anchor instead of an arbitrary one;
* per-vertex neighboring-label bitset signatures and walk-parity
  distance bounds refute candidates in O(1) per check;
* exhausted levels *jump-redo* (conflict-directed backjumping) to the
  deepest level recorded in their conflict set instead of always
  stepping back one.

Every filter is a necessary condition on (partial) monomorphisms and
backjumps only skip levels proven irrelevant to the failure, so the
enumerated answer set is bit-for-bit the one the plain backtracker
produced (``prefilter=False`` keeps the unfiltered search reachable for
tests and worst-case benchmarking).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.flow import hot_path
from repro.graphs.graph import LabeledGraph

if TYPE_CHECKING:  # runtime use is duck-typed to avoid a core<->graphs cycle
    from repro.core.budget import CancellationToken

_MISSING = object()  # sentinel: None is a legal edge label


def _matching_order(pattern: LabeledGraph, seeded: Tuple[int, ...]) -> List[int]:
    """Order pattern vertices so each one touches the already-ordered prefix.

    Seeded vertices come first.  The rest is emitted **component by
    component**: the components holding seeds (in first-seed order), then
    the remaining components ordered by descending maximum degree with the
    smallest contained vertex as tie-break.  Within a component the order
    is connectivity-greedy — after the component's (max-degree) start
    vertex, every vertex is adjacent to an earlier one, so the matcher can
    always draw candidates from a matched anchor's image neighborhood.
    The pre-fix fallback picked the *global* max-degree vertex whenever
    the frontier emptied, which could interleave components and strand
    levels without an anchor mid-component.
    """
    order: List[int] = list(seeded)
    placed = set(order)
    components = pattern.connected_components()
    comp_of: Dict[int, int] = {}
    for ci, comp in enumerate(components):
        for v in comp:
            comp_of[v] = ci
    queue: List[int] = []
    enqueued: Set[int] = set()
    for v in seeded:
        ci = comp_of[v]
        if ci not in enqueued:
            enqueued.add(ci)
            queue.append(ci)
    rest = [ci for ci in range(len(components)) if ci not in enqueued]
    rest.sort(
        key=lambda ci: (
            -max(pattern.degree(v) for v in components[ci]),
            components[ci][0],
        )
    )
    queue.extend(rest)
    for ci in queue:
        remaining = [v for v in components[ci] if v not in placed]
        while remaining:
            frontier = [
                v
                for v in remaining
                if any(w in placed for w in pattern.neighbors(v))
            ]
            pool = frontier or remaining
            nxt = max(pool, key=lambda v: (pattern.degree(v), -v))
            order.append(nxt)
            placed.add(nxt)
            remaining.remove(nxt)
    return order


@hot_path
def subgraph_monomorphisms(
    pattern: LabeledGraph,
    target: LabeledGraph,
    seed: Optional[Dict[int, int]] = None,
    limit: Optional[int] = None,
    token: Optional["CancellationToken"] = None,
    prefilter: bool = True,
) -> Iterator[Dict[int, int]]:
    """Yield injective label-preserving maps of ``pattern`` into ``target``.

    Parameters
    ----------
    seed:
        Partial assignment ``pattern_vertex -> target_vertex`` that every
        yielded mapping must extend (center anchoring in verification).
    limit:
        Stop after this many embeddings.
    token:
        Optional :class:`~repro.core.budget.CancellationToken`.  The
        search charges one work unit per candidate drawn (batched to
        ``token.CHECK_INTERVAL`` locked updates) and unwinds with
        :class:`~repro.exceptions.BudgetExceeded` when the budget runs
        out — the cooperative-cancellation hook that bounds this
        otherwise NP-complete search.  Any sub-interval remainder is
        flushed (non-raising) when the generator exits or unwinds, so
        ``token.work_charged`` is exact.  ``None`` (the default) leaves
        the search unbounded and the hot loop untouched.
    prefilter:
        Use the cached :class:`~repro.graphs.matcher_index.MatcherIndex`
        structures of both graphs — label-pair refutation, rarest-pair
        anchor selection, neighboring-label signatures, walk-parity
        bounds and conflict-directed backjumping guided by them.  The
        answer set is identical either way; ``False`` restores the
        unfiltered search (adversarial benchmarks and deadline tests
        rely on its worst-case cost).

    Yields fresh dictionaries; callers may keep or mutate them freely.
    """
    pn = pattern.num_vertices
    if pn == 0 or pn > target.num_vertices or pattern.num_edges > target.num_edges:
        return
    seed = seed or {}

    # Validate the seed up front: labels, degrees and internal edges.
    # (Pure checks over every entry — iteration order cannot change the
    # outcome, hence the REPRO101 suppressions.)
    used_targets = set()
    for pv, tv in seed.items():  # noqa: REPRO101 - validation visits every entry; order-free
        if pattern.vertex_label(pv) != target.vertex_label(tv):
            return
        if pattern.degree(pv) > target.degree(tv):
            return
        if tv in used_targets:
            return
        used_targets.add(tv)
    for pv, tv in seed.items():  # noqa: REPRO101 - edge-consistency scan; order-free
        for pw, tw in seed.items():  # noqa: REPRO101 - pairwise check over all entries; order-free
            if pv < pw and pattern.has_edge(pv, pw):
                if not target.has_edge(tv, tw):
                    return
                if pattern.edge_label(pv, pw) != target.edge_label(tv, tw):
                    return

    # Direct views of the internal adjacency/label structures: this is the
    # hottest loop in the library, and the accessor methods' bounds checks
    # dominate it otherwise.  Read-only use.
    t_adj = target._adj
    t_labels = target._vlabels
    p_labels = pattern._vlabels
    p_adj = pattern._adj
    tn = target.num_vertices

    # ------------------------------------------------------------------
    # prefilter setup: cached per-graph invariants (l2Match / CNI)
    # ------------------------------------------------------------------
    pair_counts = None
    t_vsig = t_esig = None
    req_vsig = req_esig = None
    t_even = t_odd = None
    p_parity = None
    if prefilter:
        tindex = target.matcher_index()
        pindex = pattern.matcher_index()
        pair_counts = tindex.pair_counts
        # Whole-pattern refutation: every pattern label-pair incidence
        # needs a distinct target incidence with the same triple.
        for key, cnt in pindex.pair_counts.items():  # noqa: REPRO101 - universally-quantified check; order-free
            if pair_counts.get(key, 0) < cnt:
                return
        vbits = tindex.vlabel_bits
        ebits = tindex.elabel_bits
        # Per-pattern-vertex requirements, expressed in the *target's*
        # bit space; a label the target lacks entirely refutes the call.
        req_vsig = [0] * pn
        req_esig = [0] * pn
        for pv in range(pn):
            if p_labels[pv] not in vbits:
                return
            sv = se = 0
            for w, el in p_adj[pv].items():  # noqa: REPRO101 - commutative aggregation; order-free
                vb = vbits.get(p_labels[w])
                eb = ebits.get(el)
                if vb is None or eb is None:
                    return
                sv |= vb
                se |= eb
            req_vsig[pv] = sv
            req_esig[pv] = se
        t_vsig = tindex.nbr_vsig
        t_esig = tindex.nbr_esig
        p_par = pindex.parity_rows()
        t_par = tindex.parity_rows()
        if p_par is not None and t_par is not None:
            p_parity = p_par
            t_even, t_odd = t_par

    order = _matching_order(pattern, tuple(seed))
    position = {v: i for i, v in enumerate(order)}
    start = len(seed)

    # ------------------------------------------------------------------
    # per-level static tables
    # ------------------------------------------------------------------
    want_labels = [p_labels[v] for v in order]
    want_degrees = [len(p_adj[v]) for v in order]
    lvl_vsig = [req_vsig[v] for v in order] if req_vsig is not None else None
    lvl_esig = [req_esig[v] for v in order] if req_esig is not None else None

    # Back-edges of each level to earlier positions.  With pair counts
    # available the *rarest* label pair supplies the primary anchor (its
    # image neighborhood is the candidate source); the rest are checked.
    primary_pos = [-1] * pn
    primary_elabel: List[object] = [None] * pn
    rest_anchors: List[List[Tuple[int, object]]] = []
    for i in range(pn):
        v = order[i]
        backs = [(position[w], el) for w, el in p_adj[v].items() if position[w] < i]  # noqa: REPRO101 - all back-edges collected, then sorted
        if pair_counts is not None and len(backs) > 1:
            lv = want_labels[i]
            backs.sort(
                key=lambda b: (pair_counts.get((lv, b[1], want_labels[b[0]]), 0), b[0])
            )
        else:
            backs.sort(key=lambda b: b[0])
        if backs:
            primary_pos[i] = backs[0][0]
            primary_elabel[i] = backs[0][1]
        rest_anchors.append(backs[1:])

    # Walk-parity bounds of each level against every earlier position:
    # (position, even bound, odd bound), finite bounds only.
    par_bounds: Optional[List[List[Tuple[int, int, int]]]] = None
    if p_parity is not None:
        p_even, p_odd = p_parity
        par_bounds = []
        for i in range(pn):
            base = order[i] * pn
            bounds = []
            for j in range(i):
                w = order[j]
                be, bo = p_even[base + w], p_odd[base + w]
                if be < 255 or bo < 255:
                    bounds.append((j, be, bo))
            par_bounds.append(bounds)

    # Label buckets are only needed by levels with no matched anchor.
    label_buckets: Optional[Dict[object, List[int]]] = None
    if any(primary_pos[i] < 0 for i in range(start, pn)):
        label_buckets = {}
        for tv, lbl in enumerate(t_labels):
            label_buckets.setdefault(lbl, []).append(tv)

    mapping: Dict[int, int] = dict(seed)
    # target vertex -> level that placed it (-1 for seeds); the owner
    # level is the conflict a collision attributes to.
    used: Dict[int, int] = {tv: -1 for tv in seed.values()}
    images = [-1] * pn  # level -> placed target vertex
    for j in range(start):
        images[j] = mapping[order[j]]

    emitted = 0
    if start == pn:
        yield dict(mapping)
        return

    check_interval = token.CHECK_INTERVAL if token is not None else 0
    pending = 0

    # ------------------------------------------------------------------
    # iterative search with conflict-directed backjumping
    # ------------------------------------------------------------------
    # Per-level frame state.  ``conflicts[i]`` collects the earlier
    # levels whose assignments refuted some candidate at level i; when i
    # exhausts, the search jumps straight to the deepest of them (redo)
    # — unless a solution was yielded below the current prefix
    # (``sol_below``), in which case only a plain one-step backtrack
    # keeps the enumeration complete.  Candidates refuted by
    # target-static facts (label, degree, signatures) record no
    # conflict: an anchored level still depends on its primary's image
    # (seeded into the set at entry), while a bucket level exhausting
    # with an empty set is refuted outright.
    iters: List[Optional[Iterator]] = [None] * pn
    conflicts: List[Optional[Set[int]]] = [None] * pn
    sol_below = [False] * pn

    try:
        i = start
        ppos = primary_pos[i]
        if ppos >= 0:
            iters[i] = iter(t_adj[images[ppos]].items())  # noqa: REPRO101 - candidate order is re-filtered; answers order-free
            conflicts[i] = {ppos}
        else:
            iters[i] = iter(label_buckets.get(want_labels[i], ()))  # type: ignore[union-attr]
            conflicts[i] = set()
        while True:
            # ---- seek the next viable candidate at level i ----
            it = iters[i]
            conf = conflicts[i]
            ppos = primary_pos[i]
            need_el = primary_elabel[i]
            want_label = want_labels[i]
            want_degree = want_degrees[i]
            found = -1
            for nxt in it:  # type: ignore[union-attr]
                if token is not None:
                    pending += 1
                    if pending >= check_interval:
                        # Zero before charging: a raising charge() has
                        # already accounted these steps, so the finally
                        # flush must not re-add them.
                        steps, pending = pending, 0
                        token.charge(steps)  # raises BudgetExceeded
                if ppos >= 0:
                    tv, el = nxt
                    if el != need_el or t_labels[tv] != want_label:
                        continue
                else:
                    tv = nxt
                row = t_adj[tv]
                if len(row) < want_degree:
                    continue
                owner = used.get(tv)
                if owner is not None:
                    conf.add(owner)  # type: ignore[union-attr]
                    continue
                if lvl_vsig is not None:
                    rv = lvl_vsig[i]
                    if (rv & t_vsig[tv]) != rv:  # type: ignore[index]
                        continue
                    re_ = lvl_esig[i]  # type: ignore[index]
                    if (re_ & t_esig[tv]) != re_:  # type: ignore[index]
                        continue
                ok = True
                for j, el2 in rest_anchors[i]:
                    if row.get(images[j], _MISSING) != el2:
                        conf.add(j)  # type: ignore[union-attr]
                        ok = False
                        break
                if not ok:
                    continue
                if par_bounds is not None:
                    tb = tv * tn
                    for j, be, bo in par_bounds[i]:
                        mj = tb + images[j]
                        if (be < 255 and t_even[mj] > be) or (  # type: ignore[index]
                            bo < 255 and t_odd[mj] > bo  # type: ignore[index]
                        ):
                            conf.add(j)  # type: ignore[union-attr]
                            ok = False
                            break
                    if not ok:
                        continue
                found = tv
                break

            if found < 0:
                # ---- level exhausted: backjump (or backtrack) ----
                if sol_below[i]:
                    jump = i - 1
                elif conf:
                    jump = max(conf)  # type: ignore[arg-type]
                else:
                    jump = -1  # refuted independently of earlier levels
                if jump < start:
                    return
                jump_conf = conflicts[jump]
                jump_conf |= conf  # type: ignore[operator, arg-type]
                jump_conf.discard(jump)  # type: ignore[union-attr]
                if sol_below[i]:
                    sol_below[jump] = True
                while i > jump:
                    i -= 1
                    tv = images[i]
                    del used[tv]
                    del mapping[order[i]]
                    images[i] = -1
                continue

            # ---- place and descend ----
            mapping[order[i]] = found
            used[found] = i
            images[i] = found
            i += 1
            if i == pn:
                emitted += 1
                yield dict(mapping)
                if limit is not None and emitted >= limit:
                    return
                for j in range(start, pn):
                    sol_below[j] = True
                i -= 1
                tv = images[i]
                del used[tv]
                del mapping[order[i]]
                images[i] = -1
                continue
            ppos = primary_pos[i]
            if ppos >= 0:
                iters[i] = iter(t_adj[images[ppos]].items())  # noqa: REPRO101 - candidate order is re-filtered; answers order-free
                conflicts[i] = {ppos}
            else:
                iters[i] = iter(label_buckets.get(want_labels[i], ()))  # type: ignore[union-attr]
                conflicts[i] = set()
            sol_below[i] = False
    finally:
        # Exact accounting (the pre-fix code dropped up to
        # CHECK_INTERVAL-1 steps per call): flush the sub-interval
        # remainder on every exit — normal exhaustion, limit, generator
        # close, or BudgetExceeded unwind.  Non-raising by contract.
        if token is not None and pending:
            token.flush(pending)


@hot_path
def is_subgraph_isomorphic(
    pattern: LabeledGraph,
    target: LabeledGraph,
    token: Optional["CancellationToken"] = None,
    prefilter: bool = True,
) -> bool:
    """``pattern ⊆ target`` in the sense of Definition 3.

    ``token`` bounds the search (see :func:`subgraph_monomorphisms`);
    expiry raises :class:`~repro.exceptions.BudgetExceeded` rather than
    guessing an answer.  ``prefilter`` is passed through to the matcher.
    """
    for _ in subgraph_monomorphisms(
        pattern, target, limit=1, token=token, prefilter=prefilter
    ):
        return True
    return False


def count_embeddings(
    pattern: LabeledGraph,
    target: LabeledGraph,
    limit: Optional[int] = None,
    token: Optional["CancellationToken"] = None,
) -> int:
    """Number of monomorphisms of ``pattern`` into ``target`` (capped by ``limit``).

    ``token`` bounds the enumeration exactly like
    :func:`subgraph_monomorphisms` (the pre-fix signature offered no
    pass-through, so budgeted callers could not bound the count).
    """
    return sum(
        1 for _ in subgraph_monomorphisms(pattern, target, limit=limit, token=token)
    )


def are_isomorphic(
    g1: LabeledGraph,
    g2: LabeledGraph,
    token: Optional["CancellationToken"] = None,
) -> bool:
    """Exact isomorphism test (Definition 2).

    With equal vertex and edge counts, any monomorphism is bijective and
    must hit every edge of ``g2``, so it is a full isomorphism.
    ``token`` bounds the underlying search; expiry raises
    :class:`~repro.exceptions.BudgetExceeded`.
    """
    if g1.num_vertices != g2.num_vertices or g1.num_edges != g2.num_edges:
        return False
    if g1.label_multiset_signature() != g2.label_multiset_signature():
        return False
    return is_subgraph_isomorphic(g1, g2, token=token)


def automorphisms(
    graph: LabeledGraph, token: Optional["CancellationToken"] = None
) -> List[Dict[int, int]]:
    """All label-preserving automorphisms of ``graph``.

    The identity is always included (for a non-empty graph).  Feature trees
    are small, so full enumeration is cheap; Section 5.3.1 uses these to
    minimize over symmetric renamings when building reconstruction forms.
    ``token`` optionally bounds the enumeration.
    """
    return list(subgraph_monomorphisms(graph, graph, token=token))
