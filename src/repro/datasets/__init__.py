"""Datasets: synthetic (Kuramochi–Karypis) and AIDS-like chemical generators."""

from repro.datasets.chemical import (
    ATOMS,
    functional_group_library,
    generate_aids_like,
    generate_molecule,
)
from repro.datasets.protein import (
    FAMILIES,
    INTERACTIONS,
    generate_network,
    generate_protein_networks,
    pathway_motifs,
)
from repro.datasets.queries import (
    QueryWorkload,
    extract_query,
    extract_query_workload,
    split_by_support,
)
from repro.datasets.synthetic import (
    SyntheticConfig,
    generate_synthetic_database,
    poisson,
    synthetic_database,
)

__all__ = [
    "ATOMS",
    "functional_group_library",
    "generate_aids_like",
    "generate_molecule",
    "FAMILIES",
    "INTERACTIONS",
    "generate_network",
    "generate_protein_networks",
    "pathway_motifs",
    "QueryWorkload",
    "extract_query",
    "extract_query_workload",
    "split_by_support",
    "SyntheticConfig",
    "generate_synthetic_database",
    "poisson",
    "synthetic_database",
]
