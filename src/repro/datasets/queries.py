"""Query-workload generation (the paper's ``Q_m`` sets).

Section 6.1: "randomly select graphs from the dataset and then extract a
connected m-edge subgraph from each graph randomly".  Queries produced
this way always have support >= 1, matching the paper's setup; the
low/high-support split used by Figure 10 is applied afterwards from
ground-truth support sizes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.exceptions import GraphError
from repro.graphs.graph import GraphDatabase, LabeledGraph
from repro.graphs.random_subgraph import random_connected_subgraph


@dataclass
class QueryWorkload:
    """A named set of query graphs of one edge size."""

    name: str
    num_edges: int
    queries: List[LabeledGraph]

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[LabeledGraph]:
        return iter(self.queries)


def extract_query(
    database: GraphDatabase, num_edges: int, rng: random.Random, max_tries: int = 200
) -> LabeledGraph:
    """One random connected ``num_edges``-edge subgraph of a random DB graph."""
    graphs = [g for g in database if g.num_edges >= num_edges]
    if not graphs:
        raise GraphError(f"no database graph has {num_edges} edges")
    for _ in range(max_tries):
        host = rng.choice(graphs)
        try:
            return random_connected_subgraph(host, num_edges, rng)
        except GraphError:
            continue  # hit a too-small component; try another host
    raise GraphError(f"could not extract a connected {num_edges}-edge subgraph")


def extract_query_workload(
    database: GraphDatabase,
    num_edges: int,
    num_queries: int,
    seed: int = 101,
    name: Optional[str] = None,
) -> QueryWorkload:
    """The paper's ``Q_m``: ``num_queries`` random connected m-edge queries."""
    rng = random.Random(seed)
    queries = [extract_query(database, num_edges, rng) for _ in range(num_queries)]
    return QueryWorkload(
        name=name or f"Q{num_edges}", num_edges=num_edges, queries=queries
    )


def split_by_support(
    workload: QueryWorkload,
    supports: List[int],
    threshold: int = 50,
) -> "tuple[QueryWorkload, QueryWorkload]":
    """Figure 10's split: low-support (< threshold) vs high-support queries.

    ``supports[i]`` must be the ground-truth ``|D_q|`` of ``workload.queries[i]``.
    """
    if len(supports) != len(workload.queries):
        raise GraphError("supports must align one-to-one with queries")
    low = [q for q, s in zip(workload.queries, supports) if s < threshold]
    high = [q for q, s in zip(workload.queries, supports) if s >= threshold]
    return (
        QueryWorkload(f"{workload.name}-low", workload.num_edges, low),
        QueryWorkload(f"{workload.name}-high", workload.num_edges, high),
    )
