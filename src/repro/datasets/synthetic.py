"""Synthetic graph generator in the style of Kuramochi & Karypis (ICDE'01).

Section 6.2 generates databases named ``D{n}I{i}T{t}S{s}L{l}``:

* ``n`` graphs, each with a Poisson(``T``) target edge count,
* built by inserting randomly chosen **seed fragments** (``S`` of them,
  each with Poisson(``I``) edges) one by one until the target size is
  reached,
* vertex labels drawn from ``L`` distinct labels.

Seed insertion fuses a random seed vertex onto an existing graph vertex
with the same label when possible (creating the shared substructure that
frequent-pattern indexing exploits); otherwise the fragment is attached
through a fresh bridging edge so graphs stay connected.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.exceptions import ConfigError
from repro.graphs.graph import GraphDatabase, LabeledGraph


def poisson(rng: random.Random, mean: float, minimum: int = 1) -> int:
    """Knuth's Poisson sampler, floored at ``minimum`` (means here are small)."""
    if mean <= 0:
        return minimum
    import math

    limit = math.exp(-mean)
    k, product = 0, 1.0
    while True:
        product *= rng.random()
        if product <= limit:
            return max(minimum, k)
        k += 1


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of one ``D..I..T..S..L..`` dataset."""

    num_graphs: int
    avg_seed_edges: int      # I
    avg_graph_edges: int     # T
    num_seeds: int           # S
    num_vertex_labels: int   # L
    num_edge_labels: int = 2
    seed: int = 7

    def __post_init__(self) -> None:
        if min(
            self.num_graphs,
            self.avg_seed_edges,
            self.avg_graph_edges,
            self.num_seeds,
            self.num_vertex_labels,
            self.num_edge_labels,
        ) < 1:
            raise ConfigError("all synthetic generator parameters must be >= 1")

    @property
    def name(self) -> str:
        """The paper's dataset naming, e.g. ``D8kI10T20S1kL40``."""

        def fmt(n: int) -> str:
            return f"{n // 1000}k" if n % 1000 == 0 and n >= 1000 else str(n)

        return (
            f"D{fmt(self.num_graphs)}I{self.avg_seed_edges}T{self.avg_graph_edges}"
            f"S{fmt(self.num_seeds)}L{self.num_vertex_labels}"
        )


def _random_connected_fragment(
    rng: random.Random,
    num_edges: int,
    vertex_labels: Sequence[int],
    edge_labels: Sequence[int],
) -> LabeledGraph:
    """A random connected graph: a random tree plus occasional cycle edges."""
    extra = rng.randint(0, max(0, num_edges // 4))
    tree_edges = num_edges - extra
    n = tree_edges + 1
    g = LabeledGraph([rng.choice(vertex_labels) for _ in range(n)])
    for v in range(1, n):
        g.add_edge(v, rng.randrange(v), rng.choice(edge_labels))
    added = 0
    attempts = 0
    while added < extra and attempts < 20 * extra:
        attempts += 1
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, rng.choice(edge_labels))
            added += 1
    return g


def _insert_fragment(
    graph: LabeledGraph, fragment: LabeledGraph, rng: random.Random
) -> None:
    """Insert ``fragment`` into ``graph``, fusing on one same-label vertex."""
    if graph.num_vertices == 0:
        remap = {}
        for v in fragment.vertices():
            remap[v] = graph.add_vertex(fragment.vertex_label(v))
        for u, v, label in fragment.edges():
            graph.add_edge(remap[u], remap[v], label)
        return

    original_count = graph.num_vertices
    fuse_from = rng.randrange(fragment.num_vertices)
    fuse_label = fragment.vertex_label(fuse_from)
    same_label = [v for v in graph.vertices() if graph.vertex_label(v) == fuse_label]

    remap = {}
    if same_label:
        remap[fuse_from] = rng.choice(same_label)
    for v in fragment.vertices():
        if v not in remap:
            remap[v] = graph.add_vertex(fragment.vertex_label(v))
    for u, v, label in fragment.edges():
        if not graph.has_edge(remap[u], remap[v]):
            graph.add_edge(remap[u], remap[v], label)
    if not same_label:
        # No fusion point: bridge the fragment to a pre-existing vertex so
        # the graph stays connected.
        anchor = rng.randrange(original_count)
        if not graph.has_edge(anchor, remap[fuse_from]):
            graph.add_edge(anchor, remap[fuse_from], 1)


def generate_synthetic_database(config: SyntheticConfig) -> GraphDatabase:
    """Generate the database described by ``config`` (deterministic in seed)."""
    rng = random.Random(config.seed)
    vertex_labels = list(range(config.num_vertex_labels))
    edge_labels = list(range(1, config.num_edge_labels + 1))

    seeds: List[LabeledGraph] = [
        _random_connected_fragment(
            rng, poisson(rng, config.avg_seed_edges), vertex_labels, edge_labels
        )
        for _ in range(config.num_seeds)
    ]

    db = GraphDatabase()
    for _ in range(config.num_graphs):
        target_edges = poisson(rng, config.avg_graph_edges)
        graph = LabeledGraph()
        while graph.num_edges < target_edges:
            _insert_fragment(graph, rng.choice(seeds), rng)
        db.add(graph)
    return db


def synthetic_database(
    num_graphs: int,
    avg_seed_edges: int = 10,
    avg_graph_edges: int = 20,
    num_seeds: int = 1000,
    num_vertex_labels: int = 40,
    num_edge_labels: int = 2,
    seed: int = 7,
) -> GraphDatabase:
    """Convenience wrapper matching the paper's parameter names."""
    return generate_synthetic_database(
        SyntheticConfig(
            num_graphs=num_graphs,
            avg_seed_edges=avg_seed_edges,
            avg_graph_edges=avg_graph_edges,
            num_seeds=num_seeds,
            num_vertex_labels=num_vertex_labels,
            num_edge_labels=num_edge_labels,
            seed=seed,
        )
    )
