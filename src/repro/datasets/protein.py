"""Protein-interaction-network-like generator.

The paper's introduction motivates graph indexing with biological
pathways and protein interaction networks: sparse graphs with hub
proteins (heavy-tailed degrees), functional-family vertex labels, and
interaction-type edge labels.  This generator produces that shape via
preferential attachment seeded with shared "pathway motif" fragments, so
frequent-subtree indexing has real structure to find.

Compared to :mod:`repro.datasets.chemical` (valence-bounded, ring-heavy)
this stresses the opposite regime: unbounded hub degrees make embedding
counts per pattern much larger, which is exactly where the miner's
embedding bookkeeping and the verifier's anchored search earn their keep.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.datasets.synthetic import poisson
from repro.graphs.graph import GraphDatabase, LabeledGraph

#: Functional families used as vertex labels (coarse GO-slim flavor).
FAMILIES: Sequence[str] = (
    "kinase", "phosphatase", "receptor", "ligase",
    "transporter", "tf", "chaperone", "protease",
)

#: Interaction types used as edge labels.
INTERACTIONS: Sequence[str] = ("binds", "activates", "inhibits")


def pathway_motifs() -> List[LabeledGraph]:
    """Recurring signaling motifs inserted across networks."""
    cascade = LabeledGraph(
        ["receptor", "kinase", "kinase", "tf"],
        [(0, 1, "activates"), (1, 2, "activates"), (2, 3, "activates")],
    )
    feedback = LabeledGraph(
        ["kinase", "tf", "phosphatase"],
        [(0, 1, "activates"), (1, 2, "activates"), (2, 0, "inhibits")],
    )
    complex_ = LabeledGraph(
        ["chaperone", "kinase", "receptor"],
        [(0, 1, "binds"), (0, 2, "binds")],
    )
    degradation = LabeledGraph(
        ["ligase", "protease", "tf"],
        [(0, 1, "binds"), (1, 2, "inhibits")],
    )
    return [cascade, feedback, complex_, degradation]


def generate_network(
    rng: random.Random,
    target_proteins: int,
    motifs: Sequence[LabeledGraph],
) -> LabeledGraph:
    """One network: preferential attachment + grafted pathway motifs."""
    graph = LabeledGraph([rng.choice(FAMILIES)])
    attachment: List[int] = [0]  # vertices repeated by degree

    def attach(new_vertex: int) -> None:
        hub = rng.choice(attachment)
        if hub != new_vertex and not graph.has_edge(hub, new_vertex):
            graph.add_edge(hub, new_vertex, rng.choice(INTERACTIONS))
            attachment.extend((hub, new_vertex))

    while graph.num_vertices < target_proteins:
        if motifs and rng.random() < 0.3:
            motif = rng.choice(motifs)
            remap = {v: graph.add_vertex(motif.vertex_label(v)) for v in motif.vertices()}
            for u, v, label in motif.edges():
                graph.add_edge(remap[u], remap[v], label)
                attachment.extend((remap[u], remap[v]))
            attach(remap[0])
        else:
            new_vertex = graph.add_vertex(rng.choice(FAMILIES))
            attach(new_vertex)
            # Occasional extra interaction toward a hub (creates cycles).
            if rng.random() < 0.2:
                attach(new_vertex)
    return graph


def generate_protein_networks(
    num_graphs: int,
    avg_proteins: int = 18,
    seed: int = 17,
    motifs: Optional[Sequence[LabeledGraph]] = None,
) -> GraphDatabase:
    """A database of interaction-network-like graphs (deterministic)."""
    rng = random.Random(seed)
    motif_library = list(motifs) if motifs is not None else pathway_motifs()
    db = GraphDatabase()
    while len(db) < num_graphs:
        network = generate_network(
            rng, poisson(rng, avg_proteins, minimum=4), motif_library
        )
        if network.num_edges >= 3 and network.is_connected():
            db.add(network)
    return db
