"""AIDS-like chemical molecule generator.

The paper evaluates on the NCI/NIH AIDS antiviral screen dataset (43,905
molecules).  That dataset cannot be bundled here, so this module generates
molecule-shaped labeled graphs preserving the properties the experiments
actually exercise:

* a *skewed* atom-label distribution (carbon dominates, a handful of
  heteroatoms), so many vertices share labels,
* bond labels single/double/aromatic,
* valence-bounded degrees (≤ 4) and sparse, mostly tree-like topology
  with a few fused rings,
* heavy substructure sharing across molecules via a library of common
  functional-group fragments (benzene, pyridine, carboxyl, amide, chains)
  grafted during generation — the reason frequent-pattern indexes work on
  chemical data at all.

Sizes default to the AIDS profile (≈ 25 atoms / 27 bonds on average).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.datasets.synthetic import poisson
from repro.graphs.graph import GraphDatabase, LabeledGraph

#: (atom label, valence, sampling weight) — roughly the AIDS composition.
ATOMS: Sequence[Tuple[str, int, float]] = (
    ("C", 4, 0.72),
    ("N", 3, 0.10),
    ("O", 2, 0.10),
    ("S", 2, 0.03),
    ("P", 3, 0.01),
    ("Cl", 1, 0.02),
    ("F", 1, 0.02),
)

SINGLE, DOUBLE, AROMATIC = 1, 2, 3


def _fragment(labels: Sequence[str], edges: Sequence[Tuple[int, int, int]]) -> LabeledGraph:
    return LabeledGraph(list(labels), list(edges))


def functional_group_library() -> List[LabeledGraph]:
    """Common organic fragments grafted into generated molecules."""
    benzene = _fragment(
        ["C"] * 6,
        [(i, (i + 1) % 6, AROMATIC) for i in range(6)],
    )
    pyridine = _fragment(
        ["N", "C", "C", "C", "C", "C"],
        [(i, (i + 1) % 6, AROMATIC) for i in range(6)],
    )
    carboxyl = _fragment(["C", "O", "O"], [(0, 1, DOUBLE), (0, 2, SINGLE)])
    amide = _fragment(["C", "O", "N"], [(0, 1, DOUBLE), (0, 2, SINGLE)])
    chain = _fragment(["C", "C", "C"], [(0, 1, SINGLE), (1, 2, SINGLE)])
    nitro = _fragment(["N", "O", "O"], [(0, 1, DOUBLE), (0, 2, SINGLE)])
    thioether = _fragment(["C", "S", "C"], [(0, 1, SINGLE), (1, 2, SINGLE)])
    return [benzene, pyridine, carboxyl, amide, chain, nitro, thioether]


def _pick_atom(rng: random.Random) -> Tuple[str, int]:
    r = rng.random()
    acc = 0.0
    for label, valence, weight in ATOMS:
        acc += weight
        if r <= acc:
            return label, valence
    return ATOMS[0][0], ATOMS[0][1]


class _MoleculeBuilder:
    """Grows one molecule while tracking remaining valence per atom."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.graph = LabeledGraph()
        self.free: List[int] = []  # remaining valence per vertex

    def add_atom(self, label: str, valence: int) -> int:
        v = self.graph.add_vertex(label)
        self.free.append(valence)
        return v

    def bond(self, u: int, v: int, order: int) -> bool:
        cost = 2 if order == DOUBLE else 1
        if self.free[u] < cost or self.free[v] < cost or self.graph.has_edge(u, v):
            return False
        self.graph.add_edge(u, v, order)
        self.free[u] -= cost
        self.free[v] -= cost
        return True

    def open_sites(self) -> List[int]:
        return [v for v in self.graph.vertices() if self.free[v] > 0]

    def graft(self, fragment: LabeledGraph) -> None:
        """Attach a fragment copy via a single bond to a random open site."""
        sites = self.open_sites()
        remap = {}
        for v in fragment.vertices():
            label = fragment.vertex_label(v)
            valence = next(val for lab, val, _ in ATOMS if lab == label)
            remap[v] = self.add_atom(label, valence)
        for u, v, order in fragment.edges():
            if not self.bond(remap[u], remap[v], order):
                self._force_bond(remap[u], remap[v], SINGLE)
        if sites:
            anchor = self.rng.choice(sites)
            entries = [remap[v] for v in fragment.vertices() if self.free[remap[v]] > 0]
            entry = self.rng.choice(entries) if entries else remap[0]
            if not self.bond(anchor, entry, SINGLE):
                self._force_bond(anchor, entry, SINGLE)

    def _force_bond(self, u: int, v: int, order: int) -> None:
        if not self.graph.has_edge(u, v):
            self.graph.add_edge(u, v, order)
            self.free[u] = max(0, self.free[u] - 1)
            self.free[v] = max(0, self.free[v] - 1)


def generate_molecule(
    rng: random.Random, target_atoms: int, library: Sequence[LabeledGraph]
) -> LabeledGraph:
    """One connected molecule-like graph with about ``target_atoms`` atoms."""
    builder = _MoleculeBuilder(rng)
    label, valence = _pick_atom(rng)
    builder.add_atom(label, valence)

    while builder.graph.num_vertices < target_atoms:
        sites = builder.open_sites()
        if not sites:
            break
        if library and builder.graph.num_vertices + 6 <= target_atoms + 2 and rng.random() < 0.35:
            builder.graft(rng.choice(library))
            continue
        anchor = rng.choice(sites)
        label, valence = _pick_atom(rng)
        atom = builder.add_atom(label, valence)
        order = DOUBLE if rng.random() < 0.12 and builder.free[anchor] >= 2 and valence >= 2 else SINGLE
        builder.bond(anchor, atom, order)

    # Occasional ring closure between nearby open atoms.
    closures = rng.randint(0, 2)
    sites = builder.open_sites()
    for _ in range(closures):
        if len(sites) < 2:
            break
        u, v = rng.sample(sites, 2)
        builder.bond(u, v, SINGLE)
        sites = builder.open_sites()
    return builder.graph


def generate_aids_like(
    num_graphs: int,
    avg_atoms: int = 22,
    seed: int = 11,
    library: Optional[Sequence[LabeledGraph]] = None,
) -> GraphDatabase:
    """A database of ``num_graphs`` molecule-like graphs (the paper's Γ_N).

    Deterministic in ``seed``; disconnected builds are retried so every
    graph is connected (query extraction requires it).
    """
    rng = random.Random(seed)
    frags = list(library) if library is not None else functional_group_library()
    db = GraphDatabase()
    while len(db) < num_graphs:
        target = poisson(rng, avg_atoms, minimum=4)
        molecule = generate_molecule(rng, target, frags)
        if molecule.num_edges >= 3 and molecule.is_connected():
            db.add(molecule)
    return db
