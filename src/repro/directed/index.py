"""TreePi over directed graph databases (Section 7.2).

:class:`DirectedTreePiIndex` wraps the undirected engine through the
subdivision reduction: the database is subdivided once at build time, and
every directed query is subdivided before entering the standard
partition → filter → prune → reconstruct pipeline.  Answers are exact by
the reduction theorem (see :mod:`repro.directed.reduction`).
"""

from __future__ import annotations

import time
from typing import FrozenSet, Iterable, Iterator, List

from repro.core.statistics import IndexStats, QueryResult
from repro.core.treepi import TreePiConfig, TreePiIndex
from repro.directed.digraph import DirectedLabeledGraph
from repro.directed.reduction import subdivide
from repro.exceptions import GraphError, IndexError_
from repro.graphs.graph import GraphDatabase


class DirectedGraphDatabase:
    """An ordered collection of directed graphs with stable integer ids."""

    def __init__(self, graphs: Iterable[DirectedLabeledGraph] = ()) -> None:
        self._graphs = {}
        self._next_id = 0
        for g in graphs:
            self.add(g)

    def add(self, graph: DirectedLabeledGraph) -> int:
        gid = self._next_id
        self._next_id += 1
        graph.graph_id = gid
        self._graphs[gid] = graph
        return gid

    def remove(self, graph_id: int) -> DirectedLabeledGraph:
        try:
            return self._graphs.pop(graph_id)
        except KeyError:
            raise GraphError(f"no graph with id {graph_id}") from None

    def __len__(self) -> int:
        return len(self._graphs)

    def __iter__(self) -> Iterator[DirectedLabeledGraph]:
        return iter(self._graphs.values())

    def __contains__(self, graph_id: int) -> bool:
        return graph_id in self._graphs

    def __getitem__(self, graph_id: int) -> DirectedLabeledGraph:
        try:
            return self._graphs[graph_id]
        except KeyError:
            raise GraphError(f"no graph with id {graph_id}") from None

    def graph_ids(self) -> List[int]:
        return sorted(self._graphs)


class DirectedTreePiIndex:
    """A TreePi index answering directed containment queries exactly."""

    def __init__(self, database: DirectedGraphDatabase, config: TreePiConfig,
                 inner: TreePiIndex) -> None:
        self._db = database
        self._config = config
        self._inner = inner

    @classmethod
    def build(
        cls, database: DirectedGraphDatabase, config: TreePiConfig
    ) -> "DirectedTreePiIndex":
        """Subdivide the database and build the undirected index over it."""
        if len(database) == 0:
            raise IndexError_("cannot build an index over an empty database")
        start = time.perf_counter()
        skeletons = GraphDatabase()
        for gid in database.graph_ids():
            skeletons.add(subdivide(database[gid]), graph_id=gid)
        inner = TreePiIndex.build(skeletons, config)
        inner.stats.build_seconds = time.perf_counter() - start
        return cls(database, config, inner)

    # ------------------------------------------------------------------
    @property
    def database(self) -> DirectedGraphDatabase:
        return self._db

    @property
    def stats(self) -> IndexStats:
        return self._inner.stats

    def feature_count(self) -> int:
        return self._inner.feature_count()

    # ------------------------------------------------------------------
    def query(self, query: DirectedLabeledGraph) -> QueryResult:
        """All directed database graphs containing ``query``."""
        if query.num_edges == 0:
            raise GraphError("query graphs must have at least one edge")
        if not query.is_weakly_connected():
            raise GraphError("query graphs must be weakly connected")
        result = self._inner.query(subdivide(query))
        # Graph ids coincide by construction; the result passes through.
        return result

    def support_set(self, query: DirectedLabeledGraph) -> FrozenSet[int]:
        return self.query(query).matches

    # ------------------------------------------------------------------
    def insert(self, graph: DirectedLabeledGraph) -> int:
        """Section 7.1 maintenance, routed through the reduction."""
        gid = self._db.add(graph)
        skeleton = subdivide(graph)
        inner_gid = self._inner.insert(skeleton)
        if inner_gid != gid:
            raise IndexError_("directed/undirected id drift during insert")
        return gid

    def delete(self, graph_id: int) -> None:
        self._db.remove(graph_id)
        self._inner.delete(graph_id)

    @property
    def churn_fraction(self) -> float:
        return self._inner.churn_fraction

    def needs_rebuild(self) -> bool:
        return self._inner.needs_rebuild()

    def rebuild(self) -> "DirectedTreePiIndex":
        return DirectedTreePiIndex.build(self._db, self._config)
