"""Subdivision reduction: directed containment ≡ undirected containment.

Section 7.2 notes that TreePi's query machinery "adapts well" to directed
graphs once mining and canonical forms track orientation.  Rather than
forking every component, this module reduces the directed problem to the
undirected one exactly:

Each directed edge ``u --l--> v`` becomes a two-edge undirected path

    u --(l, "src")-- m --(l, "tgt")-- v

through a fresh midpoint vertex ``m`` carrying the reserved label
``MIDPOINT``.  Because midpoint labels never collide with real vertex
labels and the two half-edge labels are distinct, any undirected
monomorphism between subdivided graphs maps midpoints to midpoints,
sources to sources and targets to targets, hence

    q ⊆ g  (directed)   ⇔   subdivide(q) ⊆ subdivide(g)  (undirected).

The whole undirected TreePi engine — mining, σ/γ selection, centers,
partitioning, distance pruning, reconstruction — then applies verbatim.
Center distances scale uniformly by 2, so the pruning inequality is
preserved.  The price is 1 extra vertex and 1 extra edge per directed
edge, the classic time/space trade of reductions.
"""

from __future__ import annotations

from typing import Tuple

from repro.directed.digraph import DirectedLabeledGraph
from repro.exceptions import GraphError
from repro.graphs.graph import LabeledGraph

#: Reserved midpoint vertex label; must not be used by application data.
MIDPOINT = "→mid"

#: Half-edge direction tags.
SRC, TGT = "src", "tgt"


def subdivide(digraph: DirectedLabeledGraph) -> LabeledGraph:
    """The undirected subdivision encoding of ``digraph``.

    Original vertices keep their ids; midpoints are appended after them,
    one per directed edge in :meth:`DirectedLabeledGraph.edges` order.
    """
    for label in digraph.vertex_labels():
        if label == MIDPOINT:
            raise GraphError(
                f"vertex label {MIDPOINT!r} is reserved by the directed encoding"
            )
    skeleton = LabeledGraph(list(digraph.vertex_labels()), graph_id=digraph.graph_id)
    for source, target, label in digraph.edges():
        midpoint = skeleton.add_vertex(MIDPOINT)
        skeleton.add_edge(source, midpoint, (label, SRC))
        skeleton.add_edge(midpoint, target, (label, TGT))
    return skeleton


def subdivision_sizes(digraph: DirectedLabeledGraph) -> Tuple[int, int]:
    """(vertices, edges) of the subdivision without building it."""
    return (
        digraph.num_vertices + digraph.num_edges,
        2 * digraph.num_edges,
    )
