"""Directed labeled graphs — the Section 7.2 extension's data model.

XML documents, citation networks, and metabolic pathways are directed;
Section 7.2 sketches how TreePi adapts.  :class:`DirectedLabeledGraph`
mirrors :class:`repro.graphs.LabeledGraph` with oriented edges: each edge
``u → v`` is stored once, with out- and in-adjacency kept separately.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import GraphError

VertexLabel = Hashable
EdgeLabel = Hashable


class DirectedLabeledGraph:
    """A directed labeled graph with integer vertices ``0..n-1``.

    At most one edge is allowed per ordered pair, and antiparallel pairs
    (``u → v`` alongside ``v → u``) are supported.
    """

    __slots__ = ("_vlabels", "_out", "_in", "_num_edges", "graph_id")

    def __init__(
        self,
        vertex_labels: Sequence[VertexLabel] = (),
        edges: Iterable[Tuple[int, int, EdgeLabel]] = (),
        graph_id: Optional[int] = None,
    ) -> None:
        self._vlabels: List[VertexLabel] = list(vertex_labels)
        self._out: List[Dict[int, EdgeLabel]] = [{} for _ in self._vlabels]
        self._in: List[Dict[int, EdgeLabel]] = [{} for _ in self._vlabels]
        self._num_edges = 0
        self.graph_id = graph_id
        for u, v, label in edges:
            self.add_edge(u, v, label)

    # ------------------------------------------------------------------
    def add_vertex(self, label: VertexLabel) -> int:
        self._vlabels.append(label)
        self._out.append({})
        self._in.append({})
        return len(self._vlabels) - 1

    def add_edge(self, source: int, target: int, label: EdgeLabel) -> None:
        """Add the directed edge ``source → target``."""
        self._check_vertex(source)
        self._check_vertex(target)
        if source == target:
            raise GraphError(f"self-loops are not supported (vertex {source})")
        if target in self._out[source]:
            raise GraphError(f"duplicate directed edge ({source} -> {target})")
        self._out[source][target] = label
        self._in[target][source] = label
        self._num_edges += 1

    def _check_vertex(self, u: int) -> None:
        if not 0 <= u < len(self._vlabels):
            raise GraphError(f"unknown vertex {u} (graph has {len(self._vlabels)} vertices)")

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._vlabels)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> range:
        return range(len(self._vlabels))

    def vertex_label(self, u: int) -> VertexLabel:
        self._check_vertex(u)
        return self._vlabels[u]

    def vertex_labels(self) -> Tuple[VertexLabel, ...]:
        return tuple(self._vlabels)

    def has_edge(self, source: int, target: int) -> bool:
        if not (0 <= source < len(self._vlabels) and 0 <= target < len(self._vlabels)):
            return False
        return target in self._out[source]

    def edge_label(self, source: int, target: int) -> EdgeLabel:
        self._check_vertex(source)
        try:
            return self._out[source][target]
        except KeyError:
            raise GraphError(f"no edge {source} -> {target}") from None

    def out_items(self, u: int) -> Iterator[Tuple[int, EdgeLabel]]:
        self._check_vertex(u)
        return iter(self._out[u].items())

    def in_items(self, u: int) -> Iterator[Tuple[int, EdgeLabel]]:
        self._check_vertex(u)
        return iter(self._in[u].items())

    def out_degree(self, u: int) -> int:
        self._check_vertex(u)
        return len(self._out[u])

    def in_degree(self, u: int) -> int:
        self._check_vertex(u)
        return len(self._in[u])

    def degree(self, u: int) -> int:
        return self.out_degree(u) + self.in_degree(u)

    def edges(self) -> Iterator[Tuple[int, int, EdgeLabel]]:
        """Iterate directed edges as ``(source, target, label)``."""
        for u, targets in enumerate(self._out):
            for v, label in targets.items():
                yield (u, v, label)

    # ------------------------------------------------------------------
    def is_weakly_connected(self) -> bool:
        """Connectivity of the underlying undirected skeleton."""
        n = len(self._vlabels)
        if n == 0:
            return True
        seen = [False] * n
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v in list(self._out[u]) + list(self._in[u]):
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == n

    def copy(self, graph_id: Optional[int] = None) -> "DirectedLabeledGraph":
        g = DirectedLabeledGraph(
            self._vlabels, graph_id=self.graph_id if graph_id is None else graph_id
        )
        for u, v, label in self.edges():
            g.add_edge(u, v, label)
        return g

    def relabeled(self, permutation: Sequence[int]) -> "DirectedLabeledGraph":
        """An isomorphic copy with old vertex ``u`` renamed ``permutation[u]``."""
        n = len(self._vlabels)
        if sorted(permutation) != list(range(n)):
            raise GraphError("relabeled() requires a permutation of all vertices")
        labels: List[VertexLabel] = [None] * n
        for old, new in enumerate(permutation):
            labels[new] = self._vlabels[old]
        g = DirectedLabeledGraph(labels, graph_id=self.graph_id)
        for u, v, label in self.edges():
            g.add_edge(permutation[u], permutation[v], label)
        return g

    def structure_equal(self, other: "DirectedLabeledGraph") -> bool:
        if self._vlabels != other._vlabels or self._num_edges != other._num_edges:
            return False
        return all(
            other.has_edge(u, v) and other.edge_label(u, v) == label
            for u, v, label in self.edges()
        )

    def __repr__(self) -> str:
        gid = f" id={self.graph_id}" if self.graph_id is not None else ""
        return f"<DirectedLabeledGraph{gid} |V|={self.num_vertices} |E|={self.num_edges}>"
