"""Directed labeled (sub)graph isomorphism.

The directed analogue of :mod:`repro.graphs.isomorphism`: a monomorphism
must map every pattern edge ``u → v`` onto a target edge
``f(u) → f(v)`` with the same label — orientation included.  Used by the
directed sequential scan (the ground-truth oracle for the Section 7.2
extension) and by tests cross-checking the subdivision reduction.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.directed.digraph import DirectedLabeledGraph


def _matching_order(pattern: DirectedLabeledGraph) -> List[int]:
    """Order vertices so each one touches the prefix through some edge."""
    n = pattern.num_vertices
    order: List[int] = []
    placed = set()
    while len(order) < n:
        frontier = [
            v
            for v in pattern.vertices()
            if v not in placed
            and any(
                w in placed
                for w, _ in list(pattern.out_items(v)) + list(pattern.in_items(v))
            )
        ]
        pool = frontier or [v for v in pattern.vertices() if v not in placed]
        nxt = max(pool, key=lambda v: (pattern.degree(v), -v))
        order.append(nxt)
        placed.add(nxt)
    return order


def directed_monomorphisms(
    pattern: DirectedLabeledGraph,
    target: DirectedLabeledGraph,
    limit: Optional[int] = None,
) -> Iterator[Dict[int, int]]:
    """Yield injective direction- and label-preserving maps."""
    pn = pattern.num_vertices
    if pn == 0 or pn > target.num_vertices or pattern.num_edges > target.num_edges:
        return

    order = _matching_order(pattern)
    position = {v: i for i, v in enumerate(order)}
    # For each vertex, its already-ordered neighbors with direction flags.
    earlier: List[List[Tuple[int, object, bool]]] = []
    for i, v in enumerate(order):
        entries: List[Tuple[int, object, bool]] = []
        for w, lbl in pattern.out_items(v):  # v -> w
            if position[w] < i:
                entries.append((w, lbl, True))
        for w, lbl in pattern.in_items(v):  # w -> v
            if position[w] < i:
                entries.append((w, lbl, False))
        earlier.append(entries)

    label_buckets: Dict[object, List[int]] = {}
    for tv in target.vertices():
        label_buckets.setdefault(target.vertex_label(tv), []).append(tv)

    mapping: Dict[int, int] = {}
    used = set()
    emitted = 0

    def candidates(i: int) -> Iterator[int]:
        pv = order[i]
        want = pattern.vertex_label(pv)
        anchors = earlier[i]
        if anchors:
            aw, albl, outgoing = anchors[0]
            image = mapping[aw]
            # pv -> aw (outgoing=True means pattern edge pv->aw): candidates
            # are in-neighbors of image; otherwise out-neighbors.
            pool = target.in_items(image) if outgoing else target.out_items(image)
            for tv, tlbl in pool:
                if tv not in used and tlbl == albl and target.vertex_label(tv) == want:
                    yield tv
        else:
            for tv in label_buckets.get(want, ()):
                if tv not in used:
                    yield tv

    def feasible(i: int, tv: int) -> bool:
        pv = order[i]
        for pw, lbl, outgoing in earlier[i]:
            tw = mapping[pw]
            if outgoing:
                if not target.has_edge(tv, tw) or target.edge_label(tv, tw) != lbl:
                    return False
            else:
                if not target.has_edge(tw, tv) or target.edge_label(tw, tv) != lbl:
                    return False
        # Degree pruning.
        if target.out_degree(tv) < pattern.out_degree(pv):
            return False
        if target.in_degree(tv) < pattern.in_degree(pv):
            return False
        return True

    def backtrack(i: int) -> Iterator[Dict[int, int]]:
        nonlocal emitted
        if i == pn:
            emitted += 1
            yield dict(mapping)
            return
        pv = order[i]
        for tv in candidates(i):
            if not feasible(i, tv):
                continue
            mapping[pv] = tv
            used.add(tv)
            yield from backtrack(i + 1)
            used.discard(tv)
            del mapping[pv]
            if limit is not None and emitted >= limit:
                return

    yield from backtrack(0)


def is_directed_subgraph_isomorphic(
    pattern: DirectedLabeledGraph, target: DirectedLabeledGraph
) -> bool:
    """Directed analogue of Definition 3: does ``pattern`` embed in ``target``?"""
    for _ in directed_monomorphisms(pattern, target, limit=1):
        return True
    return False


def directed_isomorphic(
    g1: DirectedLabeledGraph, g2: DirectedLabeledGraph
) -> bool:
    """Exact directed isomorphism (equal sizes + monomorphism)."""
    if g1.num_vertices != g2.num_vertices or g1.num_edges != g2.num_edges:
        return False
    return is_directed_subgraph_isomorphic(g1, g2)
