"""Directed-graph extension of TreePi (Section 7.2) via subdivision reduction."""

from repro.directed.digraph import DirectedLabeledGraph
from repro.directed.datasets import (
    extract_directed_query,
    generate_document,
    generate_xml_like,
)
from repro.directed.index import DirectedGraphDatabase, DirectedTreePiIndex
from repro.directed.isomorphism import (
    directed_isomorphic,
    directed_monomorphisms,
    is_directed_subgraph_isomorphic,
)
from repro.directed.reduction import MIDPOINT, SRC, TGT, subdivide, subdivision_sizes

__all__ = [
    "DirectedLabeledGraph",
    "extract_directed_query",
    "generate_document",
    "generate_xml_like",
    "DirectedGraphDatabase",
    "DirectedTreePiIndex",
    "directed_isomorphic",
    "directed_monomorphisms",
    "is_directed_subgraph_isomorphic",
    "MIDPOINT",
    "SRC",
    "TGT",
    "subdivide",
    "subdivision_sizes",
]
