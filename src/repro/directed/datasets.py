"""Directed benchmark data: XML/citation-flavored labeled digraphs.

The paper motivates directed support with XML documents (Section 7.2);
this generator produces shallow rooted DAG-ish documents — an element
tree with typed tags, attribute leaves, and occasional cross-references —
plus a query extractor mirroring :mod:`repro.datasets.queries`.
"""

from __future__ import annotations

import random
from typing import List

from repro.directed.digraph import DirectedLabeledGraph
from repro.directed.index import DirectedGraphDatabase
from repro.exceptions import GraphError

ELEMENT_TAGS = ("article", "section", "para", "list", "item", "table", "figure")
ATTRIBUTE_TAGS = ("id", "class", "lang")
CHILD, ATTR, REF = "child", "attr", "ref"


def generate_document(
    rng: random.Random, target_elements: int
) -> DirectedLabeledGraph:
    """One XML-like document graph with ~``target_elements`` element nodes."""
    doc = DirectedLabeledGraph()
    root = doc.add_vertex("article")
    elements: List[int] = [root]
    while len(elements) < target_elements:
        parent = rng.choice(elements)
        tag = rng.choice(ELEMENT_TAGS[1:])
        child = doc.add_vertex(tag)
        doc.add_edge(parent, child, CHILD)
        elements.append(child)
        if rng.random() < 0.35:
            attribute = doc.add_vertex(rng.choice(ATTRIBUTE_TAGS))
            doc.add_edge(child, attribute, ATTR)
    # A few cross-references between elements (id/idref style links).
    for _ in range(rng.randint(0, max(1, target_elements // 5))):
        a, b = rng.sample(elements, 2)
        if not doc.has_edge(a, b) and not doc.has_edge(b, a):
            doc.add_edge(a, b, REF)
    return doc


def generate_xml_like(
    num_graphs: int, avg_elements: int = 10, seed: int = 5
) -> DirectedGraphDatabase:
    """A database of XML-like directed graphs (deterministic in ``seed``)."""
    from repro.datasets.synthetic import poisson

    rng = random.Random(seed)
    db = DirectedGraphDatabase()
    while len(db) < num_graphs:
        doc = generate_document(rng, poisson(rng, avg_elements, minimum=3))
        if doc.num_edges >= 2:
            db.add(doc)
    return db


def extract_directed_query(
    database: DirectedGraphDatabase,
    num_edges: int,
    rng: random.Random,
    max_tries: int = 200,
) -> DirectedLabeledGraph:
    """A random weakly-connected ``num_edges``-edge sub-digraph of a DB graph."""
    hosts = [g for g in database if g.num_edges >= num_edges]
    if not hosts:
        raise GraphError(f"no database graph has {num_edges} edges")
    for _ in range(max_tries):
        host = rng.choice(hosts)
        all_edges = list(host.edges())
        start = rng.choice(all_edges)
        chosen = {(start[0], start[1])}
        labels = {(start[0], start[1]): start[2]}
        touched = {start[0], start[1]}
        stuck = False
        while len(chosen) < num_edges:
            frontier = [
                (u, v, l)
                for u, v, l in all_edges
                if (u, v) not in chosen and (u in touched or v in touched)
            ]
            if not frontier:
                stuck = True
                break
            u, v, l = rng.choice(frontier)
            chosen.add((u, v))
            labels[(u, v)] = l
            touched.update((u, v))
        if stuck:
            continue
        remap = {old: new for new, old in enumerate(sorted(touched))}
        query = DirectedLabeledGraph(
            [host.vertex_label(old) for old in sorted(touched)]
        )
        for (u, v), l in labels.items():
            query.add_edge(remap[u], remap[v], l)
        return query
    raise GraphError(f"could not extract a {num_edges}-edge directed query")
