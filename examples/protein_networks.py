#!/usr/bin/env python
"""Motif search over protein-interaction-like networks.

The paper motivates graph indexing with biological pathway and
interaction-network data; this example indexes a corpus of
hub-and-spoke interaction networks and searches for signaling motifs
(kinase cascades, feedback loops), summarizing the whole workload with
the statistics collector.

Run:  python examples/protein_networks.py
"""

import time

from repro import LabeledGraph, TreePiConfig, TreePiIndex
from repro.baselines import SequentialScan
from repro.bench import QueryStatsCollector
from repro.datasets import generate_protein_networks
from repro.mining import SupportFunction

print("generating 120 interaction networks ...")
database = generate_protein_networks(120, avg_proteins=16, seed=303)
hubs = max(g.degree(v) for g in database for v in g.vertices())
print(f"  avg size {database.average_edge_count():.1f} interactions, "
      f"max hub degree {hubs}")

index = TreePiIndex.build(
    database, TreePiConfig(SupportFunction(alpha=2, beta=3.0, eta=5), gamma=1.1)
)
scan = SequentialScan(database)
print(f"indexed {index.feature_count()} feature trees")

motif_queries = {
    "kinase cascade": LabeledGraph(
        ["receptor", "kinase", "kinase", "tf"],
        [(0, 1, "activates"), (1, 2, "activates"), (2, 3, "activates")],
    ),
    "chaperone complex": LabeledGraph(
        ["chaperone", "kinase", "receptor"],
        [(0, 1, "binds"), (0, 2, "binds")],
    ),
    "inhibition chain": LabeledGraph(
        ["phosphatase", "kinase", "tf"],
        [(0, 1, "inhibits"), (1, 2, "activates")],
    ),
    "degradation tag": LabeledGraph(
        ["ligase", "protease", "tf"],
        [(0, 1, "binds"), (1, 2, "inhibits")],
    ),
    "double-kinase hub": LabeledGraph(
        ["kinase", "kinase", "kinase"],
        [(0, 1, "binds"), (0, 2, "binds")],
    ),
}

collector = QueryStatsCollector("protein motifs")
print(f"\n{'motif':22} {'hits':>5} {'ms':>8}")
for name, query in motif_queries.items():
    t0 = time.perf_counter()
    result = index.query(query)
    elapsed = time.perf_counter() - t0
    collector.record(result, seconds=elapsed)
    assert result.matches == scan.support_set(query), name
    print(f"{name:22} {len(result.matches):>5} {elapsed * 1000:>8.2f}")

collector.summary_table().show()
print("\nall motif answers verified against sequential scan")
