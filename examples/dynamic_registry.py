#!/usr/bin/env python
"""A living molecule registry — insert/delete maintenance (Section 7.1).

Simulates a ChemIDplus-style registration workflow: molecules stream into
an indexed registry, duplicate structures are detected before insertion,
queries run continuously, and the index advises when accumulated churn
warrants a rebuild.

Run:  python examples/dynamic_registry.py
"""

import random
import time

from repro import TreePiConfig, TreePiIndex
from repro.baselines import SequentialScan
from repro.datasets import generate_aids_like
from repro.datasets.queries import extract_query
from repro.mining import SupportFunction

rng = random.Random(7)

print("bootstrapping registry with 60 molecules ...")
initial = generate_aids_like(60, avg_atoms=16, seed=1)
index = TreePiIndex.build(
    initial, TreePiConfig(SupportFunction(2, 2.0, 4), gamma=1.1)
)
print(f"  {index.feature_count()} feature trees")

incoming = generate_aids_like(30, avg_atoms=16, seed=2)
arrivals = [incoming[gid] for gid in incoming.graph_ids()]
# Slip two exact re-registrations into the stream to exercise screening.
arrivals.insert(5, initial[3].copy())
arrivals.insert(12, initial[9].copy())

registered = 0
duplicates = 0
removed = 0
t0 = time.perf_counter()

for step, molecule in enumerate(arrivals):
    # Duplicate screening: an isomorphic structure already registered?
    # Query the molecule itself; any match of equal size is a duplicate.
    probe = index.query(molecule)
    duplicate_ids = [
        gid
        for gid in probe.matches
        if index.database[gid].num_edges == molecule.num_edges
        and index.database[gid].num_vertices == molecule.num_vertices
    ]
    if duplicate_ids:
        duplicates += 1
        continue
    index.insert(molecule.copy())
    registered += 1

    # Periodic retirement of an old record.
    if step % 7 == 6:
        victim = rng.choice(index.database.graph_ids())
        index.delete(victim)
        removed += 1

    # A live query interleaved with the updates.
    if step % 5 == 4:
        query = extract_query(index.database, 5, rng)
        result = index.query(query)
        scan = SequentialScan(index.database)
        assert result.matches == scan.support_set(query)

elapsed = time.perf_counter() - t0
print(f"processed {len(arrivals)} arrivals in {elapsed:.2f}s: "
      f"{registered} registered, {duplicates} duplicates rejected, "
      f"{removed} retired")
print(f"churn since build: {index.churn_fraction:.0%} "
      f"(rebuild advised: {index.needs_rebuild()})")

if index.needs_rebuild():
    t0 = time.perf_counter()
    index = index.rebuild()
    print(f"rebuilt in {time.perf_counter() - t0:.2f}s "
          f"({index.feature_count()} feature trees)")

# Final consistency audit.
scan = SequentialScan(index.database)
for _ in range(5):
    query = extract_query(index.database, 4, rng)
    assert index.query(query).matches == scan.support_set(query)
print("final audit: index answers match sequential scan")
