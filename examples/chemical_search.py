#!/usr/bin/env python
"""Chemical substructure search — the paper's motivating application.

Builds an AIDS-like molecule database, indexes it with TreePi, and runs
functional-group queries (amide, carboxyl, thioether chains), comparing
the index against a full sequential scan for both answers and work done.

Run:  python examples/chemical_search.py
"""

import time

from repro import LabeledGraph, TreePiConfig, TreePiIndex
from repro.baselines import SequentialScan
from repro.datasets import generate_aids_like
from repro.mining import SupportFunction

SINGLE, DOUBLE = 1, 2

print("generating 150 molecule-like graphs ...")
database = generate_aids_like(150, avg_atoms=18, seed=2024)
print(f"  average size: {database.average_edge_count():.1f} bonds")

print("building TreePi index ...")
t0 = time.perf_counter()
index = TreePiIndex.build(
    database,
    TreePiConfig(support=SupportFunction(alpha=2, beta=2.0, eta=5), gamma=1.1),
)
print(f"  {index.feature_count()} feature trees in "
      f"{time.perf_counter() - t0:.2f}s")

scan = SequentialScan(database)

# ----------------------------------------------------------------------
# Functional-group queries.  Trees hit the direct-lookup fast path when
# they happen to be indexed features; others run the full pipeline.
# ----------------------------------------------------------------------
queries = {
    "amide C(=O)N": LabeledGraph(
        ["C", "O", "N"], [(0, 1, DOUBLE), (0, 2, SINGLE)]
    ),
    "carboxyl C(=O)O": LabeledGraph(
        ["C", "O", "O"], [(0, 1, DOUBLE), (0, 2, SINGLE)]
    ),
    "thioether C-S-C": LabeledGraph(
        ["C", "S", "C"], [(0, 1, SINGLE), (1, 2, SINGLE)]
    ),
    "butyl chain C-C-C-C": LabeledGraph(
        ["C", "C", "C", "C"], [(0, 1, SINGLE), (1, 2, SINGLE), (2, 3, SINGLE)]
    ),
    "amino acid backbone N-C-C(=O)": LabeledGraph(
        ["N", "C", "C", "O"], [(0, 1, SINGLE), (1, 2, SINGLE), (2, 3, DOUBLE)]
    ),
}

print(f"\n{'query':34} {'hits':>5} {'index ms':>9} {'scan ms':>8} {'checked':>8}")
for name, query in queries.items():
    t0 = time.perf_counter()
    result = index.query(query)
    index_ms = (time.perf_counter() - t0) * 1000

    t0 = time.perf_counter()
    truth = scan.support_set(query)
    scan_ms = (time.perf_counter() - t0) * 1000

    assert result.matches == truth, f"index disagreed with scan on {name}"
    checked = "lookup" if result.direct_hit else str(result.candidates_after_prune)
    print(f"{name:34} {len(result.matches):>5} {index_ms:>9.2f} "
          f"{scan_ms:>8.2f} {checked:>8}")

print("\nall index answers verified against sequential scan")
