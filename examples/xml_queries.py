#!/usr/bin/env python
"""Directed graph queries over XML-like documents (Section 7.2).

The paper's discussion section extends TreePi to directed graphs; this
example indexes a corpus of XML-like documents (element trees with
attributes and idref cross-links) and runs directed path/twig queries —
the workloads XML indexing papers like APEX target.

Run:  python examples/xml_queries.py
"""

import random
import time

from repro.core import TreePiConfig
from repro.directed import (
    DirectedLabeledGraph,
    DirectedTreePiIndex,
    generate_xml_like,
    is_directed_subgraph_isomorphic,
)
from repro.mining import SupportFunction

print("generating 120 XML-like documents ...")
corpus = generate_xml_like(120, avg_elements=10, seed=33)
avg_edges = sum(g.num_edges for g in corpus) / len(corpus)
print(f"  average size: {avg_edges:.1f} edges")

t0 = time.perf_counter()
index = DirectedTreePiIndex.build(
    corpus, TreePiConfig(SupportFunction(alpha=2, beta=2.0, eta=5), gamma=1.1)
)
print(f"indexed in {time.perf_counter() - t0:.2f}s "
      f"({index.feature_count()} feature trees over the subdivision)")

CHILD, ATTR, REF = "child", "attr", "ref"

# Twig queries in the style of XPath patterns.
queries = {
    "//section/para": DirectedLabeledGraph(
        ["section", "para"], [(0, 1, CHILD)]
    ),
    "//article/section/para": DirectedLabeledGraph(
        ["article", "section", "para"], [(0, 1, CHILD), (1, 2, CHILD)]
    ),
    "//list[item][item]": DirectedLabeledGraph(
        ["list", "item", "item"], [(0, 1, CHILD), (0, 2, CHILD)]
    ),
    "//para[@id]": DirectedLabeledGraph(
        ["para", "id"], [(0, 1, ATTR)]
    ),
    "//section -ref-> figure": DirectedLabeledGraph(
        ["section", "figure"], [(0, 1, REF)]
    ),
    "reversed child (must be rare)": DirectedLabeledGraph(
        ["para", "article"], [(0, 1, CHILD)]
    ),
}

print(f"\n{'query':32} {'hits':>5} {'index ms':>9} {'scan ms':>8}")
for name, query in queries.items():
    t0 = time.perf_counter()
    result = index.query(query)
    index_ms = (time.perf_counter() - t0) * 1000

    t0 = time.perf_counter()
    truth = frozenset(
        g.graph_id for g in corpus if is_directed_subgraph_isomorphic(query, g)
    )
    scan_ms = (time.perf_counter() - t0) * 1000

    assert result.matches == truth, f"index disagreed with scan on {name}"
    print(f"{name:32} {len(result.matches):>5} {index_ms:>9.2f} {scan_ms:>8.2f}")

print("\nall directed answers verified against the directed oracle")
