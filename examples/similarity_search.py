#!/usr/bin/env python
"""Relaxed substructure search — the Grafil-style scenario (Section 1/2).

Drug-discovery screens rarely want only exact substructure hits: a
molecule missing one bond of the pharmacophore is still interesting.
This example builds a TreePi index and answers queries at increasing
relaxation levels (edges allowed to be missing), reporting each hit at
its edge-deletion distance.

Run:  python examples/similarity_search.py
"""

import random
import time

from repro import TreePiConfig, TreePiIndex
from repro.approximate import RelaxedQueryEngine
from repro.datasets import generate_aids_like
from repro.datasets.queries import extract_query
from repro.mining import SupportFunction

print("generating 100 molecule-like graphs ...")
database = generate_aids_like(100, avg_atoms=16, seed=404)

index = TreePiIndex.build(
    database, TreePiConfig(SupportFunction(alpha=2, beta=2.0, eta=5), gamma=1.1)
)
engine = RelaxedQueryEngine(index)
print(f"indexed {index.feature_count()} feature trees")

rng = random.Random(11)
print(f"\n{'query':>6} {'edges':>6} {'k=0':>6} {'k=1':>6} {'k=2':>6} {'ms':>8}")
for qid in range(6):
    query = extract_query(database, rng.choice([6, 8, 10]), rng)
    t0 = time.perf_counter()
    answers = engine.query(query, max_missing_edges=2)
    elapsed = (time.perf_counter() - t0) * 1000
    by_level = {level: 0 for level in (0, 1, 2)}
    for level in answers.values():
        by_level[level] += 1
    print(f"{qid:>6} {query.num_edges:>6} {by_level[0]:>6} "
          f"{by_level[0] + by_level[1]:>6} {len(answers):>6} {elapsed:>8.1f}")

print("\ncolumns k=0/1/2 are cumulative hit counts at each relaxation level")
print("(each graph is reported at its minimum edge-deletion distance)")
