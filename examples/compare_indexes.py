#!/usr/bin/env python
"""Head-to-head: TreePi vs gIndex vs GraphGrep vs sequential scan.

Reproduces, in miniature, the comparisons of Section 6 on a synthetic
low-label-diversity database (the regime where indexing is hardest), and
prints a per-query-size summary of candidate quality and latency.

Run:  python examples/compare_indexes.py
"""

import time

from repro import TreePiConfig, TreePiIndex
from repro.baselines import (
    GIndexBaseline,
    GIndexConfig,
    GraphGrepBaseline,
    GraphGrepConfig,
    SequentialScan,
)
from repro.datasets import extract_query_workload, synthetic_database
from repro.mining import SupportFunction

print("generating synthetic database D150I5T12S50L5 ...")
database = synthetic_database(
    150, avg_seed_edges=5, avg_graph_edges=12, num_seeds=50,
    num_vertex_labels=5, seed=99,
)

systems = {}
t0 = time.perf_counter()
systems["TreePi"] = TreePiIndex.build(
    database, TreePiConfig(SupportFunction(2, 2.0, 5), gamma=1.1)
)
print(f"TreePi    built in {time.perf_counter() - t0:.2f}s "
      f"({systems['TreePi'].feature_count()} features)")

t0 = time.perf_counter()
systems["gIndex"] = GIndexBaseline.build(database, GIndexConfig(max_size=5))
print(f"gIndex    built in {time.perf_counter() - t0:.2f}s "
      f"({systems['gIndex'].feature_count()} features)")

t0 = time.perf_counter()
systems["GraphGrep"] = GraphGrepBaseline(database, GraphGrepConfig(max_length=4))
print(f"GraphGrep built in {time.perf_counter() - t0:.2f}s "
      f"({systems['GraphGrep'].index_size()} path entries)")

systems["scan"] = SequentialScan(database)

print(f"\n{'m':>3} {'|Dq|':>6}", end="")
for name in systems:
    print(f" {name + ' cand':>15} {name + ' ms':>12}", end="")
print()

for m in (4, 6, 8, 10):
    workload = extract_query_workload(database, m, 12, seed=m)
    stats = {name: [0.0, 0.0] for name in systems}  # candidates, ms
    dq = 0.0
    truth_sets = {}
    for i, query in enumerate(workload):
        truth_sets[i] = systems["scan"].support_set(query)
        dq += len(truth_sets[i])
    for name, system in systems.items():
        for i, query in enumerate(workload):
            t0 = time.perf_counter()
            result = system.query(query)
            stats[name][1] += (time.perf_counter() - t0) * 1000
            stats[name][0] += result.candidates_after_prune
            assert result.matches == truth_sets[i], f"{name} wrong on m={m}"
    n = len(workload)
    print(f"{m:>3} {dq / n:>6.1f}", end="")
    for name in systems:
        print(f" {stats[name][0] / n:>15.1f} {stats[name][1] / n:>12.2f}", end="")
    print()

print("\nall systems agreed with sequential scan on every query")
