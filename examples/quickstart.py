#!/usr/bin/env python
"""Quickstart: build a TreePi index over a toy database and run queries.

Run:  python examples/quickstart.py
"""

from repro import GraphDatabase, LabeledGraph, TreePiConfig, TreePiIndex
from repro.mining import SupportFunction

# ----------------------------------------------------------------------
# 1. A toy database of three labeled graphs (vertices carry atom-ish
#    labels, edges carry bond-ish labels), echoing the paper's Figure 1.
# ----------------------------------------------------------------------
g0 = LabeledGraph(
    ["a", "a", "b", "a", "b", "a", "b"],
    [(0, 1, 1), (1, 2, 1), (2, 3, 2), (3, 4, 1), (4, 5, 1), (5, 6, 2), (0, 5, 1)],
)
g1 = LabeledGraph(
    ["a", "a", "b", "a", "b", "a", "a"],
    [(0, 1, 1), (1, 2, 1), (2, 3, 2), (3, 4, 1), (4, 5, 1), (1, 6, 1)],
)
g2 = LabeledGraph(
    ["a", "a", "b", "a", "b", "a", "a", "b", "a"],
    [
        (0, 1, 1), (1, 2, 1), (2, 3, 2), (3, 4, 1), (4, 5, 1),
        (1, 6, 1), (6, 7, 2), (7, 8, 1), (8, 2, 1),
    ],
)
database = GraphDatabase([g0, g1, g2])

# ----------------------------------------------------------------------
# 2. Build the index: σ(s) thresholds (Eq. 1) plus the shrinking γ.
# ----------------------------------------------------------------------
config = TreePiConfig(
    support=SupportFunction(alpha=2, beta=2.0, eta=4),
    gamma=1.2,
)
index = TreePiIndex.build(database, config)
print(f"indexed {index.feature_count()} feature trees "
      f"(by size: {dict(sorted(index.stats.features_by_size.items()))})")

# ----------------------------------------------------------------------
# 3. Query: find every graph containing the pattern a-a-b (a 2-edge path).
# ----------------------------------------------------------------------
query = LabeledGraph(["a", "a", "b"], [(0, 1, 1), (1, 2, 1)])
result = index.query(query)
print(f"query a-a-b  ->  matches {sorted(result.matches)} "
      f"(direct feature hit: {result.direct_hit})")

# A larger query containing a cycle — partition + filter + center-prune +
# reconstruct kick in here.
cyclic_query = LabeledGraph(
    ["a", "a", "b", "a", "b"],
    [(0, 1, 1), (1, 2, 1), (2, 3, 2), (3, 4, 1)],
)
result = index.query(cyclic_query)
print(f"query 4-edge path  ->  matches {sorted(result.matches)}; "
      f"candidates: {result.candidates_after_filter} after filter, "
      f"{result.candidates_after_prune} after center pruning")

# ----------------------------------------------------------------------
# 4. Maintenance (Section 7.1): inserts update supports in place.
# ----------------------------------------------------------------------
g_new = g1.copy()
new_id = index.insert(g_new)
result = index.query(query)
print(f"after inserting a copy of graph 1 (id {new_id}) "
      f"-> matches {sorted(result.matches)}")

index.delete(new_id)
result = index.query(query)
print(f"after deleting it again -> matches {sorted(result.matches)}")
