"""Unit tests for tree centers (Theorem 1)."""

import pytest

from repro.exceptions import NotATreeError
from repro.graphs import LabeledGraph, cycle_graph, path_graph, star_graph
from repro.trees import center_of_embedding, is_edge_centered, tree_center


class TestTreeCenter:
    def test_single_vertex(self):
        assert tree_center(LabeledGraph(["a"])) == (0,)

    def test_single_edge(self):
        assert tree_center(path_graph(["a", "b"])) == (0, 1)

    def test_odd_path_has_vertex_center(self):
        assert tree_center(path_graph(["a"] * 7)) == (3,)

    def test_even_path_has_edge_center(self):
        assert tree_center(path_graph(["a"] * 6)) == (2, 3)

    def test_star_center_is_hub(self):
        assert tree_center(star_graph("h", ["x"] * 5)) == (0,)

    def test_caterpillar(self):
        # Path 0-1-2-3-4 with extra leaves on 1: center stays at 2.
        t = path_graph(["a"] * 5)
        leaf = t.add_vertex("a")
        t.add_edge(1, leaf, 1)
        assert tree_center(t) == (2,)

    def test_center_vertices_adjacent_when_edge(self):
        t = path_graph(["a"] * 4)
        c = tree_center(t)
        assert len(c) == 2
        assert t.has_edge(*c)

    def test_rejects_cycle(self):
        with pytest.raises(NotATreeError):
            tree_center(cycle_graph(["a"] * 4))

    def test_rejects_disconnected(self):
        g = LabeledGraph(["a", "b"], [])
        with pytest.raises(NotATreeError):
            tree_center(g)

    def test_center_invariant_under_relabeling(self):
        t = star_graph("h", ["a", "b", "c"])
        perm = [3, 0, 1, 2]
        relabeled = t.relabeled(perm)
        assert tree_center(relabeled) == (perm[0],)


class TestIsEdgeCentered:
    def test_even_path(self):
        assert is_edge_centered(path_graph(["a"] * 4))

    def test_odd_path(self):
        assert not is_edge_centered(path_graph(["a"] * 5))


class TestCenterOfEmbedding:
    def test_vertex_center_maps_through(self):
        t = path_graph(["a", "b", "a"])  # center vertex 1
        mapping = {0: 10, 1: 20, 2: 30}
        assert center_of_embedding(t, mapping) == (20,)

    def test_edge_center_sorted(self):
        t = path_graph(["a", "b"])  # center edge (0, 1)
        mapping = {0: 9, 1: 2}
        assert center_of_embedding(t, mapping) == (2, 9)
