"""Unit tests for the tree canonical form (Section 4.2.2)."""

import itertools
import random

import pytest

from repro.exceptions import NotATreeError
from repro.graphs import LabeledGraph, cycle_graph, path_graph, star_graph
from repro.trees import (
    rooted_canonical_string,
    tree_canonical_form,
    tree_canonical_string,
)


def random_labeled_tree(rng, n, labels="abc", edge_labels=(1, 2)):
    t = LabeledGraph([rng.choice(labels) for _ in range(n)])
    for v in range(1, n):
        t.add_edge(v, rng.randrange(v), rng.choice(edge_labels))
    return t


class TestRootedCanonicalString:
    def test_single_vertex(self):
        s = rooted_canonical_string(LabeledGraph(["x"]), 0)
        assert "'x'" in s

    def test_sibling_order_is_canonical(self):
        # hub with children b, a in either insertion order
        t1 = LabeledGraph(["h", "b", "a"], [(0, 1, 1), (0, 2, 1)])
        t2 = LabeledGraph(["h", "a", "b"], [(0, 1, 1), (0, 2, 1)])
        assert rooted_canonical_string(t1, 0) == rooted_canonical_string(t2, 0)

    def test_root_choice_matters(self):
        p = path_graph(["a", "b", "c"])
        assert rooted_canonical_string(p, 0) != rooted_canonical_string(p, 2)

    def test_rejects_non_tree(self):
        with pytest.raises(NotATreeError):
            rooted_canonical_string(cycle_graph(["a"] * 3), 0)


class TestTreeCanonicalString:
    def test_vertex_centered_prefix(self):
        assert tree_canonical_string(path_graph(["a"] * 3)).startswith("V:")

    def test_edge_centered_prefix(self):
        assert tree_canonical_string(path_graph(["a"] * 4)).startswith("E[")

    def test_invariant_under_all_permutations(self):
        t = LabeledGraph(
            ["a", "b", "b", "c"], [(0, 1, 1), (0, 2, 1), (2, 3, 2)]
        )
        baseline = tree_canonical_string(t)
        for perm in itertools.permutations(range(4)):
            assert tree_canonical_string(t.relabeled(list(perm))) == baseline

    def test_distinguishes_vertex_labels(self):
        t1 = path_graph(["a", "b", "a"])
        t2 = path_graph(["a", "a", "a"])
        assert tree_canonical_string(t1) != tree_canonical_string(t2)

    def test_distinguishes_edge_labels(self):
        t1 = LabeledGraph(["a", "a", "a"], [(0, 1, 1), (1, 2, 2)])
        t2 = LabeledGraph(["a", "a", "a"], [(0, 1, 1), (1, 2, 1)])
        assert tree_canonical_string(t1) != tree_canonical_string(t2)

    def test_distinguishes_topology(self):
        star = star_graph("a", ["a", "a", "a"])
        path = path_graph(["a"] * 4)
        assert tree_canonical_string(star) != tree_canonical_string(path)

    def test_edge_center_halves_sorted(self):
        # The same tree built in mirrored vertex orders.
        t1 = LabeledGraph(["x", "a", "b"], [(0, 1, 1), (1, 2, 1)])
        t2 = LabeledGraph(["b", "a", "x"], [(0, 1, 1), (1, 2, 1)])
        assert tree_canonical_string(t1) == tree_canonical_string(t2)

    def test_exhaustive_random_trees(self):
        rng = random.Random(11)
        for _ in range(60):
            t = random_labeled_tree(rng, rng.randint(2, 9))
            perm = list(range(t.num_vertices))
            rng.shuffle(perm)
            assert tree_canonical_string(t.relabeled(perm)) == tree_canonical_string(t)

    def test_different_random_trees_rarely_collide(self):
        # Canonical strings of structurally different trees must differ;
        # verify against the generic isomorphism oracle.
        from repro.graphs import are_isomorphic

        rng = random.Random(13)
        trees = [random_labeled_tree(rng, rng.randint(2, 6)) for _ in range(20)]
        for t1, t2 in itertools.combinations(trees, 2):
            same = tree_canonical_string(t1) == tree_canonical_string(t2)
            assert same == are_isomorphic(t1, t2)


class TestTreeCanonicalForm:
    def test_returns_string_and_center(self):
        key, center = tree_canonical_form(path_graph(["a"] * 5))
        assert key.startswith("V:")
        assert center == (2,)
