"""Unit tests for tree isomorphism / subtree containment."""

from repro.graphs import LabeledGraph, path_graph, star_graph
from repro.trees import is_subtree_of, trees_isomorphic


class TestTreesIsomorphic:
    def test_relabeled_tree(self, small_tree):
        assert trees_isomorphic(small_tree, small_tree.relabeled([4, 3, 2, 1, 0]))

    def test_size_mismatch_fast_path(self):
        assert not trees_isomorphic(path_graph(["a"] * 3), path_graph(["a"] * 4))

    def test_label_mismatch(self):
        assert not trees_isomorphic(path_graph(["a", "b"]), path_graph(["a", "c"]))

    def test_mirrored_paths(self):
        t1 = path_graph(["a", "b", "c"])
        t2 = path_graph(["c", "b", "a"])
        assert trees_isomorphic(t1, t2)


class TestIsSubtreeOf:
    def test_path_in_star(self):
        assert is_subtree_of(path_graph(["x", "h"]), star_graph("h", ["x", "y"]))

    def test_path3_in_star(self):
        # A 2-edge path through the hub exists in any 2-leaf star.
        p = path_graph(["x", "h", "y"])
        assert is_subtree_of(p, star_graph("h", ["x", "y"]))

    def test_star_not_in_path(self):
        star = star_graph("a", ["a", "a", "a"])
        assert not is_subtree_of(star, path_graph(["a"] * 6))

    def test_too_large(self):
        assert not is_subtree_of(path_graph(["a"] * 5), path_graph(["a"] * 4))

    def test_edge_labels_respected(self):
        small = LabeledGraph(["a", "a"], [(0, 1, 2)])
        big = LabeledGraph(["a", "a", "a"], [(0, 1, 1), (1, 2, 1)])
        assert not is_subtree_of(small, big)

    def test_itself(self, small_tree):
        assert is_subtree_of(small_tree, small_tree)
