"""Unit tests for the markdown report generator."""

import pytest

from repro.bench import Table, generate_report, table_to_markdown, write_report
from repro.bench.harness import Scale

MICRO = Scale(
    name="micro-report",
    db_sizes=(8,),
    query_db_size=8,
    queries_per_size=2,
    query_sizes=(3,),
    avg_atoms=9,
    eta=3,
)


class TestTableToMarkdown:
    def test_structure(self):
        table = Table("Demo title", ["a", "b"], notes=["note text"])
        table.add_row(1, 2.5)
        md = table_to_markdown(table)
        assert md.startswith("### Demo title")
        assert "| a | b |" in md
        assert "|---|---|" in md
        assert "| 1 | 2.5000 |" in md
        assert "*note text*" in md

    def test_empty_table(self):
        md = table_to_markdown(Table("Empty", ["x"]))
        assert "| x |" in md


class TestGenerateReport:
    def test_restricted_section(self):
        from repro.bench import clear_caches

        clear_caches()
        md = generate_report(MICRO, sections=["Figure 9"])
        assert "# TreePi reproduction report" in md
        assert "Figure 9" in md
        assert "Figure 12" not in md
        assert "treepi_features" in md
        clear_caches()

    def test_write_report(self, tmp_path):
        from repro.bench import clear_caches

        clear_caches()
        path = write_report(tmp_path / "r.md", scale=MICRO, sections=["Figure 9"])
        text = path.read_text()
        assert text.startswith("# TreePi reproduction report")
        assert "micro-report" in text
        clear_caches()


class TestCli:
    def test_report_command(self, tmp_path, monkeypatch):
        # The CLI resolves the scale from the environment; point it at tiny
        # but restrict to one cheap section via a monkeypatched roster.
        import repro.bench.report as report_mod
        from repro.cli import main

        monkeypatch.setattr(
            report_mod, "ROSTER",
            [("Smoke", lambda s: [Table("smoke", ["v"], [[1]])])],
        )
        out = tmp_path / "cli.md"
        assert main(["report", "--out", str(out)]) == 0
        assert "smoke" in out.read_text()
