"""Unit tests for the query statistics collector."""

import pytest

from repro.bench import QueryStatsCollector, percentile
from repro.core.statistics import QueryResult


def result(matches=(1,), pq=5, pqp=3, direct=False, phases=None):
    return QueryResult(
        matches=frozenset(matches),
        direct_hit=direct,
        candidates_after_filter=pq,
        candidates_after_prune=pqp,
        phase_seconds=phases or {"filter": 0.001, "verification": 0.002},
    )


class TestPercentile:
    def test_median(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_extremes(self):
        values = [float(i) for i in range(10)]
        assert percentile(values, 0.0) == 0.0
        assert percentile(values, 1.0) == 9.0

    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestCollector:
    def test_empty_collector(self):
        c = QueryStatsCollector()
        assert len(c) == 0
        assert c.mean_latency_ms() == 0.0
        assert c.direct_hit_rate() == 0.0
        assert c.false_positive_rate() == 0.0

    def test_means(self):
        c = QueryStatsCollector()
        c.record(result(matches=(1, 2), pq=10, pqp=4))
        c.record(result(matches=(1,), pq=6, pqp=2))
        assert c.mean("support") == 1.5
        assert c.mean("candidates_after_filter") == 8
        assert c.mean("candidates_after_prune") == 3

    def test_latency_override(self):
        c = QueryStatsCollector()
        c.record(result(), seconds=0.010)
        c.record(result(), seconds=0.030)
        assert c.mean_latency_ms() == pytest.approx(20.0)
        assert c.latency_percentile_ms(1.0) == pytest.approx(30.0)

    def test_direct_hit_rate(self):
        c = QueryStatsCollector()
        c.record(result(direct=True))
        c.record(result(direct=False))
        assert c.direct_hit_rate() == 0.5

    def test_false_positive_rate(self):
        c = QueryStatsCollector()
        c.record(result(matches=(1,), pqp=4))  # 3 of 4 rejected
        assert c.false_positive_rate() == 0.75

    def test_phase_breakdown(self):
        c = QueryStatsCollector()
        c.record(result(phases={"filter": 0.002}))
        c.record(result(phases={"filter": 0.004, "verification": 0.006}))
        breakdown = c.phase_breakdown_ms()
        assert breakdown["filter"] == pytest.approx(3.0)
        assert breakdown["verification"] == pytest.approx(3.0)

    def test_summary_table(self):
        c = QueryStatsCollector(name="demo")
        c.record(result())
        table = c.summary_table()
        assert "demo" in table.title
        metrics = table.column("metric")
        assert "queries" in metrics
        assert "mean |P'q|" in metrics

    def test_integration_with_real_index(self, chem_db, chem_index):
        from repro.datasets import extract_query_workload

        c = QueryStatsCollector("chem")
        for query in extract_query_workload(chem_db, 4, 5, seed=1):
            c.record(chem_index.query(query))
        assert len(c) == 5
        assert c.mean("support") >= 1
        assert c.summary_table().rows
