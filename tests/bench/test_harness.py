"""Unit tests for the benchmark harness plumbing."""

import pytest

from repro.bench import Scale, Table, current_scale, geometric_mean, output_dir


class TestTable:
    def test_add_row_and_column(self):
        t = Table("demo", ["a", "b"])
        t.add_row(1, 2.5)
        t.add_row(3, 4.0)
        assert t.column("a") == [1, 3]
        assert t.column("b") == [2.5, 4.0]

    def test_add_row_arity_checked(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_render_contains_everything(self):
        t = Table("demo", ["name", "value"], notes=["a note"])
        t.add_row("x", 1.23456)
        text = t.render()
        assert "demo" in text
        assert "name" in text and "value" in text
        assert "1.2346" in text  # floats formatted to 4 places
        assert "# a note" in text

    def test_render_empty_table(self):
        t = Table("empty", ["only"])
        assert "only" in t.render()

    def test_to_csv(self, tmp_path):
        t = Table("demo", ["a", "b"])
        t.add_row(1, "x")
        path = tmp_path / "out.csv"
        t.to_csv(path)
        assert path.read_text() == "a,b\n1,x\n"

    def test_unknown_column(self):
        t = Table("demo", ["a"])
        with pytest.raises(ValueError):
            t.column("missing")


class TestScale:
    def test_default_scale_is_tiny(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert current_scale().name == "tiny"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "small")
        assert current_scale().name == "small"

    def test_case_insensitive(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "MEDIUM")
        assert current_scale().name == "medium"

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(KeyError):
            current_scale()

    def test_scales_are_ordered(self, monkeypatch):
        sizes = []
        for name in ("tiny", "small", "medium"):
            monkeypatch.setenv("REPRO_BENCH_SCALE", name)
            sizes.append(max(current_scale().db_sizes))
        assert sizes == sorted(sizes)


class TestHelpers:
    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([5]) == pytest.approx(5.0)

    def test_geometric_mean_ignores_nonpositive(self):
        assert geometric_mean([0, 4]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, -3]) == 0.0

    def test_output_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_OUT", str(tmp_path / "nested" / "out"))
        path = output_dir()
        assert path.is_dir()
        assert path.name == "out"


class TestExperimentCaching:
    def test_database_memoized(self):
        from repro.bench import clear_caches, get_database
        from repro.bench.harness import Scale

        micro = Scale(
            name="micro", db_sizes=(5,), query_db_size=5, queries_per_size=1,
            query_sizes=(2,), avg_atoms=8, eta=3,
        )
        clear_caches()
        first = get_database("chemical", 5, micro)
        second = get_database("chemical", 5, micro)
        assert first is second
        clear_caches()
        third = get_database("chemical", 5, micro)
        assert third is not first

    def test_unknown_dataset_kind(self):
        from repro.bench import get_database
        from repro.bench.harness import Scale

        micro = Scale(
            name="micro", db_sizes=(5,), query_db_size=5, queries_per_size=1,
            query_sizes=(2,), avg_atoms=8, eta=3,
        )
        with pytest.raises(ValueError):
            get_database("nope", 5, micro)
