"""Micro-scale smoke tests for every experiment runner.

The benchmarks exercise these at real scales; here a deliberately tiny
Scale keeps each figure function under a second so plain ``pytest tests/``
covers the experiment code paths (table shapes, columns, funnels).
"""

import pytest

from repro.bench import (
    ablation_center_prune,
    ablation_maintenance,
    ablation_partition_restarts,
    ablation_shrinking,
    ablation_tree_vs_path_features,
    clear_caches,
    experiment_index_construction,
    experiment_index_size,
    experiment_label_diversity,
    experiment_prune_effectiveness,
    experiment_pruning_performance,
    experiment_query_time,
)
from repro.bench.harness import Scale

MICRO = Scale(
    name="micro",
    db_sizes=(10, 20),
    query_db_size=15,
    queries_per_size=3,
    query_sizes=(3, 5),
    avg_atoms=10,
    eta=3,
)


@pytest.fixture(autouse=True, scope="module")
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestFigureRunners:
    def test_index_size(self):
        table = experiment_index_size(MICRO)
        assert table.columns == ["db_size", "treepi_features", "gindex_features"]
        assert len(table.rows) == 2
        assert all(v > 0 for v in table.column("treepi_features"))

    def test_pruning_performance(self):
        low, high = experiment_pruning_performance(MICRO)
        assert len(low.rows) == len(MICRO.query_sizes)
        assert len(high.rows) == len(MICRO.query_sizes)
        for table in (low, high):
            for dq, tp in zip(
                table.column("avg_Dq"), table.column("treepi_Pq_prime")
            ):
                assert tp >= dq - 1e-9

    def test_prune_effectiveness_chemical(self):
        table = experiment_prune_effectiveness(MICRO, dataset="chemical")
        assert table.rows
        for dq, tp in zip(table.column("avg_Dq"), table.column("treepi_Pq_prime")):
            assert tp >= dq - 1e-9

    def test_prune_effectiveness_synthetic(self):
        table = experiment_prune_effectiveness(MICRO, dataset="synthetic", labels=3)
        assert table.rows

    def test_index_construction(self):
        table = experiment_index_construction(MICRO)
        assert all(v > 0 for v in table.column("treepi_seconds"))
        assert all(v > 0 for v in table.column("gindex_seconds"))

    def test_query_time(self):
        table = experiment_query_time(MICRO)
        assert len(table.rows) == len(MICRO.query_sizes)
        assert all(v > 0 for v in table.column("treepi_ms"))

    def test_query_time_synthetic(self):
        table = experiment_query_time(MICRO, dataset="synthetic")
        assert table.rows


class TestAblationRunners:
    def test_center_prune(self):
        table = ablation_center_prune(MICRO)
        for fo, wp in zip(
            table.column("Pq_filter_only"), table.column("Pq_prime_with_prune")
        ):
            assert wp <= fo + 1e-9

    def test_shrinking(self):
        table = ablation_shrinking(MICRO)
        features = table.column("features")
        assert features == sorted(features, reverse=True)

    def test_partition_restarts(self):
        table = ablation_partition_restarts(MICRO)
        tpq = table.column("avg_TPq_size")
        assert tpq[-1] <= tpq[0] + 1e-9

    def test_tree_vs_path(self):
        table = ablation_tree_vs_path_features(MICRO)
        assert table.column("path_features")[0] <= table.column("tree_features")[0]

    def test_maintenance(self):
        table = ablation_maintenance(MICRO)
        rows = {row[0]: row for row in table.rows}
        assert rows["audit_mismatches"][2] == 0.0

    def test_verification_strategy(self):
        from repro.bench import ablation_verification_strategy

        table = ablation_verification_strategy(MICRO)
        assert len(table.rows) == len(MICRO.query_sizes)
        assert all(v > 0 for v in table.column("reconstruct_ms"))

    def test_label_diversity(self):
        table = experiment_label_diversity(MICRO)
        assert len(table.rows) == 4
        for c, d in zip(table.column("avg_Pq_prime"), table.column("avg_Dq")):
            assert c >= d - 1e-9

    def test_phase_breakdown(self):
        from repro.bench import experiment_phase_breakdown

        table = experiment_phase_breakdown(MICRO)
        assert len(table.rows) == len(MICRO.query_sizes)
        for rate in table.column("direct_hit_rate"):
            assert 0.0 <= rate <= 1.0

    def test_query_scalability(self):
        from repro.bench import experiment_query_scalability

        table = experiment_query_scalability(MICRO)
        assert len(table.rows) == len(MICRO.db_sizes)
        for tp, dq in zip(table.column("avg_Pq_prime"), table.column("avg_Dq")):
            assert tp >= dq - 1e-9
