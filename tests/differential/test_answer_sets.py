"""Differential oracle suite: four engines, one answer set.

For every seeded corpus the exact support set ``D_q`` of each query is
computed four ways —

* ``TreePiIndex.query``           (the paper pipeline, serial),
* ``QueryEngine.query``           (cold, then again from cache),
* ``SequentialScan.support_set``  (brute-force ground truth),
* ``GIndexBaseline.query``        (independent filter+verify design),

— and all of them must agree exactly.  Any divergence is a soundness or
completeness bug in one of the pipelines, never an acceptable tradeoff.

A handful of corpora run in the default (fast) suite; the full sweep is
marked ``slow``.  One corpus is frozen on disk under ``data/`` together
with its expected answers, so a regression can never hide behind a
generator change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.baselines.gindex import GIndexBaseline, GIndexConfig
from repro.baselines.scan import SequentialScan
from repro.core import QueryEngine, TreePiConfig, TreePiIndex
from repro.datasets import (
    extract_query_workload,
    generate_aids_like,
    synthetic_database,
)
from repro.graphs import load_database
from repro.mining import SupportFunction

DATA_DIR = Path(__file__).parent / "data"

QUERY_SIZES = (3, 5)
QUERIES_PER_SIZE = 3

#: (kind, seed) for every generated corpus.  The first entries of each
#: kind form the fast subset; the rest only run with ``-m slow`` (CI).
CHEMICAL_SEEDS = list(range(101, 116))
SYNTHETIC_SEEDS = list(range(201, 216))
FAST_PER_KIND = 2


def make_corpus(kind: str, seed: int):
    """One small database plus a mixed-size query workload."""
    if kind == "chemical":
        db = generate_aids_like(10, avg_atoms=11, seed=seed)
    else:
        db = synthetic_database(
            10,
            avg_seed_edges=4,
            avg_graph_edges=9,
            num_seeds=6,
            num_vertex_labels=3,
            seed=seed,
        )
    queries = []
    for num_edges in QUERY_SIZES:
        queries.extend(
            extract_query_workload(db, num_edges, QUERIES_PER_SIZE, seed=seed + num_edges)
        )
    return db, queries


def assert_engines_agree(db, queries):
    """The four-way differential check for one corpus."""
    scan = SequentialScan(db)
    treepi = TreePiIndex.build(
        db, TreePiConfig(SupportFunction(alpha=2, beta=2.0, eta=4), seed=5)
    )
    gindex = GIndexBaseline.build(db, GIndexConfig(max_size=4))
    engine = QueryEngine(treepi, cache_size=len(queries))
    answers = []
    for i, query in enumerate(queries):
        truth = scan.support_set(query)
        assert treepi.query(query).matches == truth, f"TreePi diverged on query {i}"
        assert engine.query(query).matches == truth, f"engine (cold) diverged on query {i}"
        assert engine.query(query).matches == truth, f"engine (cached) diverged on query {i}"
        assert gindex.query(query).matches == truth, f"gIndex diverged on query {i}"
        answers.append(truth)
    # The second pass above must have been served from cache.
    stats = engine.stats
    assert stats.cache_hits >= len(queries) - stats.batch_dedup_hits
    return answers


def corpus_params(seeds, kind):
    fast, slow = seeds[:FAST_PER_KIND], seeds[FAST_PER_KIND:]
    params = [pytest.param(kind, s, id=f"{kind}-{s}") for s in fast]
    params += [
        pytest.param(kind, s, id=f"{kind}-{s}", marks=pytest.mark.slow)
        for s in slow
    ]
    return params


@pytest.mark.parametrize(
    "kind,seed",
    corpus_params(CHEMICAL_SEEDS, "chemical")
    + corpus_params(SYNTHETIC_SEEDS, "synthetic"),
)
def test_answer_sets_agree(kind, seed):
    db, queries = make_corpus(kind, seed)
    assert_engines_agree(db, queries)


# ----------------------------------------------------------------------
# frozen corpus — regenerate with `python tests/differential/freeze.py`
# ----------------------------------------------------------------------
def test_frozen_corpus_answers():
    """Replay the committed corpus against its committed answer sets.

    This pins today's semantics to bytes on disk: if any engine (or the
    generators feeding the differential sweep) drifts, this test fails
    even though the four live engines still agree with each other.
    """
    db = load_database(DATA_DIR / "corpus.txt")
    queries = list(load_database(DATA_DIR / "queries.txt"))
    expected = json.loads((DATA_DIR / "expected_answers.json").read_text())
    assert len(expected["answers"]) == len(queries)
    live = assert_engines_agree(db, queries)
    for i, (truth, frozen) in enumerate(zip(live, expected["answers"])):
        assert sorted(truth) == frozen, f"frozen answers drifted on query {i}"
