"""Differential regression: batch per-result stats ≡ singleton stats.

The pre-fix ``QueryEngine._execute_batch`` finished every open plan with
the *batch-wide* elapsed time and one *shared* ``VerificationStats``, so
each member's ``phase_seconds["verification"]`` and ``result.verification``
were inflated by up to the batch size and disagreed with the same query
run through ``query()``.  This suite pins the fix: for every query in a
seeded corpus, ``query_batch`` must attribute to each member exactly the
deterministic stats its own ``query()`` run reports, while the engine's
aggregate counters stay unchanged.
"""

from __future__ import annotations

import pytest

from repro.core import QueryEngine, TreePiConfig, TreePiIndex
from repro.datasets import extract_query_workload, generate_aids_like
from repro.mining import SupportFunction

QUERY_SIZES = (3, 5, 7)
QUERIES_PER_SIZE = 3


@pytest.fixture(scope="module")
def corpus():
    db = generate_aids_like(12, avg_atoms=12, seed=107)
    queries = []
    for size in QUERY_SIZES:
        queries.extend(
            extract_query_workload(db, size, QUERIES_PER_SIZE, seed=size)
        )
    return db, queries


def build_engine(db, **kwargs):
    kwargs.setdefault("cache_size", 0)  # isolate pipelines from caching
    index = TreePiIndex.build(
        db, TreePiConfig(SupportFunction(2, 2.0, 5), seed=5)
    )
    return QueryEngine(index, **kwargs)


def assert_same_stats(single, batched):
    """Everything deterministic about the two results must be equal.

    Wall-clock values cannot be compared bit-for-bit across two runs, so
    timings are checked structurally (same phases recorded); every
    counter — including the per-result verification record the old code
    shared across the whole batch — must match exactly.
    """
    assert batched.matches == single.matches
    assert batched.direct_hit == single.direct_hit
    assert batched.partition_size == single.partition_size
    assert batched.sfq_size == single.sfq_size
    assert batched.candidates_after_filter == single.candidates_after_filter
    assert batched.candidates_after_prune == single.candidates_after_prune
    assert batched.complete and single.complete
    assert batched.prune_exhausted == single.prune_exhausted
    assert batched.verification == single.verification
    assert set(batched.phase_seconds) == set(single.phase_seconds)


class TestSingletonBatchEquivalence:
    def test_batch_of_one_equals_query(self, corpus):
        db, queries = corpus
        singles = build_engine(db)
        batches = build_engine(db)
        for query in queries:
            assert_same_stats(
                singles.query(query), batches.query_batch([query])[0]
            )

    def test_batch_members_equal_their_singleton_runs(self, corpus):
        db, queries = corpus
        singles = build_engine(db)
        batches = build_engine(db)
        batch_results = batches.query_batch(queries)
        for query, batched in zip(queries, batch_results):
            assert_same_stats(singles.query(query), batched)

    def test_pooled_batch_members_equal_serial_singletons(self, corpus):
        db, queries = corpus
        singles = build_engine(db)
        batches = build_engine(db, verify_workers=4)
        batch_results = batches.query_batch(queries)
        for query, batched in zip(queries, batch_results):
            assert_same_stats(singles.query(query), batched)

    def test_verification_records_not_shared_across_batch(self, corpus):
        db, queries = corpus
        engine = build_engine(db)
        results = engine.query_batch(queries)
        records = [r.verification for r in results]
        for i, a in enumerate(records):
            for b in records[i + 1 :]:
                assert a is not b

    def test_engine_totals_match_sum_of_members(self, corpus):
        db, queries = corpus
        singles = build_engine(db)
        batches = build_engine(db)
        for query in queries:
            singles.query(query)
        batches.query_batch(queries)
        s, b = singles.stats, batches.stats
        assert b.candidates_filtered == s.candidates_filtered
        assert b.candidates_pruned == s.candidates_pruned
        assert b.verifications_run == s.verifications_run
        assert b.prune_exhausted == s.prune_exhausted
        assert b.queries == s.queries == len(queries)

    def test_batch_verify_time_not_inflated_by_batch_size(self, corpus):
        """The old bug's signature: every member charged the whole batch.

        With per-plan attribution the members' verification seconds sum
        to (about) the batch's total verification work instead of
        ``batch_size × total``; checking the sum against the serial
        singleton sum with a generous factor keeps this robust on noisy
        CI boxes while still failing the inflated-attribution bug, which
        multiplies the sum by the number of open plans.
        """
        db, queries = corpus
        singles = build_engine(db)
        batches = build_engine(db)
        single_total = sum(
            singles.query(q).phase_seconds.get("verification", 0.0)
            for q in queries
        )
        batch_total = sum(
            r.phase_seconds.get("verification", 0.0)
            for r in batches.query_batch(queries)
        )
        floor = 1e-4  # absolute slack for near-zero workloads
        assert batch_total <= 3.0 * single_total + floor
