"""K-sweep differential: the sharded tier answers exactly like one engine.

TreePi answer sets compose across disjoint partitions, so for every
shard count K the :class:`repro.serving.ShardedEngine` must return the
*identical* answer set a single :class:`repro.core.engine.QueryEngine`
returns on the same corpus — no approximation budget, no tolerance.
This suite sweeps K ∈ {1, 2, 4, 8} (read from the frozen-corpus
metadata, so this file and the replay below can never drift onto
different parameterizations) over the 30 seeded corpora:

* unbudgeted: exact equality, ``complete=True``, nothing unresolved;
* budgeted: the soundness bracket
  ``matches ⊆ exact ⊆ matches ∪ unresolved`` (budgets apply per
  shard, so which side a candidate lands on is timing-dependent — the
  bracket is the invariant, and degraded results are never cached);
* stats: ``ShardedStats.rollup`` equals the field-wise sum of the
  per-shard snapshots and tier traffic is counted once per call, not
  once per shard — the serving-tier extension of PR 5's
  anti-inflation gate.
"""

from __future__ import annotations

import json
from dataclasses import fields

import pytest

from repro.baselines.scan import SequentialScan
from repro.core import QueryBudget, QueryEngine, TreePiConfig, TreePiIndex
from repro.core.statistics import EngineStats
from repro.graphs import GraphDatabase, load_database
from repro.mining import SupportFunction
from repro.serving import ShardedEngine
from tests.differential.freeze import FROZEN_ROUTER_SEED, FROZEN_SHARD_COUNTS
from tests.differential.test_answer_sets import (
    CHEMICAL_SEEDS,
    DATA_DIR,
    SYNTHETIC_SEEDS,
    corpus_params,
    make_corpus,
)

SHARD_COUNTS = tuple(FROZEN_SHARD_COUNTS)


def build_config() -> TreePiConfig:
    """Same knobs as the single-engine differential suite."""
    return TreePiConfig(SupportFunction(alpha=2, beta=2.0, eta=4), seed=5)


def mirror_database(db: GraphDatabase) -> GraphDatabase:
    """A fresh container over the same graphs and the same global ids.

    The sharded tier re-partitions its input; giving it a mirror keeps
    the oracle's database untouched while both serve identical ids.
    """
    mirror = GraphDatabase()
    for gid in db.graph_ids():
        mirror.add(db[gid], graph_id=gid)
    return mirror


def sharded_over(db: GraphDatabase, k: int, **kwargs) -> ShardedEngine:
    kwargs.setdefault("router_seed", FROZEN_ROUTER_SEED)
    return ShardedEngine(mirror_database(db), build_config(), k, **kwargs)


def assert_rollup_uninflated(engine: ShardedEngine, members: int) -> None:
    """The anti-inflation gate: rollup == Σ shards, tier counts calls once.

    ``members`` is the number of query *memberships* the tier admitted
    (singles + batch members).  Every active shard executes each of
    them, so shard-level totals scale by K while tier totals must not.
    """
    stats = engine.stats
    rollup = stats.rollup
    for f in fields(EngineStats):
        total = sum(getattr(s, f.name) for s in stats.shards.values())
        assert getattr(rollup, f.name) == total, f.name
    active = sum(1 for s in stats.shards.values() if s.queries > 0)
    assert stats.tier.queries == members
    assert rollup.queries == members * active
    # Unbudgeted, un-faulted traffic: no degradation anywhere.
    assert stats.tier.shard_faults == 0
    assert stats.tier.shard_timeouts == 0
    assert stats.tier.degraded_results == 0
    assert rollup.degraded_results == 0
    assert rollup.timeouts == 0


@pytest.mark.parametrize(
    "kind,seed",
    corpus_params(CHEMICAL_SEEDS, "chemical")
    + corpus_params(SYNTHETIC_SEEDS, "synthetic"),
)
def test_sharded_matches_single_engine(kind, seed):
    """Unbudgeted K-sweep: exact equality against the single engine."""
    db, queries = make_corpus(kind, seed)
    single = QueryEngine(
        TreePiIndex.build(db, build_config()), cache_size=len(queries)
    )
    exact = [single.query(q).matches for q in queries]
    for k in SHARD_COUNTS:
        tier = sharded_over(db, k)
        for i, (query, truth) in enumerate(zip(queries, exact)):
            result = tier.query(query)
            assert result.complete, f"K={k} degraded on query {i}"
            assert not result.unresolved
            assert result.degraded_reason is None
            assert result.matches == truth, f"K={k} diverged on query {i}"
        for i, result in enumerate(tier.query_batch(queries)):
            assert result.matches == exact[i], f"K={k} batch diverged on {i}"
        assert_rollup_uninflated(tier, members=2 * len(queries))


@pytest.mark.parametrize(
    "kind,seed",
    [
        pytest.param("chemical", CHEMICAL_SEEDS[0], id="chemical"),
        pytest.param("synthetic", SYNTHETIC_SEEDS[0], id="synthetic"),
    ],
)
def test_budgeted_sharded_soundness_bracket(kind, seed):
    """Budgeted K-sweep: every degraded answer brackets the exact one."""
    db, queries = make_corpus(kind, seed)
    scan = SequentialScan(db)
    for k in SHARD_COUNTS:
        tier = sharded_over(db, k)
        budget = QueryBudget(verify_steps=3)
        for query in queries:
            exact = frozenset(scan.support_set(query))
            result = tier.query(query, budget=budget)
            assert result.matches <= exact
            assert exact <= (result.matches | result.unresolved)
            if result.complete:
                assert result.matches == exact
                assert not result.unresolved
            else:
                assert result.degraded_reason, "degraded result must say why"
        # Degraded answers are never cached at any level: an unbudgeted
        # retry must come back exact.
        for query in queries:
            retry = tier.query(query)
            assert retry.complete
            assert retry.matches == frozenset(scan.support_set(query))


def test_frozen_corpus_sharded_replay():
    """Replay the committed corpus through every committed shard count.

    The metadata (``shard_counts``, ``router_seed``) lives next to the
    frozen answers so the sharded and single-engine suites always
    replay the identical corpus under the identical layout; drift in
    either the generators or the merge shows up as a diff here.
    """
    db = load_database(DATA_DIR / "corpus.txt")
    queries = list(load_database(DATA_DIR / "queries.txt"))
    meta = json.loads((DATA_DIR / "expected_answers.json").read_text())
    assert meta["shard_counts"] == list(SHARD_COUNTS)
    assert len(meta["answers"]) == len(queries)
    for k in meta["shard_counts"]:
        tier = ShardedEngine(
            mirror_database(db),
            build_config(),
            k,
            router_seed=meta["router_seed"],
        )
        for i, (query, frozen) in enumerate(zip(queries, meta["answers"])):
            result = tier.query(query)
            assert sorted(result.matches) == frozen, (
                f"K={k} drifted from frozen answers on query {i}"
            )


def test_merge_is_deterministic():
    """Two identical sharded runs produce field-identical merged results.

    Pins the K>1 merge's ordering: shard dispatch and gather iterate in
    shard-id order, so ``degraded_reason`` strings, phase-time keys and
    every counter must be reproducible run-to-run (the latent hazard a
    thread-pool merge invites).
    """
    db, queries = make_corpus("chemical", CHEMICAL_SEEDS[0])
    runs = []
    for _ in range(2):
        tier = sharded_over(db, 4)
        runs.append([tier.query(q) for q in queries])
    for first, second in zip(*runs):
        assert first.matches == second.matches
        assert first.unresolved == second.unresolved
        assert first.complete == second.complete
        assert first.degraded_reason == second.degraded_reason
        assert first.direct_hit == second.direct_hit
        assert first.partition_size == second.partition_size
        assert first.sfq_size == second.sfq_size
        assert first.candidates_after_filter == second.candidates_after_filter
        assert first.candidates_after_prune == second.candidates_after_prune
        assert sorted(first.phase_seconds) == sorted(second.phase_seconds)
