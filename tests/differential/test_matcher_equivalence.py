"""Differential suite: prefiltered matcher vs the frozen pre-change matcher.

:func:`_reference_monomorphisms` is a verbatim freeze of the enumerator
as it stood before the PR-10 rewrite (plain VF2-style backtracking,
``anchors[0]`` candidate source, one-step backtracking, no prefilters),
with only the token plumbing stripped.  The rewrite is allowed to change
*how fast* answers arrive, never *which* answers: for every corpus of
the differential sweep, every query × graph pair must produce the exact
same embedding set under

* the new matcher with prefilters (the default),
* the new matcher with ``prefilter=False``,
* the new matcher under a generous (non-binding) budget token,

and the engine-level support sets — singles and ``query_batch``,
budgeted and unbudgeted, in-memory and v3 segment-backed — must equal
the reference matcher's brute-force support sets.

Seeded edge cases (``None`` edge labels, disconnected patterns, seeded
partial maps) are pinned separately so a regression cannot hide inside
corpus statistics.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import pytest

from repro.core import QueryBudget, QueryEngine, TreePiConfig, TreePiIndex
from repro.graphs import LabeledGraph, path_graph
from repro.mining import SupportFunction
from repro.persistence import load_index, save_index

from tests.differential.test_answer_sets import (
    CHEMICAL_SEEDS,
    SYNTHETIC_SEEDS,
    corpus_params,
    make_corpus,
)

CONFIG = TreePiConfig(SupportFunction(alpha=2, beta=2.0, eta=4), seed=5)

#: Large enough that no corpus search ever trips it: the token is issued
#: and threaded, but the budget never binds, so budgeted answers must be
#: bit-for-bit the unbudgeted ones.
GENEROUS = 10_000_000


# ----------------------------------------------------------------------
# the frozen pre-change matcher (reference oracle)
# ----------------------------------------------------------------------
def _reference_matching_order(
    pattern: LabeledGraph, seeded: Tuple[int, ...]
) -> List[int]:
    n = pattern.num_vertices
    order: List[int] = list(seeded)
    placed = set(order)
    while len(order) < n:
        frontier = [
            v
            for v in pattern.vertices()
            if v not in placed and any(w in placed for w in pattern.neighbors(v))
        ]
        pool = frontier or [v for v in pattern.vertices() if v not in placed]
        nxt = max(pool, key=lambda v: (pattern.degree(v), -v))
        order.append(nxt)
        placed.add(nxt)
    return order


def _reference_monomorphisms(
    pattern: LabeledGraph,
    target: LabeledGraph,
    seed: Optional[Dict[int, int]] = None,
    limit: Optional[int] = None,
) -> Iterator[Dict[int, int]]:
    """The pre-rewrite enumerator, frozen (token accounting removed)."""
    pn = pattern.num_vertices
    if pn == 0 or pn > target.num_vertices or pattern.num_edges > target.num_edges:
        return
    seed = seed or {}

    used_targets = set()
    for pv, tv in seed.items():  # noqa: REPRO101 - validation visits every entry; order-free
        if pattern.vertex_label(pv) != target.vertex_label(tv):
            return
        if pattern.degree(pv) > target.degree(tv):
            return
        if tv in used_targets:
            return
        used_targets.add(tv)
    for pv, tv in seed.items():  # noqa: REPRO101 - edge-consistency scan; order-free
        for pw, tw in seed.items():  # noqa: REPRO101 - pairwise check over all entries; order-free
            if pv < pw and pattern.has_edge(pv, pw):
                if not target.has_edge(tv, tw):
                    return
                if pattern.edge_label(pv, pw) != target.edge_label(tv, tw):
                    return

    order = _reference_matching_order(pattern, tuple(seed))

    t_adj = target._adj
    t_labels = target._vlabels
    p_labels = pattern._vlabels

    label_buckets: Dict[object, List[int]] = {}
    for tv, lbl in enumerate(t_labels):
        label_buckets.setdefault(lbl, []).append(tv)

    mapping: Dict[int, int] = dict(seed)
    used = set(seed.values())
    emitted = 0

    earlier_nbrs: List[List[Tuple[int, object]]] = []
    position = {v: i for i, v in enumerate(order)}
    for i, v in enumerate(order):
        earlier_nbrs.append(
            [(w, lbl) for w, lbl in pattern._adj[v].items() if position[w] < i]  # noqa: REPRO101 - all back-edges collected; order-free
        )
    want_labels = [p_labels[v] for v in order]
    want_degrees = [len(pattern._adj[v]) for v in order]

    def candidates(i: int) -> Iterator[int]:
        want_label = want_labels[i]
        want_degree = want_degrees[i]
        anchors = earlier_nbrs[i]
        if anchors:
            aw, albl = anchors[0]
            for tv, tlbl in t_adj[mapping[aw]].items():  # noqa: REPRO101 - candidates re-sorted by the caller's loop order
                if (
                    tv not in used
                    and tlbl == albl
                    and t_labels[tv] == want_label
                    and len(t_adj[tv]) >= want_degree
                ):
                    yield tv
        else:
            for tv in label_buckets.get(want_label, ()):
                if tv not in used and len(t_adj[tv]) >= want_degree:
                    yield tv

    missing = object()

    def feasible(i: int, tv: int) -> bool:
        row = t_adj[tv]
        for pw, lbl in earlier_nbrs[i]:
            if row.get(mapping[pw], missing) != lbl:
                return False
        return True

    start = len(seed)

    def backtrack(i: int) -> Iterator[Dict[int, int]]:
        nonlocal emitted
        if i == pn:
            emitted += 1
            yield dict(mapping)
            return
        pv = order[i]
        for tv in candidates(i):
            if not feasible(i, tv):
                continue
            mapping[pv] = tv
            used.add(tv)
            yield from backtrack(i + 1)
            used.discard(tv)
            del mapping[pv]
            if limit is not None and emitted >= limit:
                return

    yield from backtrack(start)


# ----------------------------------------------------------------------
# comparison helpers
# ----------------------------------------------------------------------
def embedding_set(mappings) -> frozenset:
    return frozenset(tuple(sorted(m.items())) for m in mappings)


def assert_matcher_parity(pattern, target, seed=None):
    """Reference vs new matcher, all three modes, one (pattern, target)."""
    from repro.graphs import subgraph_monomorphisms

    want = embedding_set(_reference_monomorphisms(pattern, target, seed=seed))
    got_fast = embedding_set(subgraph_monomorphisms(pattern, target, seed=seed))
    assert got_fast == want, "prefiltered matcher diverged"
    got_plain = embedding_set(
        subgraph_monomorphisms(pattern, target, seed=seed, prefilter=False)
    )
    assert got_plain == want, "unfiltered matcher diverged"
    token = QueryBudget(verify_steps=GENEROUS).start()
    got_budgeted = embedding_set(
        subgraph_monomorphisms(pattern, target, seed=seed, token=token)
    )
    assert got_budgeted == want, "budgeted matcher diverged"
    assert not token.expired
    return want


def reference_support(db, query) -> frozenset:
    """Brute-force support set via the frozen matcher."""
    return frozenset(
        gid
        for gid in db.graph_ids()
        if any(True for _ in _reference_monomorphisms(query, db[gid], limit=1))
    )


# ----------------------------------------------------------------------
# corpus sweep: matcher-level embedding sets
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kind,seed",
    corpus_params(CHEMICAL_SEEDS, "chemical")
    + corpus_params(SYNTHETIC_SEEDS, "synthetic"),
)
def test_embedding_sets_match_reference(kind, seed):
    db, queries = make_corpus(kind, seed)
    for qi, query in enumerate(queries):
        for gid in db.graph_ids():
            try:
                assert_matcher_parity(query, db[gid])
            except AssertionError as exc:
                raise AssertionError(f"query {qi} vs graph {gid}: {exc}") from exc


@pytest.mark.parametrize(
    "kind,seed",
    corpus_params(CHEMICAL_SEEDS, "chemical")
    + corpus_params(SYNTHETIC_SEEDS, "synthetic"),
)
def test_seeded_embedding_sets_match_reference(kind, seed):
    """Partial-map seeding: anchor each query on its own first embedding."""
    db, queries = make_corpus(kind, seed)
    checked = 0
    for query in queries:
        for gid in db.graph_ids():
            first = next(_reference_monomorphisms(query, db[gid]), None)
            if first is None:
                continue
            items = sorted(first.items())
            # One-vertex anchor and a two-vertex partial map.
            assert_matcher_parity(query, db[gid], seed=dict(items[:1]))
            assert_matcher_parity(query, db[gid], seed=dict(items[:2]))
            checked += 1
            break  # one host graph per query keeps the sweep fast
    assert checked, "corpus produced no embeddable query"


# ----------------------------------------------------------------------
# corpus sweep: engine-level support sets (memory + v3 segments)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kind,seed",
    corpus_params(CHEMICAL_SEEDS, "chemical")
    + corpus_params(SYNTHETIC_SEEDS, "synthetic"),
)
def test_engine_support_sets_match_reference(kind, seed, tmp_path):
    db, queries = make_corpus(kind, seed)
    truth = [reference_support(db, q) for q in queries]

    index = TreePiIndex.build(db, CONFIG)
    save_index(index, tmp_path / "segments", version=3)
    loaded = load_index(tmp_path / "segments")
    assert loaded.segment_backed
    mem = QueryEngine(index, cache_size=0)
    mapped = QueryEngine(loaded, cache_size=0)
    try:
        for engine in (mem, mapped):
            # Singles, unbudgeted then budgeted (generous, non-binding).
            for i, query in enumerate(queries):
                assert engine.query(query).matches == truth[i], f"single {i}"
                budgeted = engine.query(
                    query, budget=QueryBudget(verify_steps=GENEROUS)
                )
                assert budgeted.complete
                assert budgeted.matches == truth[i], f"budgeted single {i}"
            # Batch, unbudgeted then budgeted.
            for i, result in enumerate(engine.query_batch(queries)):
                assert result.matches == truth[i], f"batch {i}"
            batch = engine.query_batch(
                queries, budget=QueryBudget(verify_steps=GENEROUS)
            )
            for i, result in enumerate(batch):
                assert result.complete
                assert result.matches == truth[i], f"budgeted batch {i}"
    finally:
        loaded.segment_store.close()


# ----------------------------------------------------------------------
# pinned edge cases (no corpus statistics to hide behind)
# ----------------------------------------------------------------------
class TestEdgeCases:
    def test_none_edge_labels(self):
        target = LabeledGraph(
            ["a", "b", "a", "b"],
            [(0, 1, None), (1, 2, 1), (2, 3, None), (0, 3, 1)],
        )
        for el in (None, 1):
            pattern = LabeledGraph(["a", "b"], [(0, 1, el)])
            found = assert_matcher_parity(pattern, target)
            assert found  # both labels occur; neither set may be empty

    def test_none_vertex_labels(self):
        target = LabeledGraph([None, "b", None], [(0, 1, 1), (1, 2, 1)])
        pattern = LabeledGraph([None, "b"], [(0, 1, 1)])
        assert len(assert_matcher_parity(pattern, target)) == 2

    def test_disconnected_pattern(self):
        pattern = LabeledGraph(["a", "b", "a", "b"], [(0, 1, 1), (2, 3, 1)])
        target = path_graph(["a", "b", "a", "b"])
        assert len(assert_matcher_parity(pattern, target)) == 2

    def test_disconnected_pattern_with_isolated_vertex(self):
        pattern = LabeledGraph(["a", "b", "c"], [(0, 1, 1)])
        target = LabeledGraph(
            ["a", "b", "c", "c"], [(0, 1, 1), (1, 2, 1), (2, 3, 1)]
        )
        assert len(assert_matcher_parity(pattern, target)) == 2

    def test_disconnected_pattern_seeded_across_components(self):
        pattern = LabeledGraph(["a", "b", "a", "b"], [(0, 1, 1), (2, 3, 1)])
        target = path_graph(["a", "b", "a", "b"])
        assert_matcher_parity(pattern, target, seed={0: 2})
        assert_matcher_parity(pattern, target, seed={0: 0, 2: 2})
        assert_matcher_parity(pattern, target, seed={0: 0, 2: 0})  # collision

    def test_seed_violating_internal_edge(self):
        pattern = path_graph(["a", "a", "a"])
        target = LabeledGraph(["a"] * 4, [(0, 1, 1), (1, 2, 1), (2, 3, 1)])
        # 0 and 3 are not adjacent in the target, but pattern 0-1 is an edge.
        assert assert_matcher_parity(pattern, target, seed={0: 0, 1: 3}) == frozenset()

    def test_triangle_free_target_refutation(self):
        # Parity pruning at work: C3 into C4 (bipartite) is refuted;
        # the reference agrees via exhaustive search.
        triangle = LabeledGraph(["a"] * 3, [(0, 1, 1), (1, 2, 1), (2, 0, 1)])
        square = LabeledGraph(["a"] * 4, [(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)])
        assert assert_matcher_parity(triangle, square) == frozenset()
