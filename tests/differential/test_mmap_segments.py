"""Differential suite: mmap segment engine vs in-memory engine.

For every seeded corpus of the differential sweep, the index is built
once in memory, saved as a v3 segment directory, reopened (cold,
columns unmapped), and both engines answer the full query workload —
singles and ``query_batch``, unbudgeted and budgeted — with bitwise
answer equality required.  Then a scripted insert/delete/flush/compact
interleaving runs against *both* engines and equality is re-checked
after every mutation burst, with :class:`EngineStats` asserting that
the segment-backed engine never fell back to a full rebuild.

The cold-open contract is also pinned here: opening a v3 directory
touches zero posting/center columns.
"""

from __future__ import annotations

import pytest

from repro.core import QueryBudget, QueryEngine, TreePiConfig, TreePiIndex
from repro.datasets import generate_aids_like
from repro.mining import SupportFunction
from repro.persistence import load_index, save_index

from tests.differential.test_answer_sets import (
    CHEMICAL_SEEDS,
    SYNTHETIC_SEEDS,
    corpus_params,
    make_corpus,
)

CONFIG = TreePiConfig(SupportFunction(alpha=2, beta=2.0, eta=4), seed=5)


def _open_pair(db, tmp_path, cache_size=8):
    """Build in memory, save v3, reopen cold; return both engines."""
    index = TreePiIndex.build(db, CONFIG)
    root = tmp_path / "segments"
    save_index(index, root, version=3)
    loaded = load_index(root)
    assert loaded.segment_store.columns_touched() == 0  # cold-open gate
    assert loaded.segment_backed and not index.segment_backed
    mem = QueryEngine(index, cache_size=cache_size)
    mapped = QueryEngine(loaded, cache_size=cache_size)
    return mem, mapped, loaded


def _assert_parity(mem, mapped, queries):
    """Singles + batch, unbudgeted + budgeted: answers must be equal."""
    for i, query in enumerate(queries):
        want = mem.query(query).matches
        assert mapped.query(query).matches == want, f"single diverged on {i}"
    got = mapped.query_batch(queries)
    want = mem.query_batch(queries)
    for i, (a, b) in enumerate(zip(want, got)):
        assert a.matches == b.matches, f"batch diverged on {i}"
    # Budgeted traffic: a generous work cap keeps the answers complete,
    # so degradation soundness never masks an inequality.
    budget = QueryBudget(verify_steps=10_000_000)
    for i, query in enumerate(queries):
        a = mem.query(query, budget=QueryBudget(verify_steps=10_000_000))
        b = mapped.query(query, budget=budget)
        assert a.complete and b.complete
        assert a.matches == b.matches, f"budgeted single diverged on {i}"
    got = mapped.query_batch(queries, budget=QueryBudget(verify_steps=10_000_000))
    want = mem.query_batch(queries, budget=QueryBudget(verify_steps=10_000_000))
    for i, (a, b) in enumerate(zip(want, got)):
        assert a.complete and b.complete
        assert a.matches == b.matches, f"budgeted batch diverged on {i}"


@pytest.mark.parametrize(
    "kind,seed",
    corpus_params(CHEMICAL_SEEDS, "chemical")
    + corpus_params(SYNTHETIC_SEEDS, "synthetic"),
)
def test_mmap_engine_answers_match(kind, seed, tmp_path):
    db, queries = make_corpus(kind, seed)
    mem, mapped, loaded = _open_pair(db, tmp_path)
    try:
        _assert_parity(mem, mapped, queries)
        assert mapped.stats.rebuilds == 0
    finally:
        loaded.segment_store.close()


@pytest.mark.parametrize(
    "kind,seed",
    [
        pytest.param("chemical", CHEMICAL_SEEDS[0], id="chemical"),
        pytest.param("synthetic", SYNTHETIC_SEEDS[0], id="synthetic"),
    ],
)
def test_mmap_engine_parity_through_maintenance(kind, seed, tmp_path):
    """Insert/delete/flush/compact interleaving, equality after each burst."""
    db, queries = make_corpus(kind, seed)
    mem, mapped, loaded = _open_pair(db, tmp_path)
    store = loaded.segment_store
    try:
        extra = generate_aids_like(9, avg_atoms=10, seed=seed + 1000)
        extra_graphs = [extra[g] for g in extra.graph_ids()]

        # Burst 1: inserts only.
        for graph in extra_graphs[:3]:
            a = mem.insert(graph)
            b = mapped.insert(graph)
            assert a == b
        _assert_parity(mem, mapped, queries)

        # Burst 2: deletes (one original, one fresh) + forced flush.
        victims = [sorted(db.graph_ids())[0], mem.graph_ids()[-1]]
        for gid in victims:
            mem.delete(gid)
            mapped.delete(gid)
        mapped.flush()
        _assert_parity(mem, mapped, queries)

        # Burst 3: reinsert after delete, more inserts, then compact.
        for graph in extra_graphs[3:6]:
            assert mem.insert(graph) == mapped.insert(graph)
        mapped.flush()
        assert store.segment_count > 1
        assert mapped.compact()
        assert store.segment_count == 1
        assert store.tombstones == {}
        _assert_parity(mem, mapped, queries)

        # Burst 4: maintenance after compaction still agrees.
        for graph in extra_graphs[6:]:
            assert mem.insert(graph) == mapped.insert(graph)
        gid = mem.graph_ids()[2]
        mem.delete(gid)
        mapped.delete(gid)
        _assert_parity(mem, mapped, queries)

        # The segment engine never fell back to a full rebuild.
        stats = mapped.stats
        assert stats.rebuilds == 0
        assert stats.inserts == 9 and stats.deletes == 3
        assert not loaded.needs_rebuild()
        # Persist burst 4 (memtable + tombstone) before the reopen check.
        mapped.flush()
    finally:
        store.close()

    # And the final state survives a cold reopen.
    reopened = load_index(tmp_path / "segments")
    try:
        fresh = QueryEngine(reopened)
        for query in queries:
            assert fresh.query(query).matches == mem.query(query).matches
    finally:
        reopened.segment_store.close()
