"""Regenerate the frozen differential corpus under ``data/``.

Run from the repo root::

    PYTHONPATH=src:tests python tests/differential/freeze.py

Only rerun this when the corpus *should* change (e.g. a deliberate
generator overhaul) — the whole point of the frozen files is that
``test_frozen_corpus_answers`` fails when answers drift unintentionally.
"""

from __future__ import annotations

import json

from repro.baselines.scan import SequentialScan
from repro.graphs import GraphDatabase, save_database

try:  # imported as a module (pytest: tests.differential.freeze)
    from tests.differential.test_answer_sets import DATA_DIR, make_corpus
except ImportError:  # run as a script with PYTHONPATH=src:tests
    from differential.test_answer_sets import DATA_DIR, make_corpus

FROZEN_KIND = "chemical"
FROZEN_SEED = 999

#: Shard counts the sharded differential suite replays against the same
#: frozen corpus, and the router seed fixing every shard layout.  Kept
#: in the metadata (not hard-coded in two suites) so the single-engine
#: and sharded suites can never drift onto different parameterizations.
FROZEN_SHARD_COUNTS = [1, 2, 4, 8]
FROZEN_ROUTER_SEED = 2007


def main() -> None:
    db, queries = make_corpus(FROZEN_KIND, FROZEN_SEED)
    scan = SequentialScan(db)
    answers = [sorted(scan.support_set(q)) for q in queries]
    DATA_DIR.mkdir(exist_ok=True)
    save_database(db, DATA_DIR / "corpus.txt")
    save_database(GraphDatabase(queries), DATA_DIR / "queries.txt")
    (DATA_DIR / "expected_answers.json").write_text(
        json.dumps(
            {
                "kind": FROZEN_KIND,
                "seed": FROZEN_SEED,
                "shard_counts": FROZEN_SHARD_COUNTS,
                "router_seed": FROZEN_ROUTER_SEED,
                "answers": answers,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"froze {len(db)} graphs, {len(queries)} queries -> {DATA_DIR}")


if __name__ == "__main__":
    main()
