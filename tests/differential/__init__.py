"""Differential testing: every engine must return the same answer set."""
