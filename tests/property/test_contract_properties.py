"""Property test: canonical strings are relabeling-invariant, with the
runtime contracts enabled so the wired checks run alongside.

This is the Section 4.2.2 invariant driven by hypothesis rather than the
fixed seeded permutations the contract checker uses internally: for any
random labeled tree and any permutation of its vertices, the canonical
string is unchanged — and the wired contract machinery itself stays
silent on correct implementations.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import contract_scope
from repro.trees.canonical import tree_canonical_string
from repro.trees.center import tree_center

from tests.property.strategies import labeled_trees


@st.composite
def tree_and_permutation(draw):
    tree = draw(labeled_trees(min_vertices=1, max_vertices=8))
    perm = draw(st.permutations(list(range(tree.num_vertices))))
    return tree, list(perm)


@given(tree_and_permutation())
@settings(max_examples=60, deadline=None)
def test_canonical_string_invariant_under_relabeling(tp):
    tree, perm = tp
    with contract_scope():
        assert tree_canonical_string(tree) == tree_canonical_string(
            tree.relabeled(perm)
        )


@given(tree_and_permutation())
@settings(max_examples=60, deadline=None)
def test_center_maps_through_relabeling(tp):
    tree, perm = tp
    with contract_scope():
        center = tree_center(tree)
        relabeled_center = tree_center(tree.relabeled(perm))
    assert tuple(sorted(perm[v] for v in center)) == relabeled_center
