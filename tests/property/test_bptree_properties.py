"""Property-based tests for the B+-tree against a dict oracle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BPlusTree

keys = st.text(alphabet="abcdef", min_size=0, max_size=6)
ops = st.lists(
    st.tuples(st.sampled_from(["insert", "remove", "get"]), keys,
              st.integers(0, 99)),
    max_size=80,
)


@given(ops, st.integers(3, 8))
@settings(max_examples=60, deadline=None)
def test_matches_dict_oracle(operations, order):
    tree = BPlusTree(order=order)
    oracle = {}
    for op, key, value in operations:
        if op == "insert":
            tree.insert(key, value)
            oracle[key] = value
        elif op == "remove":
            assert tree.remove(key) == (key in oracle)
            oracle.pop(key, None)
        else:
            assert tree.get(key) == oracle.get(key)
    assert len(tree) == len(oracle)
    assert list(tree.keys()) == sorted(oracle)
    tree.check_invariants()


@given(st.lists(st.tuples(keys, st.integers(0, 9)), max_size=60),
       keys, keys)
@settings(max_examples=60, deadline=None)
def test_range_scan_matches_oracle(entries, low, high):
    if low > high:
        low, high = high, low
    tree = BPlusTree(order=4)
    oracle = {}
    for key, value in entries:
        tree.insert(key, value)
        oracle[key] = value
    expected = sorted(
        (k, v) for k, v in oracle.items() if low <= k < high
    )
    assert list(tree.range(low, high)) == expected


@given(st.lists(keys, max_size=50), keys)
@settings(max_examples=60, deadline=None)
def test_prefix_scan_matches_oracle(inserted, prefix):
    tree = BPlusTree(order=5)
    for i, key in enumerate(inserted):
        tree.insert(key, i)
    got = [k for k, _ in tree.items_with_prefix(prefix)]
    expected = sorted({k for k in inserted if k.startswith(prefix)})
    assert got == expected
