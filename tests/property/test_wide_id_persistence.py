"""Wide graph ids (> 2^32) survive every persistence format.

The id columns start as ``array('I')`` and widen to ``'Q'`` the moment
any value exceeds 32 bits (:func:`repro.storage.posting.id_array`).
Graph ids flow through three serialized shapes — the v2 JSON document,
the v3 segment columns, and the v3 *delta* segments written by flush —
and a truncation bug in any of them would silently corrupt answers, so
these properties pin the full round trip with ids straddling the
2^32 boundary (forcing mixed-width splices and delta-encoded center
blocks whose leading coordinates stay modest while gids are huge).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TreePiConfig, TreePiIndex
from repro.graphs import GraphDatabase
from repro.mining import SupportFunction
from repro.persistence import index_from_json, index_to_json, load_index, save_index
from repro.storage.occurrences import OccurrenceStore

from tests.property.strategies import connected_graphs

WIDE = 1 << 32  # first id that no longer fits array('I')


@st.composite
def wide_id_database(draw):
    """A small database whose graph ids straddle the 2^32 boundary."""
    graphs = draw(
        st.lists(
            connected_graphs(min_vertices=3, max_vertices=6),
            min_size=3,
            max_size=6,
        )
    )
    offsets = draw(
        st.lists(
            st.integers(0, 1 << 20),
            min_size=len(graphs),
            max_size=len(graphs),
            unique=True,
        )
    )
    db = GraphDatabase()
    for i, (graph, off) in enumerate(zip(graphs, offsets)):
        # Even positions stay narrow, odd positions go past 2^32, so
        # every id column mixes widths and must widen to 'Q'.
        base = WIDE + off if i % 2 else off
        db.add(graph.copy(), graph_id=base)
    return db


def _build(db):
    config = TreePiConfig(
        SupportFunction(alpha=2, beta=2.0, eta=3), gamma=1.2, seed=3
    )
    return TreePiIndex.build(db, config)


def _assert_same_answers(a, b):
    assert sorted(a.database.graph_ids()) == sorted(b.database.graph_ids())
    assert len(a.features) == len(b.features)
    for fa, fb in zip(a.features, b.features):
        assert fa.key == fb.key
        assert fa.support_set() == fb.support_set()
        assert fa.store.to_mapping() == fb.store.to_mapping()


@given(wide_id_database())
@settings(max_examples=15, deadline=None)
def test_wide_ids_round_trip_v2_json(db):
    index = _build(db)
    doc = index_to_json(index)
    loaded = index_from_json(doc)
    _assert_same_answers(index, loaded)
    assert any(gid >= WIDE for gid in loaded.database.graph_ids())


@given(db=wide_id_database())
@settings(max_examples=10, deadline=None)
def test_wide_ids_round_trip_v3_segments(tmp_path_factory, db):
    index = _build(db)
    root = tmp_path_factory.mktemp("wide") / "idx"
    save_index(index, root, version=3)
    loaded = load_index(root)
    try:
        _assert_same_answers(index, loaded)
        assert any(gid >= WIDE for gid in loaded.database.graph_ids())
    finally:
        loaded.segment_store.close()


def test_wide_ids_survive_delta_flush_and_compaction(tmp_path):
    """Inserts with ids past 2^32 flow through memtable -> delta -> base."""
    from repro.datasets import generate_aids_like

    src = generate_aids_like(8, avg_atoms=10, seed=11)
    db = GraphDatabase()
    for i, gid in enumerate(src.graph_ids()):
        db.add(src[gid], graph_id=(WIDE + i if i % 2 else i))
    index = _build(db)
    root = tmp_path / "idx"
    save_index(index, root, version=3)
    loaded = load_index(root)
    store = loaded.segment_store
    try:
        extra = generate_aids_like(3, avg_atoms=8, seed=23)
        new_ids = []
        for j, gid in enumerate(extra.graph_ids()):
            new_ids.append(
                loaded.insert(extra[gid], graph_id=WIDE + (1 << 16) + j)
            )
        victim = sorted(db.graph_ids())[-1]  # a wide id
        assert victim >= WIDE
        loaded.delete(victim)
        assert loaded.flush_segments()
        assert store.segment_count == 2  # base + one delta
        plan = loaded.prepare_compaction()
        assert plan is not None
        loaded.commit_compaction(plan)
        assert store.segment_count == 1
    finally:
        store.close()
    reopened = load_index(root)
    try:
        ids = set(reopened.database.graph_ids())
        assert set(new_ids) <= ids
        assert victim not in ids
        for feature in reopened.features:
            mapping = feature.store.to_mapping()
            assert victim not in mapping
            # Delta-encoded center blocks decode exactly for wide gids.
            for gid, centers in mapping.items():
                assert centers == feature.centers_in(gid)
    finally:
        reopened.segment_store.close()


def test_occurrence_store_widens_past_32_bits():
    """The columnar codec itself holds wide gids (the unit-level pin)."""
    store = OccurrenceStore.from_mapping(
        1, {5: [(1,), (4,)], WIDE + 9: [(2,)]}
    )
    assert list(store.graph_ids()) == [5, WIDE + 9]
    assert store.centers_in(WIDE + 9) == frozenset({(2,)})
    gids, offsets, centers = store.columns()
    rebuilt = OccurrenceStore.from_columns(1, gids, offsets, centers)
    assert rebuilt == store
    # splicing a narrow block into the widened column keeps 'Q'
    store.add_graph(7, [(3,)])
    assert list(store.graph_ids()) == [5, 7, WIDE + 9]
    assert store.centers_in(7) == frozenset({(3,)})
