"""Property-based tests for the matcher, cross-checked against networkx."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st
from networkx.algorithms import isomorphism as nxiso

from repro.graphs import (
    are_isomorphic,
    automorphisms,
    canonical_label,
    is_subgraph_isomorphic,
    subgraph_monomorphisms,
    to_networkx,
)

from tests.property.strategies import connected_graphs, labeled_trees


def nx_monomorphism_exists(pattern, target):
    gm = nxiso.GraphMatcher(
        to_networkx(target),
        to_networkx(pattern),
        node_match=lambda a, b: a["label"] == b["label"],
        edge_match=lambda a, b: a["label"] == b["label"],
    )
    return gm.subgraph_is_monomorphic()


@given(connected_graphs(max_vertices=6), connected_graphs(max_vertices=7))
@settings(max_examples=60, deadline=None)
def test_subgraph_isomorphism_matches_networkx(pattern, target):
    assert is_subgraph_isomorphic(pattern, target) == nx_monomorphism_exists(
        pattern, target
    )


@given(connected_graphs(max_vertices=7), st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_relabeling_preserves_isomorphism_and_label(graph, rnd):
    perm = list(range(graph.num_vertices))
    rnd.shuffle(perm)
    relabeled = graph.relabeled(perm)
    assert are_isomorphic(graph, relabeled)
    assert canonical_label(graph) == canonical_label(relabeled)


@given(connected_graphs(max_vertices=6), connected_graphs(max_vertices=6))
@settings(max_examples=60, deadline=None)
def test_canonical_label_equality_iff_isomorphic(g1, g2):
    assert (canonical_label(g1) == canonical_label(g2)) == are_isomorphic(g1, g2)


@given(connected_graphs(max_vertices=6), connected_graphs(max_vertices=7))
@settings(max_examples=40, deadline=None)
def test_every_monomorphism_is_valid(pattern, target):
    for mapping in subgraph_monomorphisms(pattern, target, limit=20):
        assert len(set(mapping.values())) == len(mapping)
        for pv in pattern.vertices():
            assert pattern.vertex_label(pv) == target.vertex_label(mapping[pv])
        for u, v, label in pattern.edges():
            assert target.has_edge(mapping[u], mapping[v])
            assert target.edge_label(mapping[u], mapping[v]) == label


@given(labeled_trees(min_vertices=2, max_vertices=7))
@settings(max_examples=40, deadline=None)
def test_automorphisms_form_a_group(tree):
    auts = [tuple(a[v] for v in tree.vertices()) for a in automorphisms(tree)]
    aut_set = set(auts)
    identity = tuple(tree.vertices())
    assert identity in aut_set
    # Closure under composition and inverse.
    for a in auts:
        inverse = tuple(sorted(range(len(a)), key=lambda v: a[v]))
        assert inverse in aut_set
        for b in auts:
            composed = tuple(a[b[v]] for v in tree.vertices())
            assert composed in aut_set
