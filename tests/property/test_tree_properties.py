"""Property-based tests for the tree substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import bfs_distances, eccentricity
from repro.trees import tree_canonical_string, tree_center

from tests.property.strategies import labeled_trees


@given(labeled_trees())
@settings(max_examples=80, deadline=None)
def test_center_is_one_vertex_or_an_edge(tree):
    """Theorem 1: the center is a single vertex or two adjacent vertices."""
    center = tree_center(tree)
    assert len(center) in (1, 2)
    if len(center) == 2:
        assert tree.has_edge(*center)


@given(labeled_trees(min_vertices=2))
@settings(max_examples=80, deadline=None)
def test_center_minimizes_eccentricity(tree):
    """Center vertices achieve the minimum eccentricity (tree radius)."""
    eccentricities = {v: eccentricity(tree, v) for v in tree.vertices()}
    radius = min(eccentricities.values())
    for c in tree_center(tree):
        assert eccentricities[c] == radius
    # ... and no non-center vertex beats them.
    center = set(tree_center(tree))
    for v, ecc in eccentricities.items():
        if ecc == radius:
            assert v in center


@given(labeled_trees(), st.randoms(use_true_random=False))
@settings(max_examples=80, deadline=None)
def test_canonical_string_invariant_under_relabeling(tree, rnd):
    perm = list(range(tree.num_vertices))
    rnd.shuffle(perm)
    relabeled = tree.relabeled(perm)
    assert tree_canonical_string(relabeled) == tree_canonical_string(tree)


@given(labeled_trees(), st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_center_maps_through_relabeling(tree, rnd):
    perm = list(range(tree.num_vertices))
    rnd.shuffle(perm)
    relabeled = tree.relabeled(perm)
    expected = tuple(sorted(perm[v] for v in tree_center(tree)))
    assert tree_center(relabeled) == expected


@given(labeled_trees(min_vertices=2), labeled_trees(min_vertices=2))
@settings(max_examples=80, deadline=None)
def test_canonical_equality_matches_isomorphism(t1, t2):
    """Canonical strings are a perfect isomorphism invariant for trees."""
    from repro.graphs import are_isomorphic

    assert (tree_canonical_string(t1) == tree_canonical_string(t2)) == (
        are_isomorphic(t1, t2)
    )
