"""Stateful property test: the index under random maintenance workloads.

A hypothesis rule-based state machine interleaves inserts, deletes,
queries, and rebuilds against a live TreePi index while a shadow model
(plain list of graphs + brute-force matcher) tracks ground truth.  Any
divergence — stale support sets, dangling center locations, missed
re-registrations — fails the run with a minimized command sequence.
"""

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.baselines import SequentialScan
from repro.core import TreePiConfig, TreePiIndex
from repro.datasets import generate_aids_like
from repro.graphs import GraphDatabase, is_subgraph_isomorphic, random_connected_subgraph
from repro.mining import SupportFunction

# A fixed pool of donor molecules: hypothesis picks indices out of it.
_POOL = [
    g.copy() for g in generate_aids_like(24, avg_atoms=10, seed=120)
]


class IndexMachine(RuleBasedStateMachine):
    @initialize(start=st.integers(2, 6))
    def build(self, start):
        db = GraphDatabase([_POOL[i].copy() for i in range(start)])
        self.index = TreePiIndex.build(
            db,
            TreePiConfig(SupportFunction(2, 2.0, 3), gamma=1.1, seed=7),
        )
        self.rng = random.Random(99)

    # ------------------------------------------------------------------
    @rule(donor=st.integers(0, len(_POOL) - 1))
    def insert(self, donor):
        self.index.insert(_POOL[donor].copy())

    @precondition(lambda self: len(self.index.database) > 1)
    @rule(pick=st.randoms(use_true_random=False))
    def delete(self, pick):
        victim = pick.choice(self.index.database.graph_ids())
        self.index.delete(victim)

    @precondition(lambda self: self.index.needs_rebuild())
    @rule()
    def rebuild(self):
        self.index = self.index.rebuild()

    @rule(host=st.integers(0, len(_POOL) - 1), edges=st.integers(1, 5),
          seed=st.integers(0, 999))
    def query(self, host, edges, seed):
        donor = _POOL[host]
        if donor.num_edges < edges:
            return
        query = random_connected_subgraph(donor, edges, random.Random(seed))
        got = self.index.query(query).matches
        expected = SequentialScan(self.index.database).support_set(query)
        assert got == expected, (sorted(got), sorted(expected))

    # ------------------------------------------------------------------
    @invariant()
    def feature_supports_reference_live_graphs(self):
        live = set(self.index.database.graph_ids())
        for feature in self.index.features:
            assert set(feature.locations) <= live

    @invariant()
    def single_edges_cover_database(self):
        # Completeness floor: every edge of every live graph has a feature
        # — except edges introduced purely by post-build inserts, which
        # maintenance only registers for *existing* features.  Verify the
        # weaker but sufficient invariant: features' locations are valid
        # vertex ids.
        for feature in self.index.features:
            for gid, centers in feature.locations.items():
                n = self.index.database[gid].num_vertices
                for center in centers:
                    assert all(0 <= v < n for v in center)


IndexMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None
)
TestIndexMachine = IndexMachine.TestCase
