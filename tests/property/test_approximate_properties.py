"""Property-based tests for the relaxed-query engine."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.approximate import RelaxedQueryEngine, relaxed_patterns
from repro.core import TreePiConfig, TreePiIndex
from repro.graphs import GraphDatabase, random_connected_subgraph
from repro.mining import SupportFunction

from tests.property.strategies import connected_graphs


@st.composite
def engine_and_query(draw):
    graphs = draw(
        st.lists(connected_graphs(min_vertices=3, max_vertices=6), min_size=2,
                 max_size=4)
    )
    db = GraphDatabase([g.copy() for g in graphs])
    index = TreePiIndex.build(
        db, TreePiConfig(SupportFunction(2, 2.0, 3), gamma=1.1, seed=1)
    )
    host = graphs[draw(st.integers(0, len(graphs) - 1))]
    m = draw(st.integers(2, max(2, min(4, host.num_edges))))
    query = random_connected_subgraph(
        host, min(m, host.num_edges), random.Random(draw(st.integers(0, 99)))
    )
    return RelaxedQueryEngine(index), query


@given(engine_and_query())
@settings(max_examples=25, deadline=None)
def test_relaxation_monotone_and_levels_consistent(data):
    engine, query = data
    k = min(2, query.num_edges - 1)
    answers = engine.query(query, k)
    exact = engine.query(query, 0)
    # Level-0 hits agree with the exact engine and carry level 0.
    assert {g for g, lvl in answers.items() if lvl == 0} == set(exact)
    # Levels never exceed the cap and shrink monotonically with k.
    assert all(0 <= lvl <= k for lvl in answers.values())
    for smaller in range(k):
        subset = engine.query(query, smaller)
        assert set(subset) <= set(answers)
        for gid, lvl in subset.items():
            assert answers[gid] == lvl


@given(connected_graphs(min_vertices=3, max_vertices=7))
@settings(max_examples=40, deadline=None)
def test_relaxed_patterns_cover_every_deletion(query):
    if query.num_edges < 2:
        return
    patterns = relaxed_patterns(query, 1)
    # Each pattern has exactly |E|-1 edges and no isolated vertices.
    for pattern, _ in patterns:
        assert pattern.num_edges == query.num_edges - 1
        assert all(pattern.degree(v) >= 1 for v in pattern.vertices())
    # Dedup never produces more patterns than deletions.
    assert 1 <= len(patterns) <= query.num_edges
