"""Hypothesis strategies for random labeled graphs and trees."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graphs import LabeledGraph

VERTEX_LABELS = ("a", "b", "c")
EDGE_LABELS = (1, 2)


@st.composite
def labeled_trees(draw, min_vertices=1, max_vertices=9):
    """A uniformly-shaped random labeled tree (Prüfer-ish attachment)."""
    n = draw(st.integers(min_vertices, max_vertices))
    labels = [draw(st.sampled_from(VERTEX_LABELS)) for _ in range(n)]
    tree = LabeledGraph(labels)
    for v in range(1, n):
        parent = draw(st.integers(0, v - 1))
        tree.add_edge(v, parent, draw(st.sampled_from(EDGE_LABELS)))
    return tree


@st.composite
def connected_graphs(draw, min_vertices=2, max_vertices=8, max_extra_edges=3):
    """A random connected labeled graph: a tree plus a few chords."""
    graph = draw(labeled_trees(min_vertices, max_vertices))
    n = graph.num_vertices
    extra = draw(st.integers(0, max_extra_edges))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, draw(st.sampled_from(EDGE_LABELS)))
    return graph


@st.composite
def permutations_of(draw, n):
    return draw(st.permutations(list(range(n))))
