"""Property-based tests for pipeline components beyond the index itself."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run_partitions
from repro.graphs import (
    GraphDatabase,
    dumps_database,
    edge_key,
    loads_database,
)
from repro.trees import tree_canonical_string

from tests.property.strategies import connected_graphs, labeled_trees


@given(connected_graphs(min_vertices=2, max_vertices=8), st.integers(0, 1000))
@settings(max_examples=50, deadline=None)
def test_partition_always_covers_query(query, seed):
    """Any partition covers every edge exactly once with tree pieces."""
    rng = random.Random(seed)
    # Randomly decide which canonical strings count as features.
    feature_coin = random.Random(seed + 1)
    known = {}

    def is_feature(key):
        if key not in known:
            known[key] = feature_coin.random() < 0.5
        return known[key]

    run = run_partitions(query, is_feature, delta=3, rng=rng)
    covered = sorted(e for p in run.best.pieces for e in p.edges)
    assert covered == sorted(edge_key(u, v) for u, v, _ in query.edges())
    for piece in run.best.pieces:
        assert piece.tree.is_tree()
        assert piece.size == 1 or is_feature(piece.key)


@given(connected_graphs(min_vertices=2, max_vertices=8), st.integers(0, 1000))
@settings(max_examples=50, deadline=None)
def test_partition_pieces_consistent_with_query(query, seed):
    """Piece-local trees mirror the query's labels through to_query."""
    rng = random.Random(seed)
    run = run_partitions(query, lambda key: True, delta=2, rng=rng)
    for piece in run.best.pieces:
        assert tree_canonical_string(piece.tree) == piece.key
        for pv, qv in piece.to_query.items():
            assert piece.tree.vertex_label(pv) == query.vertex_label(qv)
        for u, v, label in piece.tree.edges():
            qu, qv = piece.to_query[u], piece.to_query[v]
            assert query.has_edge(qu, qv)
            assert query.edge_label(qu, qv) == label


@given(st.lists(connected_graphs(max_vertices=7), min_size=1, max_size=5))
@settings(max_examples=50, deadline=None)
def test_serialization_roundtrip(graphs):
    """gSpan text round-trips any database of labeled graphs."""
    db = GraphDatabase([g.copy() for g in graphs])
    restored = loads_database(dumps_database(db))
    assert len(restored) == len(db)
    for gid in db.graph_ids():
        assert restored[gid].structure_equal(db[gid])


@given(labeled_trees(min_vertices=2, max_vertices=8))
@settings(max_examples=50, deadline=None)
def test_persistence_graph_roundtrip(tree):
    """The JSON graph encoding round-trips arbitrary labeled trees."""
    from repro.persistence import graph_from_json, graph_to_json

    assert graph_from_json(graph_to_json(tree)).structure_equal(tree)
