"""Property-based tests for the directed extension's reduction theorem."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.directed import (
    DirectedLabeledGraph,
    is_directed_subgraph_isomorphic,
    subdivide,
)
from repro.graphs import is_subgraph_isomorphic


@st.composite
def digraphs(draw, min_vertices=2, max_vertices=6):
    n = draw(st.integers(min_vertices, max_vertices))
    labels = [draw(st.sampled_from("abc")) for _ in range(n)]
    g = DirectedLabeledGraph(labels)
    for v in range(1, n):
        parent = draw(st.integers(0, v - 1))
        if draw(st.booleans()):
            g.add_edge(parent, v, draw(st.sampled_from([1, 2])))
        else:
            g.add_edge(v, parent, draw(st.sampled_from([1, 2])))
    extra = draw(st.integers(0, 2))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, draw(st.sampled_from([1, 2])))
    return g


@given(digraphs(max_vertices=5), digraphs(max_vertices=6))
@settings(max_examples=50, deadline=None)
def test_reduction_theorem(pattern, target):
    """Directed containment iff undirected containment of subdivisions."""
    direct = is_directed_subgraph_isomorphic(pattern, target)
    reduced = is_subgraph_isomorphic(subdivide(pattern), subdivide(target))
    assert direct == reduced


@given(digraphs(), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_subdivision_commutes_with_relabeling(g, rnd):
    """Subdividing a relabeled digraph is isomorphic to the subdivision."""
    from repro.graphs import are_isomorphic

    perm = list(range(g.num_vertices))
    rnd.shuffle(perm)
    assert are_isomorphic(subdivide(g), subdivide(g.relabeled(perm)))


@given(digraphs())
@settings(max_examples=40, deadline=None)
def test_subdivision_shape(g):
    """Vertex/edge counts and degree structure of the encoding."""
    skeleton = subdivide(g)
    assert skeleton.num_vertices == g.num_vertices + g.num_edges
    assert skeleton.num_edges == 2 * g.num_edges
    # Every midpoint has degree exactly 2; real vertices keep total degree.
    for v in range(g.num_vertices, skeleton.num_vertices):
        assert skeleton.degree(v) == 2
    for v in range(g.num_vertices):
        assert skeleton.degree(v) == g.degree(v)
