"""Property-based tests for the full TreePi index.

The hypothesis harness builds small random databases and random connected
queries and checks the end-to-end contract against brute force; this is
the strongest guard against subtle completeness bugs in filtering, center
pruning, or reconstruction.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import SequentialScan
from repro.core import TreePiConfig, TreePiIndex
from repro.graphs import GraphDatabase, random_connected_subgraph
from repro.mining import SupportFunction

from tests.property.strategies import connected_graphs


@st.composite
def database_and_query(draw):
    graphs = draw(
        st.lists(connected_graphs(min_vertices=3, max_vertices=7), min_size=3, max_size=7)
    )
    db = GraphDatabase([g.copy() for g in graphs])
    host = graphs[draw(st.integers(0, len(graphs) - 1))]
    m = draw(st.integers(1, max(1, min(5, host.num_edges))))
    seed = draw(st.integers(0, 10_000))
    query = random_connected_subgraph(host, m, random.Random(seed))
    return db, query


@given(database_and_query(), st.sampled_from([1.0, 1.2, 2.0]))
@settings(max_examples=40, deadline=None)
def test_query_equals_brute_force(db_query, gamma):
    db, query = db_query
    config = TreePiConfig(
        SupportFunction(alpha=2, beta=2.0, eta=3), gamma=gamma, seed=3
    )
    index = TreePiIndex.build(db, config)
    scan = SequentialScan(db)
    assert index.query(query).matches == scan.support_set(query)


@given(database_and_query(), st.sampled_from([1.0, 1.3]))
@settings(max_examples=40, deadline=None)
def test_reconstruction_verifier_equals_brute_force(db_query, gamma):
    """Force the paper's reconstruction verifier on every query size."""
    db, query = db_query
    config = TreePiConfig(
        SupportFunction(alpha=2, beta=2.0, eta=3),
        gamma=gamma,
        direct_verification_max_edges=0,  # never fall back to plain matching
        seed=8,
    )
    index = TreePiIndex.build(db, config)
    scan = SequentialScan(db)
    assert index.query(query).matches == scan.support_set(query)


@given(database_and_query())
@settings(max_examples=25, deadline=None)
def test_center_prune_toggle_equivalence(db_query):
    """Center pruning must never change answers, only candidate counts."""
    db, query = db_query
    base = dict(support=SupportFunction(2, 2.0, 3), gamma=1.1, seed=4)
    on = TreePiIndex.build(db, TreePiConfig(enable_center_prune=True, **base))
    off = TreePiIndex.build(db, TreePiConfig(enable_center_prune=False, **base))
    assert on.query(query).matches == off.query(query).matches


@given(database_and_query())
@settings(max_examples=25, deadline=None)
def test_insert_then_query_consistent(db_query):
    """Inserting the query's host graph can only add that graph's id."""
    db, query = db_query
    config = TreePiConfig(SupportFunction(2, 2.0, 3), gamma=1.0, seed=5)
    index = TreePiIndex.build(db, config)
    before = index.query(query).matches
    donor = db[db.graph_ids()[0]].copy()
    new_id = index.insert(donor)
    after = index.query(query).matches
    assert before <= after
    assert after - before <= {new_id}
