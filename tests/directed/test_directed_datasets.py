"""Unit tests for the XML-like directed dataset generator."""

import random

import pytest

from repro.directed import (
    DirectedGraphDatabase,
    DirectedLabeledGraph,
    extract_directed_query,
    generate_document,
    generate_xml_like,
)
from repro.directed.datasets import ATTRIBUTE_TAGS, CHILD, ELEMENT_TAGS
from repro.exceptions import GraphError


class TestGenerateDocument:
    def test_rooted_at_article(self, rng):
        doc = generate_document(rng, 8)
        assert doc.vertex_label(0) == "article"
        assert doc.in_degree(0) == 0 or any(
            label == "ref" for _, label in doc.in_items(0)
        )

    def test_tags_from_vocabulary(self, rng):
        doc = generate_document(rng, 10)
        allowed = set(ELEMENT_TAGS) | set(ATTRIBUTE_TAGS)
        assert set(doc.vertex_labels()) <= allowed

    def test_child_edges_form_tree_backbone(self, rng):
        doc = generate_document(rng, 12)
        # Every non-root element has exactly one incoming child edge.
        for v in doc.vertices():
            child_parents = [
                u for u, label in doc.in_items(v) if label == CHILD
            ]
            assert len(child_parents) <= 1

    def test_weakly_connected(self, rng):
        for _ in range(5):
            assert generate_document(rng, 9).is_weakly_connected()


class TestGenerateXmlLike:
    def test_count_and_determinism(self):
        a = generate_xml_like(6, avg_elements=7, seed=2)
        b = generate_xml_like(6, avg_elements=7, seed=2)
        assert len(a) == 6
        for gid in a.graph_ids():
            assert a[gid].structure_equal(b[gid])

    def test_minimum_size(self):
        db = generate_xml_like(5, avg_elements=4, seed=3)
        assert all(g.num_edges >= 2 for g in db)


class TestExtractDirectedQuery:
    @pytest.fixture(scope="class")
    def db(self):
        return generate_xml_like(10, avg_elements=9, seed=4)

    def test_query_shape(self, db, rng):
        for m in (1, 2, 3):
            q = extract_directed_query(db, m, rng)
            assert q.num_edges == m
            assert q.is_weakly_connected()

    def test_query_actually_occurs(self, db, rng):
        from repro.directed import is_directed_subgraph_isomorphic

        for _ in range(5):
            q = extract_directed_query(db, 2, rng)
            assert any(is_directed_subgraph_isomorphic(q, g) for g in db)

    def test_oversized_request_rejected(self, db, rng):
        with pytest.raises(GraphError):
            extract_directed_query(db, 10_000, rng)

    def test_empty_database(self, rng):
        with pytest.raises(GraphError):
            extract_directed_query(DirectedGraphDatabase(), 2, rng)
