"""Unit tests for the directed matcher, cross-checked against networkx."""

import random

import pytest

from repro.directed import (
    DirectedLabeledGraph,
    directed_isomorphic,
    directed_monomorphisms,
    is_directed_subgraph_isomorphic,
)


def to_networkx(g):
    import networkx as nx

    nxg = nx.DiGraph()
    for v in g.vertices():
        nxg.add_node(v, label=g.vertex_label(v))
    for u, v, label in g.edges():
        nxg.add_edge(u, v, label=label)
    return nxg


def nx_directed_monomorphic(pattern, target):
    from networkx.algorithms import isomorphism as nxiso

    gm = nxiso.DiGraphMatcher(
        to_networkx(target),
        to_networkx(pattern),
        node_match=lambda a, b: a["label"] == b["label"],
        edge_match=lambda a, b: a["label"] == b["label"],
    )
    return gm.subgraph_is_monomorphic()


def random_digraph(rng, n, labels="ab", edge_labels=(1, 2)):
    g = DirectedLabeledGraph([rng.choice(labels) for _ in range(n)])
    for v in range(1, n):
        parent = rng.randrange(v)
        if rng.random() < 0.5:
            g.add_edge(parent, v, rng.choice(edge_labels))
        else:
            g.add_edge(v, parent, rng.choice(edge_labels))
    for _ in range(rng.randint(0, 3)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, rng.choice(edge_labels))
    return g


class TestBasics:
    def test_direction_respected(self):
        forward = DirectedLabeledGraph(["a", "b"], [(0, 1, 1)])
        backward = DirectedLabeledGraph(["b", "a"], [(0, 1, 1)])
        host = DirectedLabeledGraph(["a", "b", "c"], [(0, 1, 1), (1, 2, 1)])
        assert is_directed_subgraph_isomorphic(forward, host)
        assert not is_directed_subgraph_isomorphic(backward, host)

    def test_edge_label_respected(self):
        pattern = DirectedLabeledGraph(["a", "b"], [(0, 1, 2)])
        host = DirectedLabeledGraph(["a", "b"], [(0, 1, 1)])
        assert not is_directed_subgraph_isomorphic(pattern, host)

    def test_all_monomorphisms_valid(self):
        rng = random.Random(3)
        for _ in range(15):
            pattern = random_digraph(rng, rng.randint(2, 4))
            target = random_digraph(rng, rng.randint(3, 6))
            for mapping in directed_monomorphisms(pattern, target, limit=10):
                assert len(set(mapping.values())) == len(mapping)
                for u, v, label in pattern.edges():
                    assert target.has_edge(mapping[u], mapping[v])
                    assert target.edge_label(mapping[u], mapping[v]) == label

    def test_limit(self):
        star_in = DirectedLabeledGraph(
            ["h", "x", "x", "x"], [(1, 0, 1), (2, 0, 1), (3, 0, 1)]
        )
        edge = DirectedLabeledGraph(["x", "h"], [(0, 1, 1)])
        assert len(list(directed_monomorphisms(edge, star_in))) == 3
        assert len(list(directed_monomorphisms(edge, star_in, limit=2))) == 2


class TestNetworkxCrossCheck:
    def test_random_pairs_agree(self):
        rng = random.Random(23)
        for _ in range(40):
            pattern = random_digraph(rng, rng.randint(2, 5))
            target = random_digraph(rng, rng.randint(2, 6))
            assert is_directed_subgraph_isomorphic(
                pattern, target
            ) == nx_directed_monomorphic(pattern, target)

    def test_isomorphism_on_relabelings(self):
        rng = random.Random(29)
        for _ in range(20):
            g = random_digraph(rng, rng.randint(2, 6))
            perm = list(range(g.num_vertices))
            rng.shuffle(perm)
            assert directed_isomorphic(g, g.relabeled(perm))

    def test_non_isomorphic_direction_flip(self):
        g = DirectedLabeledGraph(["a", "a", "b"], [(0, 1, 1), (1, 2, 1)])
        h = DirectedLabeledGraph(["a", "a", "b"], [(0, 1, 1), (2, 1, 1)])
        assert not directed_isomorphic(g, h)
