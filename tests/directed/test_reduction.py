"""Unit tests for the subdivision reduction (directed ≡ undirected)."""

import random

import pytest

from repro.directed import (
    DirectedLabeledGraph,
    MIDPOINT,
    SRC,
    TGT,
    generate_document,
    is_directed_subgraph_isomorphic,
    subdivide,
    subdivision_sizes,
)
from repro.exceptions import GraphError
from repro.graphs import is_subgraph_isomorphic


@pytest.fixture
def edge():
    return DirectedLabeledGraph(["a", "b"], [(0, 1, "x")])


class TestSubdivide:
    def test_sizes(self, edge):
        skeleton = subdivide(edge)
        assert skeleton.num_vertices == 3
        assert skeleton.num_edges == 2
        assert subdivision_sizes(edge) == (3, 2)

    def test_midpoint_label_and_half_edges(self, edge):
        skeleton = subdivide(edge)
        mid = 2
        assert skeleton.vertex_label(mid) == MIDPOINT
        assert skeleton.edge_label(0, mid) == ("x", SRC)
        assert skeleton.edge_label(mid, 1) == ("x", TGT)

    def test_original_vertices_keep_ids(self):
        g = DirectedLabeledGraph(["p", "q", "r"], [(0, 1, 1), (2, 1, 2)])
        skeleton = subdivide(g)
        for v in range(3):
            assert skeleton.vertex_label(v) == g.vertex_label(v)

    def test_reserved_label_rejected(self):
        g = DirectedLabeledGraph([MIDPOINT, "a"], [(0, 1, 1)])
        with pytest.raises(GraphError):
            subdivide(g)

    def test_graph_id_carried(self, edge):
        edge.graph_id = 9
        assert subdivide(edge).graph_id == 9


class TestReductionTheorem:
    def test_direction_preserved(self):
        forward = DirectedLabeledGraph(["a", "b"], [(0, 1, 1)])
        backward = DirectedLabeledGraph(["b", "a"], [(0, 1, 1)])
        host = DirectedLabeledGraph(["a", "b"], [(0, 1, 1)])
        assert is_subgraph_isomorphic(subdivide(forward), subdivide(host))
        assert not is_subgraph_isomorphic(subdivide(backward), subdivide(host))

    def test_matches_directed_oracle_on_random_documents(self):
        rng = random.Random(17)
        docs = [generate_document(rng, rng.randint(3, 7)) for _ in range(8)]
        queries = [generate_document(rng, rng.randint(2, 4)) for _ in range(6)]
        for q in queries:
            for g in docs:
                direct = is_directed_subgraph_isomorphic(q, g)
                reduced = is_subgraph_isomorphic(subdivide(q), subdivide(g))
                assert direct == reduced

    def test_antiparallel_edges_distinct(self):
        both = DirectedLabeledGraph(["a", "a"], [(0, 1, 1), (1, 0, 1)])
        one = DirectedLabeledGraph(["a", "a"], [(0, 1, 1)])
        assert is_subgraph_isomorphic(subdivide(one), subdivide(both))
        assert not is_subgraph_isomorphic(subdivide(both), subdivide(one))
