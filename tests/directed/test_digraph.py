"""Unit tests for the directed labeled graph structure."""

import pytest

from repro.directed import DirectedLabeledGraph
from repro.exceptions import GraphError


@pytest.fixture
def chain():
    """a -> b -> c with distinct edge labels."""
    return DirectedLabeledGraph(["a", "b", "c"], [(0, 1, "x"), (1, 2, "y")])


class TestConstruction:
    def test_directed_edge_one_way(self, chain):
        assert chain.has_edge(0, 1)
        assert not chain.has_edge(1, 0)

    def test_antiparallel_pair_allowed(self):
        g = DirectedLabeledGraph(["a", "b"], [(0, 1, 1), (1, 0, 2)])
        assert g.edge_label(0, 1) == 1
        assert g.edge_label(1, 0) == 2

    def test_duplicate_directed_edge_rejected(self, chain):
        with pytest.raises(GraphError):
            chain.add_edge(0, 1, "z")

    def test_self_loop_rejected(self, chain):
        with pytest.raises(GraphError):
            chain.add_edge(1, 1, "w")

    def test_unknown_vertex_rejected(self, chain):
        with pytest.raises(GraphError):
            chain.add_edge(0, 9, "z")


class TestAccessors:
    def test_degrees(self, chain):
        assert chain.out_degree(0) == 1 and chain.in_degree(0) == 0
        assert chain.out_degree(1) == 1 and chain.in_degree(1) == 1
        assert chain.degree(1) == 2

    def test_out_and_in_items(self, chain):
        assert dict(chain.out_items(1)) == {2: "y"}
        assert dict(chain.in_items(1)) == {0: "x"}

    def test_edges_iteration(self, chain):
        assert sorted(chain.edges()) == [(0, 1, "x"), (1, 2, "y")]

    def test_edge_label_missing(self, chain):
        with pytest.raises(GraphError):
            chain.edge_label(2, 0)


class TestStructure:
    def test_weak_connectivity(self, chain):
        assert chain.is_weakly_connected()
        g = DirectedLabeledGraph(["a", "b", "c"], [(0, 1, 1)])
        assert not g.is_weakly_connected()

    def test_copy_independent(self, chain):
        c = chain.copy()
        c.add_vertex("d")
        assert chain.num_vertices == 3

    def test_relabeled_preserves_direction(self, chain):
        perm = [2, 0, 1]
        h = chain.relabeled(perm)
        assert h.has_edge(2, 0)  # old 0 -> 1
        assert h.has_edge(0, 1)  # old 1 -> 2
        assert not h.has_edge(0, 2)

    def test_relabeled_requires_permutation(self, chain):
        with pytest.raises(GraphError):
            chain.relabeled([0, 0, 1])

    def test_structure_equal(self, chain):
        assert chain.structure_equal(chain.copy())
        other = DirectedLabeledGraph(["a", "b", "c"], [(1, 0, "x"), (1, 2, "y")])
        assert not chain.structure_equal(other)
