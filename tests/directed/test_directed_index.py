"""Integration tests for the directed TreePi index (Section 7.2)."""

import random

import pytest

from repro.core import TreePiConfig
from repro.directed import (
    DirectedGraphDatabase,
    DirectedLabeledGraph,
    DirectedTreePiIndex,
    extract_directed_query,
    generate_document,
    generate_xml_like,
    is_directed_subgraph_isomorphic,
)
from repro.exceptions import GraphError, IndexError_
from repro.mining import SupportFunction


@pytest.fixture(scope="module")
def xml_db():
    return generate_xml_like(25, avg_elements=8, seed=19)


@pytest.fixture(scope="module")
def xml_index(xml_db):
    config = TreePiConfig(SupportFunction(2, 2.0, 4), gamma=1.1, seed=6)
    return DirectedTreePiIndex.build(xml_db, config)


def brute_force(db, query):
    return frozenset(
        g.graph_id for g in db if is_directed_subgraph_isomorphic(query, g)
    )


class TestBuild:
    def test_empty_rejected(self):
        with pytest.raises(IndexError_):
            DirectedTreePiIndex.build(
                DirectedGraphDatabase(), TreePiConfig(SupportFunction(2, 2.0, 3))
            )

    def test_stats_exposed(self, xml_index):
        assert xml_index.feature_count() > 0
        assert xml_index.stats.build_seconds > 0


class TestQuery:
    @pytest.mark.parametrize("m", [1, 2, 3, 4])
    def test_matches_directed_brute_force(self, xml_db, xml_index, m):
        rng = random.Random(m)
        for _ in range(6):
            query = extract_directed_query(xml_db, m, rng)
            assert xml_index.query(query).matches == brute_force(xml_db, query)

    def test_direction_sensitivity(self, xml_db, xml_index):
        child = DirectedLabeledGraph(["article", "section"], [(0, 1, "child")])
        reversed_child = DirectedLabeledGraph(
            ["section", "article"], [(0, 1, "child")]
        )
        assert xml_index.query(child).matches == brute_force(xml_db, child)
        assert xml_index.query(reversed_child).matches == brute_force(
            xml_db, reversed_child
        )

    def test_empty_query_rejected(self, xml_index):
        with pytest.raises(GraphError):
            xml_index.query(DirectedLabeledGraph(["a"]))

    def test_disconnected_query_rejected(self, xml_index):
        q = DirectedLabeledGraph(
            ["a", "b", "c", "d"], [(0, 1, 1), (2, 3, 1)]
        )
        with pytest.raises(GraphError):
            xml_index.query(q)


class TestMaintenance:
    def test_insert_and_delete(self, xml_db):
        config = TreePiConfig(SupportFunction(2, 2.0, 4), gamma=1.1, seed=7)
        db = generate_xml_like(10, avg_elements=7, seed=23)
        index = DirectedTreePiIndex.build(db, config)
        rng = random.Random(1)

        new = generate_document(rng, 6)
        gid = index.insert(new)
        query = extract_directed_query(db, 2, rng)
        assert index.query(query).matches == brute_force(db, query)

        index.delete(gid)
        assert gid not in db
        assert index.query(query).matches == brute_force(db, query)

    def test_rebuild_after_churn(self):
        config = TreePiConfig(SupportFunction(2, 2.0, 4), gamma=1.1, seed=8)
        db = generate_xml_like(8, avg_elements=6, seed=29)
        index = DirectedTreePiIndex.build(db, config)
        rng = random.Random(2)
        for _ in range(3):
            index.insert(generate_document(rng, 5))
        assert index.needs_rebuild()
        rebuilt = index.rebuild()
        assert rebuilt.churn_fraction == 0
        query = extract_directed_query(db, 2, rng)
        assert rebuilt.query(query).matches == brute_force(db, query)
