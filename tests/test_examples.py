"""Every example script must run to completion (their internal asserts
double as integration checks against the brute-force oracles)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_examples_discovered():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable floor; we ship more
