"""The repository passes its own gate: linting ``src/`` finds nothing.

Also exercises the CLI entry point the CI workflow calls, including its
exit codes (0 clean, 1 violations, 2 contract failure).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import lint_paths, rule_catalog
from repro.analysis.rules import all_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def _run_cli(*argv, cwd=REPO_ROOT):
    env = dict(os.environ, PYTHONPATH=str(SRC))
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *argv],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


def test_src_tree_is_clean():
    report = lint_paths([SRC])
    assert report.files_checked > 50
    assert report.violations == [], "\n".join(
        v.format() for v in report.violations
    )


def test_segment_storage_module_is_clean():
    """The mmap segment subsystem passes the whole-program lint alone.

    The src-tree gate above covers it too, but this pins the module the
    REPRO401 mmap extension was written for: every ``mmap.mmap`` and
    segment file handle in :mod:`repro.storage.segments` is released in
    a ``finally`` or via ``with``, with zero findings.
    """
    target = SRC / "repro" / "storage" / "segments.py"
    assert target.exists()
    report = lint_paths([target])
    assert report.files_checked == 1
    assert report.violations == [], "\n".join(
        v.format() for v in report.violations
    )


def test_cli_lint_exits_zero_on_src():
    proc = _run_cli("lint", "src/")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "OK:" in proc.stdout


def test_cli_lint_exits_nonzero_on_each_rule_fixture(tmp_path):
    fixtures = {
        "REPRO101": "def f(d):\n    for p in d.values():\n        use(p)\n",
        "REPRO102": "def f(xs):\n    return list(set(xs))\n",
        "REPRO103": "def f(xs):\n    return sorted(xs, key=id)\n",
        "REPRO111": "import random\n\ndef f(xs):\n    return random.choice(xs)\n",
        "REPRO112": "from random import shuffle\n",
        "REPRO121": "def f():\n    try:\n        g()\n    except:\n        pass\n",
        "REPRO122": "def f(x):\n    print(x)\n",
        "REPRO123": "def f(db, gid):\n    db[gid].add_edge(0, 1, 'x')\n",
    }
    for rule_id, source in fixtures.items():
        bad = tmp_path / "repro" / "mining" / f"bad_{rule_id.lower()}.py"
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_text(source)
        proc = _run_cli("lint", str(bad))
        assert proc.returncode == 1, f"{rule_id}: {proc.stdout}{proc.stderr}"
        assert rule_id in proc.stdout, f"{rule_id} not reported: {proc.stdout}"
        bad.unlink()


def test_cli_lint_exits_nonzero_on_each_concurrency_fixture(tmp_path):
    engine_preamble = (
        "import threading\n\n"
        "class Engine:\n"
        "    def __init__(self, pool):\n"
        "        self._lock = threading.Lock()\n"
        "        self._pool = pool\n"
        "        self._cache = {}\n"
        "        self._generation = 0\n\n"
        "    def invalidate(self):\n"
        "        with self._lock:\n"
        "            self._generation += 1\n"
        "            self._cache.clear()\n\n"
    )
    fixtures = {
        "REPRO201": engine_preamble + (
            "    def peek(self):\n"
            "        return self._cache.get(0)\n"
        ),
        "REPRO202": engine_preamble + (
            "    def rebuild(self, builder):\n"
            "        with self._lock:\n"
            "            self._cache.update(builder.build())\n"
        ),
        "REPRO203": engine_preamble + (
            "    def dump(self):\n"
            "        with self._lock:\n"
            "            return self._cache\n"
        ),
        "REPRO204": engine_preamble + (
            "    def store(self, key, value):\n"
            "        with self._lock:\n"
            "            self._cache[key] = value\n"
        ),
    }
    for rule_id, source in fixtures.items():
        bad = tmp_path / f"bad_{rule_id.lower()}.py"
        bad.write_text(source)
        proc = _run_cli("lint", "--select", "REPRO2", str(bad))
        assert proc.returncode == 1, f"{rule_id}: {proc.stdout}{proc.stderr}"
        assert rule_id in proc.stdout, f"{rule_id} not reported: {proc.stdout}"
        bad.unlink()


def test_cli_lint_concurrency_family_clean_on_src():
    """The CI `concurrency-lint` gate: src/ has no REPRO2xx violations."""
    proc = _run_cli("lint", "--select", "REPRO2", "src/")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "OK:" in proc.stdout


def test_cli_lint_zero_python_files_exits_zero(tmp_path):
    empty = tmp_path / "no_python_here"
    empty.mkdir()
    (empty / "notes.txt").write_text("nothing to lint\n")
    proc = _run_cli("lint", str(empty))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 files checked" in proc.stdout


def test_noqa_comments_are_specific_and_justified():
    """Every suppression in ``src/`` names its rule and explains itself.

    A bare ``# noqa`` silences every rule on the line (including future
    ones) and a bare ``# noqa: REPRO101`` gives reviewers nothing to
    audit, so both are banned: suppressions must be rule-qualified and
    carry a trailing justification (`` - why`` or prose after the code).
    """
    import re

    pattern = re.compile(r"#\s*noqa(?P<spec>[^\n]*)")
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        if "analysis" in path.parts:
            continue  # the linter's own docs/regexes mention noqa
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            match = pattern.search(line)
            if match is None:
                continue
            spec = match.group("spec").strip()
            if not spec.startswith(":") or not re.match(r":\s*REPRO\d{3}", spec):
                offenders.append(f"{path}:{lineno}: bare or unqualified noqa")
            elif not re.match(r":\s*REPRO\d{3}(?:\s*,\s*REPRO\d{3})*\s+\S", spec):
                offenders.append(f"{path}:{lineno}: no justification text")
    assert offenders == [], "\n".join(offenders)


def test_engine_module_is_lint_clean():
    """The serving layer passes every REPRO rule without suppressions."""
    engine_path = SRC / "repro" / "core" / "engine.py"
    report = lint_paths([engine_path])
    assert report.violations == []
    assert "noqa" not in engine_path.read_text()


def test_cli_rules_prints_full_catalog():
    proc = _run_cli("rules")
    assert proc.returncode == 0
    for cls in all_rules():
        assert cls.rule_id in proc.stdout
    # library view matches the CLI view
    assert rule_catalog().splitlines()[0] in proc.stdout


def test_cli_contracts_self_test_passes():
    proc = _run_cli("contracts")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "contract" in proc.stdout.lower()
