"""Incremental lint cache: correctness first (cold == warm, content
invalidation, select filtering from cached full-rule entries), then the
speedup acceptance gate (warm ≥ 2x faster on the full src tree).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.analysis.cache import LintCache, analyzer_signature
from repro.analysis.engine import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

_CLEAN = "def helper(xs):\n    return sorted(xs)\n"
_DIRTY = "def helper(xs):\n    return list(set(xs))\n"  # REPRO102
_BARE_EXCEPT = (
    "def load(path):\n"
    "    try:\n"
    "        return open(path).read()\n"
    "    except:\n"
    "        return None\n"
)


def _tree(tmp_path: Path, files) -> Path:
    root = tmp_path / "proj"
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return root


def _key(report):
    return [
        (v.path, v.line, v.col, v.rule_id, v.message) for v in report.violations
    ]


def test_cold_and_warm_results_are_identical(tmp_path):
    root = _tree(
        tmp_path,
        {
            "repro/mining/a.py": _DIRTY,
            "repro/mining/b.py": _CLEAN,
            "repro/io/c.py": _BARE_EXCEPT,
        },
    )
    cache_dir = tmp_path / "cache"
    cold = lint_paths([root], cache_dir=cache_dir)
    warm = lint_paths([root], cache_dir=cache_dir)
    uncached = lint_paths([root])
    assert _key(cold) == _key(warm) == _key(uncached)
    assert cold.files_checked == warm.files_checked == 3
    assert len(list(cache_dir.glob("*.json"))) == 3


def test_content_change_invalidates(tmp_path):
    root = _tree(tmp_path, {"repro/mining/a.py": _CLEAN})
    cache_dir = tmp_path / "cache"
    assert lint_paths([root], cache_dir=cache_dir).violations == []
    (root / "repro" / "mining" / "a.py").write_text(_DIRTY)
    report = lint_paths([root], cache_dir=cache_dir)
    assert [v.rule_id for v in report.violations] == ["REPRO102"]


def test_select_filters_cached_full_rule_entries(tmp_path):
    """One full-rule entry serves every family selection: a warm
    ``--select`` run returns exactly what an uncached selected run
    would, without re-analyzing."""
    root = _tree(
        tmp_path,
        {"repro/mining/a.py": _DIRTY, "repro/io/c.py": _BARE_EXCEPT},
    )
    cache_dir = tmp_path / "cache"
    lint_paths([root], cache_dir=cache_dir)  # populate with full rules
    entries_before = sorted(cache_dir.glob("*.json"))
    warm = lint_paths([root], select=["REPRO102"], cache_dir=cache_dir)
    assert _key(warm) == _key(lint_paths([root], select=["REPRO102"]))
    assert [v.rule_id for v in warm.violations] == ["REPRO102"]
    # the selected run reused the full-rule entries, adding none
    assert sorted(cache_dir.glob("*.json")) == entries_before


def test_noqa_suppressions_survive_the_cache(tmp_path):
    root = _tree(
        tmp_path,
        {
            "repro/mining/a.py": (
                "def helper(xs):\n"
                "    return list(set(xs))  # noqa: REPRO102 - fixture\n"
            )
        },
    )
    cache_dir = tmp_path / "cache"
    cold = lint_paths([root], cache_dir=cache_dir)
    warm = lint_paths([root], cache_dir=cache_dir)
    for report in (cold, warm):
        assert report.violations == []
        assert [v.rule_id for v in report.suppressed_violations] == ["REPRO102"]


def test_corrupt_entry_degrades_to_miss(tmp_path):
    root = _tree(tmp_path, {"repro/mining/a.py": _DIRTY})
    cache_dir = tmp_path / "cache"
    lint_paths([root], cache_dir=cache_dir)
    for entry in cache_dir.glob("*.json"):
        entry.write_text("{not json")
    report = lint_paths([root], cache_dir=cache_dir)
    assert [v.rule_id for v in report.violations] == ["REPRO102"]


def test_schema_mismatch_degrades_to_miss(tmp_path):
    root = _tree(tmp_path, {"repro/mining/a.py": _DIRTY})
    cache_dir = tmp_path / "cache"
    lint_paths([root], cache_dir=cache_dir)
    for entry in cache_dir.glob("*.json"):
        payload = json.loads(entry.read_text())
        payload["schema"] = 999
        entry.write_text(json.dumps(payload))
    report = lint_paths([root], cache_dir=cache_dir)
    assert [v.rule_id for v in report.violations] == ["REPRO102"]


def test_unwritable_cache_dir_degrades_to_no_cache(tmp_path):
    root = _tree(tmp_path, {"repro/mining/a.py": _DIRTY})
    blocker = tmp_path / "blocked"
    blocker.write_text("a file where the cache dir should go")
    report = lint_paths([root], cache_dir=blocker)
    assert [v.rule_id for v in report.violations] == ["REPRO102"]


def test_analyzer_signature_is_stable_and_covers_rules():
    assert analyzer_signature() == analyzer_signature()
    cache = LintCache("/nonexistent")
    assert cache.load("no-such-key") is None


def test_warm_run_is_at_least_2x_faster_on_src_tree(tmp_path):
    cache_dir = tmp_path / "cache"
    t0 = time.perf_counter()
    cold = lint_paths([SRC / "repro"], cache_dir=cache_dir)
    cold_s = time.perf_counter() - t0
    t1 = time.perf_counter()
    warm = lint_paths([SRC / "repro"], cache_dir=cache_dir)
    warm_s = time.perf_counter() - t1
    assert _key(cold) == _key(warm)
    assert cold.files_checked == warm.files_checked > 50
    assert warm_s * 2 <= cold_s, (
        f"warm run not ≥2x faster: cold={cold_s:.3f}s warm={warm_s:.3f}s"
    )


def _run_cli(*argv, cwd=REPO_ROOT):
    env = dict(os.environ, PYTHONPATH=str(SRC))
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *argv],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


def test_cli_cache_dir_and_no_cache_flags(tmp_path):
    root = _tree(tmp_path, {"repro/mining/a.py": _DIRTY})
    cache_dir = tmp_path / "clicache"
    proc = _run_cli("lint", "--cache-dir", str(cache_dir), str(root))
    assert proc.returncode == 1
    assert "REPRO102" in proc.stdout
    assert list(cache_dir.glob("*.json")), "cache not populated"
    warm = _run_cli("lint", "--cache-dir", str(cache_dir), str(root))
    assert warm.returncode == 1
    assert "REPRO102" in warm.stdout

    bypass_dir = tmp_path / "nocache"
    proc = _run_cli(
        "lint", "--no-cache", "--cache-dir", str(bypass_dir), str(root)
    )
    assert proc.returncode == 1
    assert not bypass_dir.exists(), "--no-cache must not touch the cache dir"
