"""The JSON report is a stable, auditable CI artifact.

Schema under test: top-level keys ``files_checked`` / ``violations`` /
``suppressed`` / ``suppressed_count`` / ``counts_by_rule`` / ``ok``;
each record carries ``path``/``line``/``col``/``rule``/``message`` and
lists are ordered by (path, line, col, rule) so two runs over the same
tree serialize byte-identically.
"""

from __future__ import annotations

import json

from repro.analysis import lint_paths, lint_source_full
from repro.analysis.report import render_json, render_text

RACY = """
import threading

class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        with self._lock:
            self._count += 1

    def peek(self):
        return self._count
"""

WAIVED = RACY.replace(
    "        return self._count",
    "        return self._count  # noqa: REPRO201 single-writer phase, waived",
)

TOP_LEVEL_KEYS = {
    "counts_by_rule",
    "files_checked",
    "ok",
    "suppressed",
    "suppressed_count",
    "violations",
}
RECORD_KEYS = {"path", "line", "col", "rule", "message"}


def _report_for(tmp_path, sources):
    for name, source in sources.items():
        (tmp_path / name).write_text(source)
    return lint_paths([tmp_path], select=("REPRO2",))


def test_json_schema_on_a_repro2_finding(tmp_path):
    report = _report_for(tmp_path, {"racy.py": RACY})
    payload = json.loads(render_json(report))
    assert set(payload) == TOP_LEVEL_KEYS
    assert payload["files_checked"] == 1
    assert payload["ok"] is False
    assert payload["counts_by_rule"] == {"REPRO201": 1}
    (record,) = payload["violations"]
    assert set(record) == RECORD_KEYS
    assert record["rule"] == "REPRO201"
    assert record["path"].endswith("racy.py")
    assert record["line"] > 0 and record["col"] >= 0
    assert "guarded by" in record["message"]


def test_json_reports_noqa_suppressions(tmp_path):
    report = _report_for(tmp_path, {"waived.py": WAIVED})
    payload = json.loads(render_json(report))
    assert payload["ok"] is True
    assert payload["violations"] == []
    assert payload["suppressed_count"] == 1
    (record,) = payload["suppressed"]
    assert set(record) == RECORD_KEYS
    assert record["rule"] == "REPRO201"


def test_json_is_deterministic_and_sorted(tmp_path):
    sources = {"b_second.py": RACY, "a_first.py": RACY, "c_waived.py": WAIVED}
    first = render_json(_report_for(tmp_path, sources))
    second = render_json(_report_for(tmp_path, sources))
    assert first == second
    payload = json.loads(first)
    locations = [
        (r["path"], r["line"], r["col"], r["rule"])
        for r in payload["violations"]
    ]
    assert locations == sorted(locations)
    assert [r["path"].rsplit("/", 1)[-1] for r in payload["violations"]] == [
        "a_first.py",
        "b_second.py",
    ]
    # serialized key order is sorted too (byte-stability, not just set equality)
    assert list(payload) == sorted(payload)


def test_json_zero_files(tmp_path):
    (tmp_path / "empty").mkdir()
    report = lint_paths([tmp_path / "empty"])
    payload = json.loads(render_json(report))
    assert payload["files_checked"] == 0
    assert payload["ok"] is True
    assert payload["violations"] == []
    assert payload["suppressed"] == []


def test_text_zero_files_says_so(tmp_path):
    (tmp_path / "empty").mkdir()
    report = lint_paths([tmp_path / "empty"])
    assert "0 files checked" in render_text(report)


def test_lint_source_full_splits_kept_and_suppressed():
    kept, suppressed = lint_source_full(
        WAIVED, "src/repro/core/fixture.py", select=("REPRO2",)
    )
    assert kept == []
    assert [v.rule_id for v in suppressed] == ["REPRO201"]
