"""Runtime half of the concurrency contracts: @guarded_by and lock order.

Every test runs inside ``contract_scope()`` (the checks are no-ops when
contracts are off — that is itself asserted) and resets the process-wide
acquisition graph around itself for isolation.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis import (
    ContractViolation,
    TrackedLock,
    contract_scope,
    guarded_by,
    lock_is_held,
    lock_order_edges,
    reset_lock_order,
)


@pytest.fixture(autouse=True)
def _clean_lock_order():
    reset_lock_order()
    yield
    reset_lock_order()


class Counter:
    """Minimal guarded class in the QueryEngine mold."""

    def __init__(self):
        self._lock = TrackedLock("Counter._lock")
        self.value = 0

    @guarded_by("_lock")
    def bump(self):
        self.value += 1

    def bump_safely(self):
        with self._lock:
            self.bump()


# ----------------------------------------------------------------------
# @guarded_by enforcement
# ----------------------------------------------------------------------
def test_guarded_method_without_lock_raises():
    counter = Counter()
    with contract_scope():
        with pytest.raises(ContractViolation, match="_lock"):
            counter.bump()
    assert counter.value == 0


def test_guarded_method_with_lock_passes():
    counter = Counter()
    with contract_scope():
        counter.bump_safely()
    assert counter.value == 1


def test_guarded_method_unchecked_when_contracts_off():
    counter = Counter()
    with contract_scope(enabled=False):  # robust under REPRO_CONTRACTS=1 runs
        counter.bump()  # no lock, no contracts: plain call
    assert counter.value == 1


def test_guarded_method_skipped_when_lock_attr_is_none():
    class Standalone:
        def __init__(self):
            self._serving_lock = None
            self.calls = 0

        @guarded_by("_serving_lock", mode="write")
        def mutate(self):
            self.calls += 1

    obj = Standalone()
    with contract_scope():
        obj.mutate()  # attribute present but None -> standalone usage
    assert obj.calls == 1


def test_guarded_by_records_declaration_metadata():
    assert Counter.bump.__guarded_by__ == ("_lock", "exclusive")


def test_guarded_by_rejects_unknown_mode():
    with pytest.raises(ValueError, match="mode"):
        guarded_by("_lock", mode="sideways")


def test_lock_is_held_reflects_scope():
    lock = TrackedLock("test.lock_is_held")
    with contract_scope():
        assert not lock_is_held(lock)
        with lock:
            assert lock_is_held(lock)
        assert not lock_is_held(lock)


# ----------------------------------------------------------------------
# lock-order tracking
# ----------------------------------------------------------------------
def test_inverted_acquisition_order_raises():
    a = TrackedLock("test.A")
    b = TrackedLock("test.B")
    with contract_scope():
        with a:
            with b:
                pass
        with b:
            with pytest.raises(ContractViolation, match="cycle"):
                with a:
                    pass


def test_consistent_order_never_raises():
    a = TrackedLock("test.A")
    b = TrackedLock("test.B")
    with contract_scope():
        for _ in range(3):
            with a:
                with b:
                    pass


def test_transitive_inversion_raises():
    a = TrackedLock("test.A")
    b = TrackedLock("test.B")
    c = TrackedLock("test.C")
    with contract_scope():
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with pytest.raises(ContractViolation, match="cycle"):
                with a:
                    pass


def test_reacquiring_nonreentrant_lock_raises():
    lock = TrackedLock("test.reentry")
    with contract_scope():
        with lock:
            with pytest.raises(ContractViolation, match="re-acquires"):
                lock.acquire()


def test_edges_record_class_level_discipline():
    a = TrackedLock("test.A")
    b = TrackedLock("test.B")
    with contract_scope():
        with a:
            with b:
                pass
    assert lock_order_edges() == {"test.A": ("test.B",)}
    reset_lock_order()
    assert lock_order_edges() == {}


def test_same_name_different_instances_share_discipline():
    """Order is a *class-level* rule: any A-instance before any B-instance."""
    a1 = TrackedLock("test.A")
    a2 = TrackedLock("test.A")
    b = TrackedLock("test.B")
    with contract_scope():
        with a1:
            with b:
                pass
        with b:
            with pytest.raises(ContractViolation, match="cycle"):
                with a2:
                    pass


def test_tracking_disabled_outside_contracts():
    a = TrackedLock("test.A")
    b = TrackedLock("test.B")
    with contract_scope(enabled=False):  # robust under REPRO_CONTRACTS=1 runs
        with a:
            with b:
                pass
        with b:
            with a:  # would be an inversion, but contracts are off
                pass
    assert lock_order_edges() == {}


def test_held_stacks_are_per_thread():
    lock = TrackedLock("test.per_thread")
    seen = {}

    def probe():
        seen["other"] = lock_is_held(lock)

    with contract_scope():
        with lock:
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
            assert lock_is_held(lock)
    assert seen["other"] is False


def test_tracked_lock_still_mutually_excludes():
    lock = TrackedLock("test.mutex")
    totals = {"n": 0}

    def work():
        for _ in range(200):
            with lock:
                totals["n"] += 1

    threads = [threading.Thread(target=work) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert totals["n"] == 800
    assert not lock.locked()
