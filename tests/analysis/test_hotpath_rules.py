"""Each REPRO3xx rule fires on a minimal fixture and stays quiet on the fix.

Fixtures are written in the style of the serving layer and the
isomorphism enumerator; they are linted as ``src/repro/core/fixture.py``
with ``select=("REPRO3",)`` so the hot-path family is exercised in
isolation from the REPRO1xx determinism rules.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import lint_source, lint_source_full

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

PATH = "src/repro/core/fixture.py"


def rule_ids(source: str, path: str = PATH):
    return [v.rule_id for v in lint_source(source, path, select=("REPRO3",))]


def messages(source: str, path: str = PATH):
    return [v.message for v in lint_source(source, path, select=("REPRO3",))]


def _run_cli(*argv, cwd=REPO_ROOT):
    env = dict(os.environ, PYTHONPATH=str(SRC))
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *argv],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


# ----------------------------------------------------------------------
# REPRO301 — hot loop severs the cancellation chain
# ----------------------------------------------------------------------
def test_repro301_token_never_read_fires():
    src = """
from repro.analysis.flow import hot_path

@hot_path
def verify(candidates, token=None):
    out = []
    for gid in candidates:
        out.append(gid)
    return out
"""
    assert rule_ids(src) == ["REPRO301"]
    assert "never reads" in messages(src)[0]


def test_repro301_token_polled_in_loop_is_clean():
    src = """
from repro.analysis.flow import hot_path

@hot_path
def verify(candidates, token=None):
    out = []
    for gid in candidates:
        if token is not None:
            token.poll()
        out.append(gid)
    return out
"""
    assert rule_ids(src) == []


def test_repro301_token_dropped_from_spine_callee_fires():
    """The seeded regression: removing ``token=`` from one call flips it."""
    src = """
from repro.analysis.flow import hot_path

@hot_path
def verify(plans, graph, token=None):
    hits = []
    for problem in plans:
        if token is not None:
            token.poll()
        if verify_candidate(problem, graph):
            hits.append(problem)
    return hits
"""
    assert rule_ids(src) == ["REPRO301"]
    assert "verify_candidate" in messages(src)[0]


def test_repro301_token_forwarded_to_spine_callee_is_clean():
    src = """
from repro.analysis.flow import hot_path

@hot_path
def verify(plans, graph, token=None):
    hits = []
    for problem in plans:
        if token is not None:
            token.poll()
        if verify_candidate(problem, graph, token=token):
            hits.append(problem)
    return hits
"""
    assert rule_ids(src) == []


def test_repro301_shadowed_token_fires():
    src = """
from repro.analysis.flow import hot_path

@hot_path
def plan(query, token=None):
    token = None
    return query
"""
    assert rule_ids(src) == ["REPRO301"]
    assert "reassigned" in messages(src)[0]


ENUMERATOR = """
from repro.analysis.flow import hot_path

@hot_path
def subgraph_monomorphisms(query, graph, token=None):
    if token is not None:
        token.poll()
    pending = 0

    def backtrack(pos, mapping):
        nonlocal pending
        if pos == len(query):
            yield dict(mapping)
            return
        for gv in graph[pos]:
            pending += 1
{charge}            mapping[pos] = gv
            yield from backtrack(pos + 1, mapping)
            del mapping[pos]

    yield from backtrack(0, {{}})
"""

CHARGE_BLOCK = (
    "            if token is not None and pending >= 64:\n"
    "                token.charge(pending)\n"
    "                pending = 0\n"
)


def test_repro301_enumerator_with_checkpoint_is_clean():
    """The isomorphism-style enumerator with its 64-step charge passes."""
    assert rule_ids(ENUMERATOR.format(charge=CHARGE_BLOCK)) == []


def test_repro301_deleting_the_charge_call_fires():
    """Seeded regression: drop ``token.charge`` and the loop is flagged."""
    ids = rule_ids(ENUMERATOR.format(charge=""))
    assert ids == ["REPRO301"]
    assert "no CancellationToken checkpoint" in (
        messages(ENUMERATOR.format(charge=""))[0]
    )


def test_repro301_only_hot_functions_are_checked():
    src = """
def helper(candidates, token=None):
    out = []
    for gid in candidates:
        out.append(gid)
    return out
"""
    assert rule_ids(src, path="src/repro/mining/fixture.py") == []


# ----------------------------------------------------------------------
# REPRO302 — BudgetExceeded swallowed / partial result cached
# ----------------------------------------------------------------------
def test_repro302_swallowed_budget_fires():
    src = """
from repro.exceptions import BudgetExceeded

def run(problem, token):
    try:
        return solve(problem, token)
    except BudgetExceeded:
        pass
"""
    assert rule_ids(src) == ["REPRO302"]
    assert "swallowed" in messages(src)[0]


def test_repro302_converted_to_degraded_result_is_clean():
    src = """
from repro.exceptions import BudgetExceeded

def run(problem, token):
    try:
        return solve(problem, token)
    except BudgetExceeded:
        return Outcome(matches=(), complete=False)
"""
    assert rule_ids(src) == []


def test_repro302_reraise_is_clean():
    src = """
from repro.exceptions import BudgetExceeded

def run(problem, token):
    try:
        return solve(problem, token)
    except BudgetExceeded:
        raise
"""
    assert rule_ids(src) == []


def test_repro302_result_cached_without_complete_check_fires():
    src = """
def remember(cache, key, result):
    cache[key] = result
"""
    assert rule_ids(src) == ["REPRO302"]
    assert ".complete" in messages(src)[0]


def test_repro302_complete_checked_before_caching_is_clean():
    src = """
def remember(cache, key, result):
    if result.complete:
        cache[key] = result
"""
    assert rule_ids(src) == []


def test_repro302_cache_store_outside_core_is_clean():
    src = """
def remember(cache, key, result):
    cache[key] = result
"""
    assert rule_ids(src, path="src/repro/mining/fixture.py") == []


# ----------------------------------------------------------------------
# REPRO303 — columnar-storage bypass
# ----------------------------------------------------------------------
def test_repro303_materializing_graph_ids_fires():
    src = """
from repro.storage import PostingList

def stage1(db):
    return PostingList.from_sorted(sorted(db.graph_ids()))
"""
    ids = rule_ids(src)
    assert ids == ["REPRO303"]
    assert "universe_posting" in messages(src)[0]


def test_repro303_universe_posting_is_clean():
    src = """
def stage1(db):
    return db.universe_posting()
"""
    assert rule_ids(src) == []


def test_repro303_set_universe_seeding_fires():
    src = """
def constrain(result, universe):
    members = set(universe)
    return members
"""
    assert rule_ids(src) == ["REPRO303"]
    assert "set(universe)" in messages(src)[0]


def test_repro303_membership_against_materialized_set_fires():
    src = """
def constrain(result, ids):
    members = set(ids)
    return frozenset(g for g in result if g in members)
"""
    assert rule_ids(src) == ["REPRO303"]
    assert "intersect" in messages(src)[0]


def test_repro303_posting_intersection_is_clean():
    src = """
from repro.storage import PostingList

def constrain(result, universe):
    return result.intersect(PostingList(universe)).to_frozenset()
"""
    assert rule_ids(src) == []


def test_repro303_locations_and_to_mapping_fire():
    src = """
def dump(store):
    table = store.locations
    return store.to_mapping()
"""
    assert rule_ids(src) == ["REPRO303", "REPRO303"]


def test_repro303_off_the_query_path_is_clean():
    src = """
def stage1(db):
    return sorted(db.graph_ids())
"""
    assert rule_ids(src, path="src/repro/mining/fixture.py") == []


# ----------------------------------------------------------------------
# REPRO304 — accidental quadratics in hot functions
# ----------------------------------------------------------------------
def test_repro304_list_membership_in_loop_fires():
    src = """
from repro.analysis.flow import hot_path

@hot_path
def dedup(items):
    seen = []
    for x in items:
        if x in seen:
            continue
        seen.append(x)
    return seen
"""
    assert rule_ids(src) == ["REPRO304"]
    assert "membership" in messages(src)[0]


def test_repro304_set_membership_in_loop_is_clean():
    src = """
from repro.analysis.flow import hot_path

@hot_path
def dedup(items):
    seen = set()
    out = []
    for x in items:
        if x in seen:
            continue
        seen.add(x)
        out.append(x)
    return out
"""
    assert rule_ids(src) == []


def test_repro304_list_concat_in_loop_fires():
    src = """
from repro.analysis.flow import hot_path

@hot_path
def build(paths):
    out = []
    for p in paths:
        out = out + [p]
    return out
"""
    assert rule_ids(src) == ["REPRO304"]


def test_repro304_list_concat_on_recursive_path_fires():
    src = """
from repro.analysis.flow import hot_path

@hot_path
def search(pos, placed):
    if pos == 0:
        return placed
    return search(pos - 1, placed + [pos])
"""
    assert rule_ids(src) == ["REPRO304"]
    assert "recursive" in messages(src)[0]


def test_repro304_append_pop_recursion_is_clean():
    src = """
from repro.analysis.flow import hot_path

@hot_path
def search(pos, placed):
    if pos == 0:
        return list(placed)
    placed.append(pos)
    found = search(pos - 1, placed)
    placed.pop()
    return found
"""
    assert rule_ids(src) == []


def test_repro304_container_rebuilt_per_iteration_fires():
    src = """
from repro.analysis.flow import hot_path

@hot_path
def any_known(items, mapping):
    for x in items:
        if x in set(mapping):
            return True
    return False
"""
    assert rule_ids(src) == ["REPRO304"]
    assert "rebuilt" in messages(src)[0]


def test_repro304_hoisted_container_is_clean():
    src = """
from repro.analysis.flow import hot_path

@hot_path
def any_known(items, mapping):
    known = set(mapping)
    for x in items:
        if x in known:
            return True
    return False
"""
    assert rule_ids(src) == []


def test_repro304_slice_in_nested_loop_fires():
    src = """
from repro.analysis.flow import hot_path

@hot_path
def pairs(order, check):
    for pos in range(len(order)):
        for prev in order[:pos]:
            check(order[pos], prev)
"""
    assert rule_ids(src) == ["REPRO304"]
    assert "slice" in messages(src)[0]


def test_repro304_hoisted_slice_is_clean():
    src = """
from repro.analysis.flow import hot_path

@hot_path
def pairs(order, check):
    for pos in range(len(order)):
        earlier = order[:pos]
        for prev in earlier:
            check(order[pos], prev)
"""
    assert rule_ids(src) == []


def test_repro304_cold_functions_are_ignored():
    src = """
def dedup(items):
    seen = []
    for x in items:
        if x in seen:
            continue
        seen.append(x)
    return seen
"""
    assert rule_ids(src, path="src/repro/mining/fixture.py") == []


def test_repro304_hotness_propagates_through_calls():
    src = """
from repro.analysis.flow import hot_path

def dedup(items):
    seen = []
    for x in items:
        if x in seen:
            continue
        seen.append(x)
    return seen

@hot_path
def verify(items):
    return dedup(items)
"""
    assert rule_ids(src) == ["REPRO304"]


def test_repro304_spine_name_in_core_is_hot_without_decorator():
    src = """
def plan(items):
    seen = []
    for x in items:
        if x in seen:
            continue
        seen.append(x)
    return seen
"""
    assert rule_ids(src) == ["REPRO304"]


# ----------------------------------------------------------------------
# REPRO305 — work inside the checkpoint window
# ----------------------------------------------------------------------
def test_repro305_formatting_in_charge_loop_fires():
    src = """
from repro.analysis.flow import hot_path

@hot_path
def expand(frontier, token):
    pending = 0
    for state in frontier:
        pending += 1
        token.charge(pending)
        note = "step {}".format(state)
    return pending
"""
    assert rule_ids(src) == ["REPRO305"]
    assert "charge" in messages(src)[0]


def test_repro305_fstring_in_charge_loop_fires():
    src = """
from repro.analysis.flow import hot_path

@hot_path
def expand(frontier, token, log):
    pending = 0
    for state in frontier:
        pending += 1
        token.charge(pending)
        log.debug(f"expanding {state}")
    return pending
"""
    ids = rule_ids(src)
    assert ids == ["REPRO305", "REPRO305"]  # the .debug call and the f-string


def test_repro305_work_outside_charge_loop_is_clean():
    src = """
from repro.analysis.flow import hot_path

@hot_path
def expand(frontier, token):
    pending = 0
    for state in frontier:
        pending += 1
        token.charge(pending)
    note = "total {}".format(pending)
    return note
"""
    assert rule_ids(src) == []


def test_repro305_loops_without_charge_are_ignored():
    src = """
from repro.analysis.flow import hot_path

@hot_path
def expand(frontier, token):
    if token is not None:
        token.poll()
    out = []
    for state in frontier:
        out.append("step {}".format(state))
    return out
"""
    assert rule_ids(src) == []


# ----------------------------------------------------------------------
# family mechanics
# ----------------------------------------------------------------------
QUADRATIC = """
from repro.analysis.flow import hot_path

@hot_path
def dedup(items):
    seen = []
    for x in items:
        if x in seen:
            continue
        seen.append(x)
    return seen
"""


def test_specific_rule_select():
    kept = lint_source(QUADRATIC, PATH, select=("REPRO304",))
    assert [v.rule_id for v in kept] == ["REPRO304"]
    kept = lint_source(QUADRATIC, PATH, select=("REPRO305",))
    assert kept == []


def test_noqa_suppresses_and_is_recorded():
    suppressed_src = QUADRATIC.replace(
        "if x in seen:",
        "if x in seen:  # noqa: REPRO304 - tiny list, bounded by piece count",
    )
    kept, suppressed = lint_source_full(
        suppressed_src, PATH, select=("REPRO3",)
    )
    assert kept == []
    assert [v.rule_id for v in suppressed] == ["REPRO304"]


def test_cli_fires_on_each_hotpath_fixture(tmp_path):
    fixtures = {
        "REPRO301": ENUMERATOR.format(charge=""),
        "REPRO302": (
            "def run(problem, token):\n"
            "    try:\n"
            "        return solve(problem, token)\n"
            "    except BudgetExceeded:\n"
            "        pass\n"
        ),
        "REPRO303": (
            "def stage1(db):\n"
            "    return set(db.graph_ids())\n"
        ),
        "REPRO304": QUADRATIC,
        "REPRO305": (
            "from repro.analysis.flow import hot_path\n\n"
            "@hot_path\n"
            "def expand(frontier, token):\n"
            "    pending = 0\n"
            "    for state in frontier:\n"
            "        pending += 1\n"
            "        token.charge(pending)\n"
            "        note = 'step {}'.format(state)\n"
            "    return pending\n"
        ),
    }
    for rule_id, source in fixtures.items():
        bad = tmp_path / "repro" / "core" / f"bad_{rule_id.lower()}.py"
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_text(source)
        proc = _run_cli("lint", "--select", "REPRO3", str(bad))
        assert proc.returncode == 1, f"{rule_id}: {proc.stdout}{proc.stderr}"
        assert rule_id in proc.stdout, f"{rule_id} not reported: {proc.stdout}"
        bad.unlink()


def test_cli_hotpath_family_clean_on_src():
    """The CI `hotpath-lint` gate: src/ has no REPRO3xx violations."""
    proc = _run_cli("lint", "--select", "REPRO3", "src/")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "OK:" in proc.stdout
