"""SARIF output and report-schema stability.

``--format sarif`` feeds GitHub code scanning; the classic JSON payload
is a CI artifact with a frozen key set, so the baseline keys must stay
conditional on a baseline actually being applied.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis import (
    apply_baseline,
    lint_paths,
    load_baseline,
    write_baseline,
)
from repro.analysis.report import render_json, render_sarif
from repro.analysis.rules import all_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

FIXTURE = """\
from repro.analysis.flow import hot_path

@hot_path
def dedup(items):
    seen = []
    for x in items:
        if x in seen:  # noqa: REPRO304 - fixture keeps one waived finding
            continue
        if x in seen:
            continue
        seen.append(x)
    return seen
"""


def _fixture(tmp_path: Path) -> Path:
    bad = tmp_path / "repro" / "core" / "fixture.py"
    bad.parent.mkdir(parents=True, exist_ok=True)
    bad.write_text(FIXTURE)
    return bad


def _run_cli(*argv, cwd=REPO_ROOT):
    env = dict(os.environ, PYTHONPATH=str(SRC))
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *argv],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


def test_sarif_structure_and_rule_metadata(tmp_path):
    report = lint_paths([_fixture(tmp_path)], select=["REPRO3"])
    payload = json.loads(render_sarif(report))
    assert payload["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in payload["$schema"]
    (run,) = payload["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-analysis"
    # the driver reports the installed distribution version (falling
    # back to repro.__version__ for PYTHONPATH=src runs)
    import re

    assert re.fullmatch(r"\d+(\.\d+)*([a-z0-9.+-]*)?", driver["version"])
    # every registered rule ships metadata exactly once, found or not
    rule_ids = [r["id"] for r in driver["rules"]]
    assert len(rule_ids) == len(set(rule_ids)), "duplicate rule metadata"
    assert set(rule_ids) == {cls.rule_id for cls in all_rules()}
    for rule in driver["rules"]:
        assert rule["fullDescription"]["text"]


def test_sarif_results_cover_open_suppressed_and_baselined(tmp_path):
    bad = _fixture(tmp_path)
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, lint_paths([bad], select=["REPRO3"]))

    report = lint_paths([bad], select=["REPRO3"])
    apply_baseline(report, load_baseline(baseline_file))
    payload = json.loads(render_sarif(report))
    results = payload["runs"][0]["results"]
    kinds = sorted(
        r["suppressions"][0]["kind"] if "suppressions" in r else "open"
        for r in results
    )
    # one noqa-waived (inSource), one baselined (external), none open
    assert kinds == ["external", "inSource"]
    for r in results:
        assert r["level"] == "error"
        loc = r["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("fixture.py")
        assert loc["region"]["startLine"] >= 1
        assert loc["region"]["startColumn"] >= 1


def test_cli_sarif_format(tmp_path):
    bad = _fixture(tmp_path)
    proc = _run_cli("lint", "--select", "REPRO3", "--format", "sarif", str(bad))
    assert proc.returncode == 1  # exit code still reflects the open finding
    payload = json.loads(proc.stdout)
    assert payload["runs"][0]["results"]


def test_cli_sarif_on_clean_src():
    proc = _run_cli("lint", "--select", "REPRO3", "--format", "sarif", "src/")
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(proc.stdout)
    open_results = [
        r
        for r in payload["runs"][0]["results"]
        if "suppressions" not in r
    ]
    assert open_results == []


def test_json_schema_unchanged_without_baseline(tmp_path):
    report = lint_paths([_fixture(tmp_path)], select=["REPRO3"])
    payload = json.loads(render_json(report))
    assert set(payload) == {
        "counts_by_rule",
        "files_checked",
        "ok",
        "suppressed",
        "suppressed_count",
        "violations",
    }


def test_json_gains_baseline_keys_only_when_applied(tmp_path):
    bad = _fixture(tmp_path)
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, lint_paths([bad], select=["REPRO3"]))
    report = lint_paths([bad], select=["REPRO3"])
    apply_baseline(report, load_baseline(baseline_file))
    payload = json.loads(render_json(report))
    assert payload["baselined_count"] == 1
    assert payload["baselined"][0]["rule"] == "REPRO304"
    assert payload["ok"] is True
