"""Each lint rule fires on a minimal fixture snippet and stays quiet on the fix.

Fixtures are linted under a path inside an order-sensitive package
(``src/repro/mining/fixture.py``) so path-scoped rules apply; scoping
itself is tested explicitly at the end.
"""

from __future__ import annotations

import pytest

from repro.analysis import lint_source

# A path that makes every path-scoped rule applicable.
SENSITIVE = "src/repro/mining/fixture.py"
# A path outside the order-sensitive packages (REPRO101 must not fire).
INSENSITIVE = "src/repro/datasets/fixture.py"


def rule_ids(source: str, path: str = SENSITIVE):
    return [v.rule_id for v in lint_source(source, path)]


# ----------------------------------------------------------------------
# REPRO101 — dict-order materialized
# ----------------------------------------------------------------------
def test_repro101_for_loop_over_values():
    src = "def f(d):\n    for p in d.values():\n        use(p)\n"
    assert "REPRO101" in rule_ids(src)


def test_repro101_for_loop_over_items():
    src = "def f(d):\n    for k, v in d.items():\n        use(k, v)\n"
    assert "REPRO101" in rule_ids(src)


def test_repro101_ordered_comprehension():
    src = "def f(d):\n    return [p.key for p in d.values()]\n"
    assert "REPRO101" in rule_ids(src)


def test_repro101_sorted_items_is_clean():
    src = "def f(d):\n    for k, v in sorted(d.items()):\n        use(k, v)\n"
    assert rule_ids(src) == []


def test_repro101_order_insensitive_wrapper_is_clean():
    src = "def f(d):\n    return sum(len(b) for b in d.values())\n"
    assert rule_ids(src) == []


def test_repro101_scoped_to_order_sensitive_packages():
    src = "def f(d):\n    for p in d.values():\n        use(p)\n"
    assert "REPRO101" not in rule_ids(src, INSENSITIVE)


# ----------------------------------------------------------------------
# REPRO102 — set iteration materialized
# ----------------------------------------------------------------------
def test_repro102_for_over_set_literal():
    src = "def f():\n    for x in {'a', 'b'}:\n        use(x)\n"
    assert "REPRO102" in rule_ids(src)


def test_repro102_list_over_set_call():
    src = "def f(xs):\n    return list(set(xs))\n"
    assert "REPRO102" in rule_ids(src)


def test_repro102_comprehension_over_set_comp():
    src = "def f(xs):\n    return [y for y in {x.key for x in xs}]\n"
    assert "REPRO102" in rule_ids(src)


def test_repro102_fires_everywhere():
    src = "def f(xs):\n    return list(set(xs))\n"
    assert "REPRO102" in rule_ids(src, INSENSITIVE)


def test_repro102_sorted_set_is_clean():
    src = "def f(xs):\n    return sorted(set(xs))\n"
    assert rule_ids(src) == []


# ----------------------------------------------------------------------
# REPRO103 — nondeterministic sort key
# ----------------------------------------------------------------------
def test_repro103_key_id():
    src = "def f(xs):\n    return sorted(xs, key=id)\n"
    assert "REPRO103" in rule_ids(src)


def test_repro103_lambda_hash():
    src = "def f(xs):\n    xs.sort(key=lambda x: hash(x.label))\n"
    assert "REPRO103" in rule_ids(src)


def test_repro103_canonical_key_is_clean():
    src = "def f(xs):\n    return sorted(xs, key=lambda x: x.key)\n"
    assert rule_ids(src) == []


# ----------------------------------------------------------------------
# REPRO111 / REPRO112 — RNG hygiene
# ----------------------------------------------------------------------
def test_repro111_module_level_call():
    src = "import random\n\ndef f(xs):\n    return random.choice(xs)\n"
    assert "REPRO111" in rule_ids(src)


def test_repro111_aliased_import():
    src = "import random as rnd\n\ndef f(xs):\n    rnd.shuffle(xs)\n"
    assert "REPRO111" in rule_ids(src)


def test_repro111_constructing_random_is_clean():
    src = "import random\n\ndef f(seed):\n    return random.Random(seed)\n"
    assert rule_ids(src) == []


def test_repro111_injected_rng_is_clean():
    src = "def f(xs, rng):\n    rng.shuffle(xs)\n    return rng.choice(xs)\n"
    assert rule_ids(src) == []


def test_repro112_from_import():
    src = "from random import shuffle\n"
    assert "REPRO112" in rule_ids(src)


def test_repro112_importing_random_class_is_clean():
    src = "from random import Random\n"
    assert rule_ids(src) == []


# ----------------------------------------------------------------------
# REPRO121 — broad except
# ----------------------------------------------------------------------
def test_repro121_bare_except():
    src = "def f():\n    try:\n        g()\n    except:\n        pass\n"
    assert "REPRO121" in rule_ids(src)


def test_repro121_broad_exception():
    src = "def f():\n    try:\n        g()\n    except Exception:\n        return None\n"
    assert "REPRO121" in rule_ids(src)


def test_repro121_reraise_is_clean():
    src = (
        "def f():\n"
        "    try:\n"
        "        g()\n"
        "    except Exception:\n"
        "        cleanup()\n"
        "        raise\n"
    )
    assert rule_ids(src) == []


def test_repro121_narrow_catch_is_clean():
    src = "def f():\n    try:\n        g()\n    except KeyError:\n        return None\n"
    assert rule_ids(src) == []


# ----------------------------------------------------------------------
# REPRO122 — stray print
# ----------------------------------------------------------------------
def test_repro122_print_in_library_code():
    src = "def f(x):\n    print(x)\n"
    assert "REPRO122" in rule_ids(src, INSENSITIVE)


@pytest.mark.parametrize(
    "path",
    [
        "src/repro/cli/run.py",
        "src/repro/bench/report.py",
        "src/repro/analysis/__main__.py",
        "src/repro/__main__.py",
    ],
)
def test_repro122_allowed_surfaces(path):
    src = "def f(x):\n    print(x)\n"
    assert "REPRO122" not in rule_ids(src, path)


# ----------------------------------------------------------------------
# REPRO123 — mutating an index-owned graph
# ----------------------------------------------------------------------
def test_repro123_mutating_db_subscript():
    src = "def f(db, gid):\n    db[gid].add_edge(0, 1, 'x')\n"
    assert "REPRO123" in rule_ids(src)


def test_repro123_mutating_attribute_database():
    src = "def f(index, gid):\n    index.database[gid].add_vertex('C')\n"
    assert "REPRO123" in rule_ids(src)


def test_repro123_mutating_a_copy_is_clean():
    src = "def f(db, gid):\n    g = db[gid].copy()\n    g.add_edge(0, 1, 'x')\n"
    assert rule_ids(src) == []


def test_repro123_mutating_local_graph_is_clean():
    src = "def f():\n    g = LabeledGraph(['a', 'b'])\n    g.add_edge(0, 1, 1)\n"
    assert rule_ids(src) == []
