"""Each REPRO2xx rule fires on a minimal fixture and stays quiet on the fix.

Fixtures are self-contained classes in the style of the serving layer
(:mod:`repro.core.engine`); they are linted with ``select=("REPRO2",)``
so the concurrency family is exercised in isolation from the REPRO1xx
determinism rules.
"""

from __future__ import annotations

from repro.analysis import lint_source

PATH = "src/repro/core/fixture.py"


def rule_ids(source: str):
    return [v.rule_id for v in lint_source(source, PATH, select=("REPRO2",))]


def messages(source: str):
    return [v.message for v in lint_source(source, PATH, select=("REPRO2",))]


# ----------------------------------------------------------------------
# REPRO201 — unguarded access to lock-guarded state
# ----------------------------------------------------------------------
def test_repro201_unguarded_read_fires():
    src = """
import threading

class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        with self._lock:
            self._count += 1

    def peek(self):
        return self._count
"""
    assert rule_ids(src) == ["REPRO201"]
    assert "_count" in messages(src)[0]


def test_repro201_unguarded_write_fires():
    src = """
import threading

class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        with self._lock:
            self._count += 1

    def reset(self):
        self._count = 0
"""
    assert rule_ids(src) == ["REPRO201"]


def test_repro201_locked_access_is_clean():
    src = """
import threading

class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        with self._lock:
            self._count += 1

    def peek(self):
        with self._lock:
            return self._count
"""
    assert rule_ids(src) == []


def test_repro201_init_writes_are_exempt():
    src = """
import threading

class Engine:
    def __init__(self, seed):
        self._lock = threading.Lock()
        self._count = seed
        self._count += 1

    def bump(self):
        with self._lock:
            self._count += 1
"""
    assert rule_ids(src) == []


def test_repro201_guarded_by_declaration_satisfies_statically():
    src = """
import threading
from repro.analysis.guards import guarded_by

class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        with self._lock:
            self._count += 1

    @guarded_by("_lock")
    def peek_locked(self):
        return self._count
"""
    assert rule_ids(src) == []


def test_repro201_private_helper_inherits_callers_locks():
    src = """
import threading

class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def reset(self):
        with self._lock:
            self._count = 0

    def bump(self):
        with self._lock:
            self._bump_locked()

    def _bump_locked(self):
        self._count += 1
"""
    assert rule_ids(src) == []


def test_repro201_helper_with_one_unlocked_caller_fires():
    src = """
import threading

class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def reset(self):
        with self._lock:
            self._count = 0

    def bump(self):
        with self._lock:
            self._bump_locked()

    def bump_unsafe(self):
        self._bump_locked()

    def _bump_locked(self):
        self._count += 1
"""
    assert rule_ids(src) == ["REPRO201"]


def test_repro201_write_under_read_lock_fires():
    src = """
class Engine:
    def __init__(self):
        self._rw = ReadWriteLock()
        self._data = {}

    def put(self, key, value):
        with self._rw.write_locked():
            self._data[key] = value

    def racy_put(self, key, value):
        with self._rw.read_locked():
            self._data[key] = value
"""
    assert rule_ids(src) == ["REPRO201"]


def test_repro201_read_under_read_lock_is_clean():
    src = """
class Engine:
    def __init__(self):
        self._rw = ReadWriteLock()
        self._data = {}

    def put(self, key, value):
        with self._rw.write_locked():
            self._data[key] = value

    def get(self, key):
        with self._rw.read_locked():
            return self._data.get(key)
"""
    assert rule_ids(src) == []


# ----------------------------------------------------------------------
# REPRO202 — blocking work under a writer/exclusive lock
# ----------------------------------------------------------------------
def test_repro202_build_under_lock_fires():
    src = """
import threading

class Engine:
    def __init__(self, builder):
        self._lock = threading.Lock()
        self._builder = builder
        self._index = None

    def rebuild(self):
        with self._lock:
            self._index = self._builder.build()
"""
    assert rule_ids(src) == ["REPRO202"]
    assert "build()" in messages(src)[0]


def test_repro202_build_outside_swap_inside_is_clean():
    src = """
import threading

class Engine:
    def __init__(self, builder):
        self._lock = threading.Lock()
        self._builder = builder
        self._index = None

    def rebuild(self):
        rebuilt = self._builder.build()
        with self._lock:
            self._index = rebuilt
"""
    assert rule_ids(src) == []


def test_repro202_pool_submit_under_writer_lock_fires():
    src = """
class Engine:
    def __init__(self, pool):
        self._rw = ReadWriteLock()
        self._pool = pool
        self._answers = []

    def run(self, jobs):
        with self._rw.write_locked():
            self._answers.append(self._pool.submit(work, jobs))
"""
    assert "REPRO202" in rule_ids(src)


def test_repro202_blocking_under_read_lock_is_clean():
    src = """
class Engine:
    def __init__(self, pool):
        self._rw = ReadWriteLock()
        self._pool = pool

    def run(self, jobs):
        with self._rw.read_locked():
            return self._pool.submit(work, jobs)
"""
    assert rule_ids(src) == []


def test_repro202_wait_on_the_lock_itself_is_exempt():
    src = """
import threading

class Gate:
    def __init__(self):
        self._cond = threading.Condition()
        self._open = False

    def block_until_open(self):
        with self._cond:
            while not self._open:
                self._cond.wait()

    def open(self):
        with self._cond:
            self._open = True
"""
    assert rule_ids(src) == []


# ----------------------------------------------------------------------
# REPRO203 — guarded mutable state escaping the locked region
# ----------------------------------------------------------------------
def test_repro203_returning_guarded_container_fires():
    src = """
import threading

class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self._cache = {}

    def put(self, key, value):
        with self._lock:
            self._cache[key] = value

    def dump(self):
        with self._lock:
            return self._cache
"""
    assert rule_ids(src) == ["REPRO203"]
    assert "escape" in messages(src)[0]


def test_repro203_returning_a_copy_is_clean():
    src = """
import threading

class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self._cache = {}

    def put(self, key, value):
        with self._lock:
            self._cache[key] = value

    def dump(self):
        with self._lock:
            return dict(self._cache)
"""
    assert rule_ids(src) == []


def test_repro203_closure_over_guarded_state_submitted_fires():
    src = """
import threading

class Engine:
    def __init__(self, pool):
        self._lock = threading.Lock()
        self._pool = pool
        self._cache = {}

    def put(self, key, value):
        with self._lock:
            self._cache[key] = value

    def schedule_flush(self):
        with self._lock:
            def flush():
                self._cache.clear()
        self._pool.submit(flush)
"""
    assert "REPRO203" in rule_ids(src)


def test_repro203_closure_over_snapshot_is_clean():
    src = """
import threading

class Engine:
    def __init__(self, pool):
        self._lock = threading.Lock()
        self._pool = pool
        self._cache = {}

    def put(self, key, value):
        with self._lock:
            self._cache[key] = value

    def schedule_report(self):
        with self._lock:
            snapshot = dict(self._cache)

        def report():
            emit(snapshot)
        self._pool.submit(report)
"""
    assert rule_ids(src) == []


# ----------------------------------------------------------------------
# REPRO204 — cache store without a generation check
# ----------------------------------------------------------------------
def test_repro204_unchecked_store_fires():
    src = """
import threading

class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self._cache = {}
        self._generation = 0

    def invalidate(self):
        with self._lock:
            self._generation += 1
            self._cache.clear()

    def store(self, key, value):
        with self._lock:
            self._cache[key] = value
"""
    assert rule_ids(src) == ["REPRO204"]
    assert "generation" in messages(src)[0]


def test_repro204_generation_checked_store_is_clean():
    src = """
import threading

class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self._cache = {}
        self._generation = 0

    def invalidate(self):
        with self._lock:
            self._generation += 1
            self._cache.clear()

    def store(self, key, value, observed):
        with self._lock:
            if observed != self._generation:
                return
            self._cache[key] = value
"""
    assert rule_ids(src) == []


def test_repro204_needs_a_generation_field_to_apply():
    src = """
import threading

class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self._cache = {}

    def store(self, key, value):
        with self._lock:
            self._cache[key] = value
"""
    assert rule_ids(src) == []


def test_repro204_cache_removal_is_exempt():
    src = """
import threading

class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self._cache = {}
        self._generation = 0

    def invalidate(self):
        with self._lock:
            self._generation += 1
            self._cache.clear()
"""
    assert rule_ids(src) == []


# ----------------------------------------------------------------------
# family mechanics
# ----------------------------------------------------------------------
def test_select_family_prefix_runs_only_repro2():
    src = """
import threading
import random

class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        with self._lock:
            self._count += 1

    def peek(self):
        return random.random() + self._count
"""
    family_only = [
        v.rule_id for v in lint_source(src, PATH, select=("REPRO2",))
    ]
    assert family_only == ["REPRO201"]
    everything = [v.rule_id for v in lint_source(src, PATH)]
    assert "REPRO201" in everything
    assert "REPRO111" in everything  # random use — outside the family


def test_noqa_suppresses_a_concurrency_finding():
    src = """
import threading

class Engine:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        with self._lock:
            self._count += 1

    def peek(self):
        return self._count  # noqa: REPRO201 single-writer phase, lock-free by design
"""
    assert rule_ids(src) == []


def test_module_level_functions_are_ignored():
    src = """
def helper(engine):
    return engine._count
"""
    assert rule_ids(src) == []
