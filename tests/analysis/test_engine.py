"""Engine behavior: noqa suppression, parse errors, select/ignore, reports."""

from __future__ import annotations

import json

from repro.analysis import lint_paths, lint_source
from repro.analysis.engine import PARSE_ERROR_RULE
from repro.analysis.report import render_json, render_text

DIRTY = "import random\n\ndef f(xs):\n    return random.choice(xs)\n"


def test_noqa_bare_suppresses_everything():
    src = "import random\n\ndef f(xs):\n    return random.choice(xs)  # noqa\n"
    assert lint_source(src, "src/repro/mining/x.py") == []


def test_noqa_with_matching_code():
    src = (
        "import random\n\ndef f(xs):\n"
        "    return random.choice(xs)  # noqa: REPRO111\n"
    )
    assert lint_source(src, "src/repro/mining/x.py") == []


def test_noqa_with_wrong_code_does_not_suppress():
    src = (
        "import random\n\ndef f(xs):\n"
        "    return random.choice(xs)  # noqa: REPRO101\n"
    )
    assert [v.rule_id for v in lint_source(src, "src/repro/mining/x.py")] == [
        "REPRO111"
    ]


def test_noqa_code_list_and_case_insensitivity():
    src = (
        "import random\n\ndef f(xs):\n"
        "    return random.choice(xs)  # NOQA: REPRO103, REPRO111\n"
    )
    assert lint_source(src, "src/repro/mining/x.py") == []


def test_syntax_error_is_a_violation():
    violations = lint_source("def f(:\n", "src/repro/mining/x.py")
    assert [v.rule_id for v in violations] == [PARSE_ERROR_RULE]


def test_select_restricts_rules():
    src = "import random\n\ndef f(d):\n    random.seed(0)\n    for p in d.values():\n        use(p)\n"
    only101 = lint_source(src, "src/repro/mining/x.py", select=["REPRO101"])
    assert {v.rule_id for v in only101} == {"REPRO101"}


def test_ignore_drops_rules():
    src = "import random\n\ndef f(d):\n    random.seed(0)\n    for p in d.values():\n        use(p)\n"
    rest = lint_source(src, "src/repro/mining/x.py", ignore=["REPRO111"])
    assert {v.rule_id for v in rest} == {"REPRO101"}


def test_violation_format_is_flake8_style():
    (v,) = lint_source(DIRTY, "src/repro/mining/x.py")
    line = v.format()
    assert line.startswith("src/repro/mining/x.py:4:")
    assert "REPRO111" in line


def test_lint_paths_walks_directories(tmp_path):
    pkg = tmp_path / "repro" / "mining"
    pkg.mkdir(parents=True)
    (pkg / "clean.py").write_text("def f(d):\n    return sorted(d.items())\n")
    (pkg / "dirty.py").write_text(DIRTY)
    report = lint_paths([tmp_path])
    assert report.files_checked == 2
    assert not report.ok
    assert report.counts_by_rule() == {"REPRO111": 1}


def test_render_text_ok_and_fail(tmp_path):
    pkg = tmp_path / "repro" / "mining"
    pkg.mkdir(parents=True)
    (pkg / "clean.py").write_text("X = 1\n")
    ok = render_text(lint_paths([tmp_path]))
    assert "OK: 1 file(s) checked, 0 violations" in ok

    (pkg / "dirty.py").write_text(DIRTY)
    fail = render_text(lint_paths([tmp_path]), statistics=True)
    assert "FAIL" in fail and "REPRO111" in fail


def test_render_json_round_trips(tmp_path):
    pkg = tmp_path / "repro" / "mining"
    pkg.mkdir(parents=True)
    (pkg / "dirty.py").write_text(DIRTY)
    payload = json.loads(render_json(lint_paths([tmp_path])))
    assert payload["ok"] is False
    assert payload["violations"][0]["rule"] == "REPRO111"
