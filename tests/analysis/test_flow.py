"""Unit tests for the interprocedural model behind the REPRO3xx rules.

These exercise :class:`repro.analysis.flow.FileFlow` directly: call
resolution through the lexical scope chain, the loop/checkpoint
fixpoints, token-forwarding detection (the parameter-forwarding
contract: a token threaded through a helper keeps the chain intact, a
dropped token severs it), hot-set propagation, and closure-aware
assignment origins.
"""

from __future__ import annotations

import ast

from repro.analysis.flow import FileFlow, hot_path


def build(source: str, module_path: str = "repro/core/fixture.py") -> FileFlow:
    return FileFlow(ast.parse(source), module_path)


def fn(flow: FileFlow, qualname: str):
    for info in flow.functions:
        if info.qualname == qualname:
            return info
    raise AssertionError(
        f"{qualname} not in {[f.qualname for f in flow.functions]}"
    )


# ----------------------------------------------------------------------
# the decorator itself
# ----------------------------------------------------------------------
def test_hot_path_decorator_is_a_runtime_noop():
    @hot_path
    def sample(x):
        return x + 1

    assert sample(1) == 2
    assert sample.__name__ == "sample"
    assert sample.__repro_hot_path__ is True


# ----------------------------------------------------------------------
# call resolution
# ----------------------------------------------------------------------
def test_resolves_module_function_and_self_method():
    flow = build(
        """
def helper(x):
    return x

class Engine:
    def _inner(self, x):
        return helper(x)

    def run(self, x):
        return self._inner(x)
"""
    )
    run = fn(flow, "Engine.run")
    (site,) = run.calls
    assert flow.resolved(site) is fn(flow, "Engine._inner")
    inner = fn(flow, "Engine._inner")
    (site,) = inner.calls
    assert flow.resolved(site) is fn(flow, "helper")


def test_resolves_sibling_nested_def_through_enclosing_scope():
    flow = build(
        """
def outer():
    def a():
        return b()

    def b():
        return 1

    return a()
"""
    )
    a = fn(flow, "outer.a")
    (site,) = a.calls
    assert flow.resolved(site) is fn(flow, "outer.b")


def test_non_self_attribute_calls_stay_unresolved():
    flow = build(
        """
def run(oracle):
    return oracle.distance(0, 1)
"""
    )
    run = fn(flow, "run")
    (site,) = run.calls
    assert flow.resolved(site) is None


# ----------------------------------------------------------------------
# loop and recursion fixpoints
# ----------------------------------------------------------------------
def test_loops_propagate_through_resolved_calls():
    flow = build(
        """
def leaf(xs):
    total = 0
    for x in xs:
        total += x
    return total

def middle(xs):
    return leaf(xs)

def top(xs):
    return middle(xs)

def flat(x):
    return x
"""
    )
    assert flow.transitively_loops(fn(flow, "leaf"))
    assert flow.transitively_loops(fn(flow, "middle"))
    assert flow.transitively_loops(fn(flow, "top"))
    assert not flow.transitively_loops(fn(flow, "flat"))


def test_recursion_counts_as_looping():
    flow = build(
        """
def search(pos):
    if pos == 0:
        return True
    return search(pos - 1)
"""
    )
    assert flow.is_recursive(fn(flow, "search"))
    assert flow.transitively_loops(fn(flow, "search"))


def test_registry_call_counts_as_looping():
    flow = build(
        """
def run(problem, graph):
    return verify_candidate(problem, graph)
"""
    )
    assert flow.transitively_loops(fn(flow, "run"))


# ----------------------------------------------------------------------
# token forwarding (the parameter-forwarding contract)
# ----------------------------------------------------------------------
def test_token_forwarded_through_helper_checkpoints():
    """token → helper → poll(): the whole chain transitively checkpoints."""
    flow = build(
        """
def helper(xs, token):
    for x in xs:
        token.poll()

def run(xs, token):
    helper(xs, token)
"""
    )
    assert flow.transitively_checkpoints(fn(flow, "helper"))
    assert flow.transitively_checkpoints(fn(flow, "run"))
    run = fn(flow, "run")
    (site,) = run.calls
    assert flow.forwards_token(run, site)
    assert flow.accepts_token(site)


def test_dropped_token_severs_the_chain():
    """``helper(xs)`` without the token is exactly what REPRO301 flags:
    the callee accepts a token, loops, and the call does not forward one.
    """
    flow = build(
        """
def helper(xs, token):
    for x in xs:
        token.poll()

def run(xs, token):
    helper(xs)
"""
    )
    run = fn(flow, "run")
    (site,) = run.calls
    assert not flow.forwards_token(run, site)
    assert flow.accepts_token(site)
    assert flow.call_loops(site)


def test_keyword_forwarding_counts():
    flow = build(
        """
def run(xs, token):
    verify_candidate(xs, token=token)
"""
    )
    run = fn(flow, "run")
    (site,) = run.calls
    assert flow.forwards_token(run, site)
    assert flow.accepts_token(site)  # registry fallback for unresolved calls


def test_matcher_wrappers_are_token_accepting_callees():
    """count_embeddings / are_isomorphic / automorphisms joined the
    token-accepting surface when they gained ``token=`` pass-through, so
    a caller that holds a token and drops it is a severed chain on every
    one of them — not just on the raw enumerator."""
    flow = build(
        """
def tally(pattern, graphs, token):
    total = 0
    for g in graphs:
        total += count_embeddings(pattern, g, token=token)
        if are_isomorphic(pattern, g):
            total += len(automorphisms(g))
    return total
"""
    )
    tally = fn(flow, "tally")
    by_name = {site.name: site for site in tally.calls}
    for name in ("count_embeddings", "are_isomorphic", "automorphisms"):
        assert flow.accepts_token(by_name[name]), name
        assert flow.call_loops(by_name[name]), name
    assert flow.forwards_token(tally, by_name["count_embeddings"])
    # The dropped-token calls are exactly what REPRO301 exists to flag.
    assert not flow.forwards_token(tally, by_name["are_isomorphic"])
    assert not flow.forwards_token(tally, by_name["automorphisms"])


def test_closure_captured_token_forwards_positionally():
    flow = build(
        """
def outer(xs, token):
    def inner():
        return verify_candidate(xs, token)

    return inner()
"""
    )
    inner = fn(flow, "outer.inner")
    assert "token" in inner.token_names()
    (site,) = inner.calls
    assert flow.forwards_token(inner, site)


def test_annotation_marks_a_token_parameter():
    flow = build(
        """
def run(xs, deadline: "CancellationToken"):
    for x in xs:
        deadline.poll()
"""
    )
    run = fn(flow, "run")
    assert run.token_params == {"deadline"}


def test_checkpoint_attrs_inside_nested_def_do_not_leak_out():
    flow = build(
        """
def run(xs, token):
    def later():
        token.poll()

    total = 0
    for x in xs:
        total += x
    return total
"""
    )
    run = fn(flow, "run")
    loop = run.own_loops[0]
    # defining a checkpointing closure is not the same as calling one
    assert not flow.subtree_checkpoints(run, loop)


# ----------------------------------------------------------------------
# hot-set propagation
# ----------------------------------------------------------------------
def test_hotness_reaches_callees_and_closures():
    flow = build(
        """
from repro.analysis.flow import hot_path

def cold(x):
    return x

def reached(x):
    return x

@hot_path
def entry(x):
    def closure(y):
        return y

    return reached(closure(x))
"""
    )
    assert flow.is_hot(fn(flow, "entry"))
    assert flow.is_hot(fn(flow, "entry.closure"))
    assert flow.is_hot(fn(flow, "reached"))
    assert not flow.is_hot(fn(flow, "cold"))


def test_spine_names_are_hot_only_under_core():
    src = """
def query(x):
    return x
"""
    hot_flow = build(src, "repro/core/engine.py")
    assert hot_flow.is_hot(fn(hot_flow, "query"))
    cold_flow = build(src, "repro/mining/miner.py")
    assert not cold_flow.is_hot(fn(cold_flow, "query"))


def test_stacked_decorators_still_mark_hot():
    flow = build(
        """
from repro.analysis.flow import hot_path

class P:
    @staticmethod
    @hot_path
    def intersect_many(lists):
        return lists
"""
    )
    assert flow.is_hot(fn(flow, "P.intersect_many"))


# ----------------------------------------------------------------------
# assignment origins
# ----------------------------------------------------------------------
def test_origins_track_container_kinds():
    flow = build(
        """
def run(xs):
    a = []
    b = set(xs)
    c = {x for x in xs}
    d = {}
    e = ""
    return a, b, c, d, e
"""
    )
    run = fn(flow, "run")
    assert run.origin_of("a") == {"list"}
    assert run.origin_of("b") == {"setcall"}
    assert run.origin_of("c") == {"set"}
    assert run.origin_of("d") == {"dict"}
    assert run.origin_of("e") == {"str"}
    assert run.origin_of("xs") == {"param"}
    assert run.origin_of("missing") is None


def test_origins_are_closure_aware_and_union_rebinds():
    flow = build(
        """
def outer(seed):
    used = set(seed.values())

    def backtrack(x):
        return x in used

    rebound = []
    rebound = sorted(rebound)
    return backtrack
"""
    )
    inner = fn(flow, "outer.backtrack")
    assert inner.origin_of("used") == {"setcall"}
    outer = fn(flow, "outer")
    assert outer.origin_of("rebound") == {"list"}
